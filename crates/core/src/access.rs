//! The Access processor.
//!
//! Paper §4.3: "we use a programmable component called Access
//! processor to arbitrate and schedule the load and store instructions
//! to the DDR3 DIMMs, thereby supporting various schemes for
//! allocating and distributing the available memory bandwidth between
//! the POWER8 and the individual accelerators. The Access processor
//! also includes a programmable address mapping scheme ... can
//! optionally issue load and store instructions to the DIMMs,
//! including address generation, on behalf of the attached
//! accelerators ... is programmed by loading pre-compiled executable
//! code ... has been designed as a programmable state machine ... and
//! supports multithreading."
//!
//! The paper defers the ISA details to a future paper; the ISA here is
//! a faithful-in-spirit reconstruction: a register machine with block
//! load/store instructions that stream data between the DIMM ports and
//! stream accelerators, loops, and a fence. Programs are written in a
//! tiny assembly ([`assemble`]) and executed by the multithreaded
//! interpreter, which models the access path's bandwidth:
//! **10–12 GB/s combined for loads and stores** across the two DIMM
//! ports, as measured in the paper's experiments.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use contutto_sim::SimTime;

use crate::avalon::AvalonBus;

/// Number of general-purpose registers per thread.
pub const NUM_REGS: usize = 16;

/// Transfer chunk granularity of the streaming engine.
pub const CHUNK_BYTES: u64 = 64 * 1024;

/// A register index (0..16).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Reg(pub u8);

impl Reg {
    fn idx(self) -> usize {
        assert!((self.0 as usize) < NUM_REGS, "register out of range");
        self.0 as usize
    }
}

/// Access-processor instructions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Insn {
    /// `set rD, imm` — load an immediate.
    SetImm(Reg, u64),
    /// `add rD, rA, rB` — integer add.
    Add(Reg, Reg, Reg),
    /// `addi rD, rA, imm` — add immediate (may be negative).
    AddImm(Reg, Reg, i64),
    /// `mul rD, rA, rB` — integer multiply, wrapping (address
    /// generation: `tid * stripe`).
    Mul(Reg, Reg, Reg),
    /// `shl rD, rA, imm` — logical shift left.
    Shl(Reg, Reg, u8),
    /// `load rA, rL, sink` — stream `rL` bytes from DIMM address `rA`
    /// into stream sink `sink` (an accelerator, or sink 255 = discard).
    LoadBlock(Reg, Reg, u8),
    /// `store rA, rL, src` — stream `rL` bytes from stream source
    /// `src` (an accelerator's output, or 255 = zeros) to DIMM
    /// address `rA`.
    StoreBlock(Reg, Reg, u8),
    /// `copy rS, rD, rL` — DIMM-to-DIMM block copy (load + store
    /// fused; both directions consume access bandwidth).
    Copy(Reg, Reg, Reg),
    /// `bnz rC, off` — branch by `off` instructions if `rC != 0`.
    BranchNz(Reg, i32),
    /// `fence` — wait for all outstanding transfers and accelerator
    /// compute to drain.
    Fence,
    /// `halt` — end this thread.
    Halt,
}

/// A stream-processing accelerator attached behind the Access
/// processor (min/max, FFT, ... — paper Figure 12).
pub trait StreamAccelerator {
    /// Consumes a chunk streamed from memory starting at `start`;
    /// returns when its pipeline has absorbed it.
    fn consume(&mut self, start: SimTime, data: &[u8]) -> SimTime;

    /// Produces up to `len` bytes of output into `out`; returns bytes
    /// produced. Called by `store` instructions sourcing from this
    /// accelerator.
    fn produce(&mut self, out: &mut [u8]) -> usize;

    /// Accelerator name.
    fn name(&self) -> &str;
}

/// Errors from program assembly or execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AccessError {
    /// Unknown mnemonic or malformed operand.
    Parse {
        /// Line number (1-based).
        line: usize,
        /// What went wrong.
        what: String,
    },
    /// Branch target outside the program.
    BadBranch {
        /// Instruction index of the branch.
        at: usize,
    },
    /// A load/store named a sink/source with no attached accelerator.
    NoSuchAccelerator(u8),
    /// Thread executed its instruction budget without halting.
    Runaway,
}

impl fmt::Display for AccessError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessError::Parse { line, what } => write!(f, "parse error on line {line}: {what}"),
            AccessError::BadBranch { at } => write!(f, "branch out of range at insn {at}"),
            AccessError::NoSuchAccelerator(id) => write!(f, "no accelerator with id {id}"),
            AccessError::Runaway => write!(f, "program exceeded instruction budget"),
        }
    }
}

impl Error for AccessError {}

/// Assembles the textual form into instructions.
///
/// Syntax (one instruction per line, `;` comments):
///
/// ```text
/// set   r1, 0x1000      ; r1 = source address
/// set   r2, 65536       ; r2 = length
/// load  r1, r2, 0       ; stream to accelerator 0
/// addi  r1, r1, 65536
/// addi  r3, r3, -1
/// bnz   r3, -4
/// fence
/// halt
/// ```
///
/// # Errors
///
/// [`AccessError::Parse`] with the offending line.
pub fn assemble(src: &str) -> Result<Vec<Insn>, AccessError> {
    let mut out = Vec::new();
    for (lineno, raw) in src.lines().enumerate() {
        let line = raw.split(';').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let err = |what: &str| AccessError::Parse {
            line: lineno + 1,
            what: what.to_string(),
        };
        let (mnemonic, rest) = line.split_once(char::is_whitespace).unwrap_or((line, ""));
        let ops: Vec<&str> = rest
            .split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .collect();
        let reg = |s: &str| -> Result<Reg, AccessError> {
            s.strip_prefix('r')
                .and_then(|n| n.parse::<u8>().ok())
                .filter(|n| (*n as usize) < NUM_REGS)
                .map(Reg)
                .ok_or_else(|| err("bad register"))
        };
        let imm_u = |s: &str| -> Result<u64, AccessError> {
            let parsed = if let Some(hex) = s.strip_prefix("0x") {
                u64::from_str_radix(hex, 16).ok()
            } else {
                s.parse::<u64>().ok()
            };
            parsed.ok_or_else(|| err("bad immediate"))
        };
        let imm_i = |s: &str| -> Result<i64, AccessError> {
            s.parse::<i64>().map_err(|_| err("bad signed immediate"))
        };
        let insn = match mnemonic {
            "set" if ops.len() == 2 => Insn::SetImm(reg(ops[0])?, imm_u(ops[1])?),
            "add" if ops.len() == 3 => Insn::Add(reg(ops[0])?, reg(ops[1])?, reg(ops[2])?),
            "addi" if ops.len() == 3 => Insn::AddImm(reg(ops[0])?, reg(ops[1])?, imm_i(ops[2])?),
            "mul" if ops.len() == 3 => Insn::Mul(reg(ops[0])?, reg(ops[1])?, reg(ops[2])?),
            "shl" if ops.len() == 3 => Insn::Shl(reg(ops[0])?, reg(ops[1])?, imm_u(ops[2])? as u8),
            "load" if ops.len() == 3 => {
                Insn::LoadBlock(reg(ops[0])?, reg(ops[1])?, imm_u(ops[2])? as u8)
            }
            "store" if ops.len() == 3 => {
                Insn::StoreBlock(reg(ops[0])?, reg(ops[1])?, imm_u(ops[2])? as u8)
            }
            "copy" if ops.len() == 3 => Insn::Copy(reg(ops[0])?, reg(ops[1])?, reg(ops[2])?),
            "bnz" if ops.len() == 2 => Insn::BranchNz(reg(ops[0])?, imm_i(ops[1])? as i32),
            "fence" if ops.is_empty() => Insn::Fence,
            "halt" if ops.is_empty() => Insn::Halt,
            _ => return Err(err("unknown mnemonic or wrong operand count")),
        };
        out.push(insn);
    }
    Ok(out)
}

/// Fixed instruction-word size of the stored program format.
pub const INSN_BYTES: usize = 12;

/// Encodes one instruction into the 12-byte stored format the Access
/// processor loads from the DIMMs (paper §4.3: "programmed by loading
/// pre-compiled executable code that is retrieved from the DDR3 DIMMs
/// into an internal instruction memory").
pub fn encode(insn: Insn) -> [u8; INSN_BYTES] {
    let mut out = [0u8; INSN_BYTES];
    let (op, r0, r1, r2, imm): (u8, u8, u8, u8, u64) = match insn {
        Insn::SetImm(d, v) => (0, d.0, 0, 0, v),
        Insn::Add(d, a, b) => (1, d.0, a.0, b.0, 0),
        Insn::AddImm(d, a, imm) => (2, d.0, a.0, 0, imm as u64),
        Insn::LoadBlock(a, l, sink) => (3, a.0, l.0, sink, 0),
        Insn::StoreBlock(a, l, srcid) => (4, a.0, l.0, srcid, 0),
        Insn::Copy(s, d, l) => (5, s.0, d.0, l.0, 0),
        Insn::BranchNz(c, off) => (6, c.0, 0, 0, off as i64 as u64),
        Insn::Fence => (7, 0, 0, 0, 0),
        Insn::Halt => (8, 0, 0, 0, 0),
        Insn::Mul(d, a, b) => (9, d.0, a.0, b.0, 0),
        Insn::Shl(d, a, imm) => (10, d.0, a.0, imm, 0),
    };
    out[0] = op;
    out[1] = r0;
    out[2] = r1;
    out[3] = r2;
    out[4..12].copy_from_slice(&imm.to_le_bytes());
    out
}

/// Decodes one stored instruction word.
///
/// # Errors
///
/// [`AccessError::Parse`] on an unknown opcode or bad register field.
pub fn decode(word: &[u8; INSN_BYTES]) -> Result<Insn, AccessError> {
    let bad = |what: &str| AccessError::Parse {
        line: 0,
        what: what.to_string(),
    };
    let reg = |b: u8| -> Result<Reg, AccessError> {
        if (b as usize) < NUM_REGS {
            Ok(Reg(b))
        } else {
            Err(bad("register field out of range"))
        }
    };
    let imm = u64::from_le_bytes(word[4..12].try_into().expect("8 bytes"));
    Ok(match word[0] {
        0 => Insn::SetImm(reg(word[1])?, imm),
        1 => Insn::Add(reg(word[1])?, reg(word[2])?, reg(word[3])?),
        2 => Insn::AddImm(reg(word[1])?, reg(word[2])?, imm as i64),
        3 => Insn::LoadBlock(reg(word[1])?, reg(word[2])?, word[3]),
        4 => Insn::StoreBlock(reg(word[1])?, reg(word[2])?, word[3]),
        5 => Insn::Copy(reg(word[1])?, reg(word[2])?, reg(word[3])?),
        6 => Insn::BranchNz(reg(word[1])?, imm as i64 as i32),
        7 => Insn::Fence,
        8 => Insn::Halt,
        9 => Insn::Mul(reg(word[1])?, reg(word[2])?, reg(word[3])?),
        10 => Insn::Shl(reg(word[1])?, reg(word[2])?, word[3]),
        _ => return Err(bad("unknown opcode")),
    })
}

/// Serializes a whole program to its stored format.
pub fn encode_program(program: &[Insn]) -> Vec<u8> {
    program.iter().flat_map(|i| encode(*i)).collect()
}

/// Programmable address mapping (paper: "a programmable address
/// mapping scheme that allows to change the way in which addresses
/// ... are mapped on the physical storage locations in the DIMMs").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AddressMap {
    /// Line-interleave across ports every `granule` bytes.
    Interleave {
        /// Interleave granule in bytes (power of two).
        granule: u64,
    },
    /// Linear: low half of the space on port 0, high half on port 1.
    Split,
}

impl AddressMap {
    /// Maps a global address to (port, local address) for `ports`
    /// populated ports and `port_capacity` bytes each.
    pub fn map(self, addr: u64, ports: u64, port_capacity: u64) -> (usize, u64) {
        match self {
            AddressMap::Interleave { granule } => {
                let unit = addr / granule;
                (
                    (unit % ports) as usize,
                    (unit / ports) * granule + addr % granule,
                )
            }
            AddressMap::Split => {
                let port = (addr / port_capacity).min(ports - 1);
                (port as usize, addr % port_capacity)
            }
        }
    }
}

/// Performance monitors (paper: "performance monitoring functions
/// integrated into the Access processor").
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AccessPerf {
    /// Bytes loaded from the DIMMs.
    pub bytes_loaded: u64,
    /// Bytes stored to the DIMMs.
    pub bytes_stored: u64,
    /// Instructions executed across all threads.
    pub instructions: u64,
    /// Chunks whose start was delayed waiting for an accelerator.
    pub accel_stalls: u64,
}

/// Bandwidth configuration of the access path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccessConfig {
    /// Peak combined (loads + stores) bandwidth across both DIMM
    /// ports, bytes/sec. Paper §4.3: "in the range from 10 GB/s to
    /// 12 GB/s, observed during our experiments".
    pub combined_peak: f64,
    /// Efficiency factor when both ports stream the same direction
    /// (cross-port arbitration overhead).
    pub dual_stream_efficiency: f64,
    /// Instruction budget per thread (runaway guard).
    pub max_instructions: u64,
}

impl Default for AccessConfig {
    fn default() -> Self {
        AccessConfig {
            combined_peak: 12.0e9,
            dual_stream_efficiency: 0.875,
            max_instructions: 100_000_000,
        }
    }
}

struct Thread {
    regs: [u64; NUM_REGS],
    pc: usize,
    halted: bool,
}

/// The Access processor: multithreaded interpreter + transfer engine.
pub struct AccessProcessor<'a> {
    cfg: AccessConfig,
    avalon: &'a mut AvalonBus,
    accelerators: HashMap<u8, &'a mut dyn StreamAccelerator>,
    map: AddressMap,
    perf: AccessPerf,
    /// Time the shared access path is busy until.
    path_busy: SimTime,
    /// Per-accelerator pipeline-busy time.
    accel_busy: HashMap<u8, SimTime>,
}

impl fmt::Debug for AccessProcessor<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AccessProcessor")
            .field("cfg", &self.cfg)
            .field("map", &self.map)
            .field("perf", &self.perf)
            .finish_non_exhaustive()
    }
}

impl<'a> AccessProcessor<'a> {
    /// Creates the processor over the card's Avalon bus.
    pub fn new(cfg: AccessConfig, avalon: &'a mut AvalonBus) -> Self {
        AccessProcessor {
            cfg,
            avalon,
            accelerators: HashMap::new(),
            map: AddressMap::Interleave { granule: 4096 },
            perf: AccessPerf::default(),
            path_busy: SimTime::ZERO,
            accel_busy: HashMap::new(),
        }
    }

    /// Attaches a stream accelerator under an id.
    pub fn attach_accelerator(&mut self, id: u8, accel: &'a mut dyn StreamAccelerator) {
        self.accelerators.insert(id, accel);
    }

    /// Selects the address-mapping scheme.
    pub fn set_address_map(&mut self, map: AddressMap) {
        self.map = map;
    }

    /// Performance monitors.
    pub fn perf(&self) -> AccessPerf {
        self.perf
    }

    /// Loads a pre-compiled program from the DIMMs into the internal
    /// instruction memory (paper §4.3: "triggered by the reception of
    /// a special control block, and is performed dynamically without
    /// interrupting the base operation").
    ///
    /// # Errors
    ///
    /// [`AccessError::Parse`] if the stored bytes do not decode.
    pub fn load_program(&mut self, addr: u64, num_insns: usize) -> Result<Vec<Insn>, AccessError> {
        let mut bytes = vec![0u8; num_insns * INSN_BYTES];
        self.dma_read(addr, &mut bytes);
        bytes
            .chunks_exact(INSN_BYTES)
            .map(|w| decode(w.try_into().expect("chunked exactly")))
            .collect()
    }

    /// Streams one chunk over the shared path; returns completion.
    /// `both_directions` marks transfers that occupy load AND store
    /// bandwidth (copies).
    fn charge_transfer(&mut self, now: SimTime, bytes: u64, both_directions: bool) -> SimTime {
        let bw = if both_directions {
            self.cfg.combined_peak / 2.0
        } else {
            self.cfg.combined_peak * self.cfg.dual_stream_efficiency
        };
        let start = now.max(self.path_busy);
        let dur = SimTime::from_ps((bytes as f64 / bw * 1e12) as u64);
        let done = start + dur;
        self.path_busy = done;
        done
    }

    /// Functional DMA read through the address map (timing is the
    /// caller's concern — used for seeding/verifying experiment data
    /// and by overlapped result write-back).
    pub fn dma_read(&mut self, addr: u64, buf: &mut [u8]) {
        let ports = self.avalon.ports() as u64;
        let cap = self.avalon.capacity_bytes() / ports;
        // Chunked by mapping granule boundaries.
        let mut off = 0u64;
        while (off as usize) < buf.len() {
            let a = addr + off;
            let (port, local) = self.map.map(a, ports, cap);
            let granule = match self.map {
                AddressMap::Interleave { granule } => granule - a % granule,
                AddressMap::Split => cap - local,
            };
            let n = granule.min(buf.len() as u64 - off) as usize;
            self.avalon
                .controller_mut(port)
                .peek_span(local, &mut buf[off as usize..off as usize + n]);
            off += n as u64;
        }
    }

    /// Functional DMA write through the address map.
    pub fn dma_write(&mut self, addr: u64, data: &[u8]) {
        let ports = self.avalon.ports() as u64;
        let cap = self.avalon.capacity_bytes() / ports;
        let mut off = 0u64;
        while (off as usize) < data.len() {
            let a = addr + off;
            let (port, local) = self.map.map(a, ports, cap);
            let granule = match self.map {
                AddressMap::Interleave { granule } => granule - a % granule,
                AddressMap::Split => cap - local,
            };
            let n = granule.min(data.len() as u64 - off) as usize;
            self.avalon
                .controller_mut(port)
                .poke_span(local, &data[off as usize..off as usize + n]);
            off += n as u64;
        }
    }

    /// Runs a program on `threads` hardware threads (round-robin
    /// interleave, each with its own registers; thread id in r15).
    /// Returns the simulated completion time.
    ///
    /// # Errors
    ///
    /// [`AccessError::BadBranch`], [`AccessError::NoSuchAccelerator`]
    /// or [`AccessError::Runaway`].
    pub fn run(
        &mut self,
        program: &[Insn],
        threads: usize,
        start: SimTime,
    ) -> Result<SimTime, AccessError> {
        assert!(threads >= 1, "need at least one thread");
        self.path_busy = self.path_busy.max(start);
        let mut ts: Vec<Thread> = (0..threads)
            .map(|i| {
                let mut regs = [0u64; NUM_REGS];
                regs[15] = i as u64;
                Thread {
                    regs,
                    pc: 0,
                    halted: false,
                }
            })
            .collect();
        let mut now = start;
        let mut executed = 0u64;
        let mut fence_pending: Vec<usize> = Vec::new();
        while ts.iter().any(|t| !t.halted) {
            for (tid, t) in ts.iter_mut().enumerate() {
                if t.halted || fence_pending.contains(&tid) {
                    continue;
                }
                let insn = *program
                    .get(t.pc)
                    .ok_or(AccessError::BadBranch { at: t.pc })?;
                executed += 1;
                self.perf.instructions += 1;
                if executed > self.cfg.max_instructions {
                    return Err(AccessError::Runaway);
                }
                t.pc += 1;
                match insn {
                    Insn::SetImm(d, v) => t.regs[d.idx()] = v,
                    Insn::Add(d, a, b) => {
                        t.regs[d.idx()] = t.regs[a.idx()].wrapping_add(t.regs[b.idx()])
                    }
                    Insn::AddImm(d, a, imm) => {
                        t.regs[d.idx()] = t.regs[a.idx()].wrapping_add_signed(imm)
                    }
                    Insn::Mul(d, a, b) => {
                        t.regs[d.idx()] = t.regs[a.idx()].wrapping_mul(t.regs[b.idx()])
                    }
                    Insn::Shl(d, a, imm) => {
                        t.regs[d.idx()] = t.regs[a.idx()].wrapping_shl(u32::from(imm))
                    }
                    Insn::LoadBlock(addr_r, len_r, sink) => {
                        let addr = t.regs[addr_r.idx()];
                        let len = t.regs[len_r.idx()];
                        self.perf.bytes_loaded += len;
                        let mut remaining = len;
                        let mut a = addr;
                        while remaining > 0 {
                            let n = remaining.min(CHUNK_BYTES);
                            let mut buf = vec![0u8; n as usize];
                            self.dma_read(a, &mut buf);
                            let done = self.charge_transfer(now, n, false);
                            if sink != 255 {
                                let accel = self
                                    .accelerators
                                    .get_mut(&sink)
                                    .ok_or(AccessError::NoSuchAccelerator(sink))?;
                                let busy = self.accel_busy.entry(sink).or_insert(SimTime::ZERO);
                                if *busy > done {
                                    // Compute is behind the stream; the
                                    // accelerator's input FIFO absorbs it.
                                    self.perf.accel_stalls += 1;
                                }
                                // The accelerator queues internally; the
                                // stream is not gated on compute.
                                *busy = accel.consume(done, &buf).max(*busy);
                            }
                            now = done;
                            a += n;
                            remaining -= n;
                        }
                    }
                    Insn::StoreBlock(addr_r, len_r, src) => {
                        let addr = t.regs[addr_r.idx()];
                        let len = t.regs[len_r.idx()];
                        self.perf.bytes_stored += len;
                        let mut remaining = len;
                        let mut a = addr;
                        while remaining > 0 {
                            let n = remaining.min(CHUNK_BYTES);
                            let mut buf = vec![0u8; n as usize];
                            if src != 255 {
                                let accel = self
                                    .accelerators
                                    .get_mut(&src)
                                    .ok_or(AccessError::NoSuchAccelerator(src))?;
                                let produced = accel.produce(&mut buf);
                                buf.truncate(produced.max(1).min(n as usize));
                                buf.resize(n as usize, 0);
                            }
                            self.dma_write(a, &buf);
                            // Wait for the accelerator pipeline before
                            // draining its results.
                            if src != 255 {
                                if let Some(busy) = self.accel_busy.get(&src) {
                                    now = now.max(*busy);
                                }
                            }
                            now = self.charge_transfer(now, n, false);
                            a += n;
                            remaining -= n;
                        }
                    }
                    Insn::Copy(src_r, dst_r, len_r) => {
                        let src = t.regs[src_r.idx()];
                        let dst = t.regs[dst_r.idx()];
                        let len = t.regs[len_r.idx()];
                        self.perf.bytes_loaded += len;
                        self.perf.bytes_stored += len;
                        let mut remaining = len;
                        let mut off = 0u64;
                        while remaining > 0 {
                            let n = remaining.min(CHUNK_BYTES);
                            let mut buf = vec![0u8; n as usize];
                            self.dma_read(src + off, &mut buf);
                            self.dma_write(dst + off, &buf);
                            now = self.charge_transfer(now, n, true);
                            off += n;
                            remaining -= n;
                        }
                    }
                    Insn::BranchNz(c, delta) => {
                        if t.regs[c.idx()] != 0 {
                            let target = t.pc as i64 - 1 + i64::from(delta);
                            if target < 0 || target as usize >= program.len() {
                                return Err(AccessError::BadBranch { at: t.pc - 1 });
                            }
                            t.pc = target as usize;
                        }
                    }
                    Insn::Fence => {
                        let accel_max = self
                            .accel_busy
                            .values()
                            .copied()
                            .max()
                            .unwrap_or(SimTime::ZERO);
                        now = now.max(self.path_busy).max(accel_max);
                    }
                    Insn::Halt => t.halted = true,
                }
            }
            fence_pending.clear();
        }
        Ok(now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memctl::{MemoryController, MemoryKind};

    fn bus() -> AvalonBus {
        AvalonBus::new(
            vec![
                MemoryController::new(MemoryKind::Ddr3Dram, 1 << 30),
                MemoryController::new(MemoryKind::Ddr3Dram, 1 << 30),
            ],
            5,
        )
    }

    #[test]
    fn assembler_roundtrip() {
        let program = assemble(
            "set r1, 0x1000   ; src
             set r2, 65536
             copy r1, r3, r2
             fence
             halt",
        )
        .unwrap();
        assert_eq!(program.len(), 5);
        assert_eq!(program[0], Insn::SetImm(Reg(1), 0x1000));
        assert_eq!(program[2], Insn::Copy(Reg(1), Reg(3), Reg(2)));
        assert_eq!(program[4], Insn::Halt);
    }

    #[test]
    fn assembler_rejects_garbage() {
        assert!(matches!(
            assemble("frob r1, r2"),
            Err(AccessError::Parse { line: 1, .. })
        ));
        assert!(matches!(
            assemble("set r99, 1"),
            Err(AccessError::Parse { .. })
        ));
        assert!(matches!(
            assemble("halt extra"),
            Err(AccessError::Parse { .. })
        ));
    }

    #[test]
    fn copy_program_moves_data_functionally() {
        let mut avalon = bus();
        // Seed source data.
        let src_data: Vec<u8> = (0..128 * 1024u32).map(|i| (i % 253) as u8).collect();
        {
            let mut ap = AccessProcessor::new(AccessConfig::default(), &mut avalon);
            ap.dma_write(0x10_0000, &src_data);
        }
        let program = assemble(
            "set r1, 0x100000
             set r2, 0x800000
             set r3, 131072
             copy r1, r2, r3
             fence
             halt",
        )
        .unwrap();
        let mut ap = AccessProcessor::new(AccessConfig::default(), &mut avalon);
        let done = ap.run(&program, 1, SimTime::ZERO).unwrap();
        assert!(done > SimTime::ZERO);
        let mut back = vec![0u8; src_data.len()];
        ap.dma_read(0x80_0000, &mut back);
        assert_eq!(back, src_data);
        assert_eq!(ap.perf().bytes_loaded, 131072);
        assert_eq!(ap.perf().bytes_stored, 131072);
    }

    #[test]
    fn copy_throughput_is_half_combined_peak() {
        let mut avalon = bus();
        let len: u64 = 64 << 20; // 64 MiB
        let program = assemble(&format!(
            "set r1, 0\nset r2, 0x4000000\nset r3, {len}\ncopy r1, r2, r3\nfence\nhalt"
        ))
        .unwrap();
        let mut ap = AccessProcessor::new(AccessConfig::default(), &mut avalon);
        let done = ap.run(&program, 1, SimTime::ZERO).unwrap();
        let gbps = len as f64 / done.as_secs_f64() / 1e9;
        // 12 GB/s combined → ~6 GB/s copy rate (Table 5 memcpy row).
        assert!((5.5..6.5).contains(&gbps), "copy rate {gbps} GB/s");
    }

    #[test]
    fn load_only_streams_at_dual_efficiency() {
        let mut avalon = bus();
        let len: u64 = 64 << 20;
        let program = assemble(&format!(
            "set r1, 0\nset r2, {len}\nload r1, r2, 255\nfence\nhalt"
        ))
        .unwrap();
        let mut ap = AccessProcessor::new(AccessConfig::default(), &mut avalon);
        let done = ap.run(&program, 1, SimTime::ZERO).unwrap();
        let gbps = len as f64 / done.as_secs_f64() / 1e9;
        // 12 x 0.875 = 10.5 GB/s (Table 5 min/max row).
        assert!((10.0..11.0).contains(&gbps), "stream rate {gbps} GB/s");
    }

    #[test]
    fn loop_with_branch_executes_n_times() {
        let mut avalon = bus();
        // Sum loop: r4 counts down from 5; r5 accumulates.
        let program = assemble(
            "set r4, 5
             set r5, 0
             set r6, 1
             add r5, r5, r6
             addi r4, r4, -1
             bnz r4, -2
             halt",
        )
        .unwrap();
        let mut ap = AccessProcessor::new(AccessConfig::default(), &mut avalon);
        ap.run(&program, 1, SimTime::ZERO).unwrap();
        // 3 setup + 5 x (add, addi, bnz) + halt
        assert_eq!(ap.perf().instructions, 3 + 15 + 1);
    }

    #[test]
    fn bad_branch_detected() {
        let mut avalon = bus();
        let program = assemble("set r1, 1\nbnz r1, -10\nhalt").unwrap();
        let mut ap = AccessProcessor::new(AccessConfig::default(), &mut avalon);
        assert!(matches!(
            ap.run(&program, 1, SimTime::ZERO),
            Err(AccessError::BadBranch { .. })
        ));
    }

    #[test]
    fn runaway_guard_fires() {
        let mut avalon = bus();
        let program = assemble("set r1, 1\nbnz r1, 0\nhalt").unwrap();
        let mut ap = AccessProcessor::new(
            AccessConfig {
                max_instructions: 1000,
                ..AccessConfig::default()
            },
            &mut avalon,
        );
        assert_eq!(
            ap.run(&program, 1, SimTime::ZERO),
            Err(AccessError::Runaway)
        );
    }

    #[test]
    fn unknown_accelerator_rejected() {
        let mut avalon = bus();
        let program = assemble("set r1, 0\nset r2, 4096\nload r1, r2, 3\nhalt").unwrap();
        let mut ap = AccessProcessor::new(AccessConfig::default(), &mut avalon);
        assert_eq!(
            ap.run(&program, 1, SimTime::ZERO),
            Err(AccessError::NoSuchAccelerator(3))
        );
    }

    #[test]
    fn address_maps_differ() {
        let il = AddressMap::Interleave { granule: 4096 };
        assert_eq!(il.map(0, 2, 1 << 30), (0, 0));
        assert_eq!(il.map(4096, 2, 1 << 30), (1, 0));
        assert_eq!(il.map(8192, 2, 1 << 30), (0, 4096));
        let sp = AddressMap::Split;
        assert_eq!(sp.map(0, 2, 1 << 30), (0, 0));
        assert_eq!(sp.map(1 << 30, 2, 1 << 30), (1, 0));
    }

    #[test]
    fn encode_decode_roundtrip_all_opcodes() {
        let program = vec![
            Insn::SetImm(Reg(1), 0xDEAD_BEEF_0000_0001),
            Insn::Add(Reg(2), Reg(3), Reg(4)),
            Insn::AddImm(Reg(5), Reg(6), -42),
            Insn::LoadBlock(Reg(1), Reg(2), 3),
            Insn::StoreBlock(Reg(1), Reg(2), 255),
            Insn::Copy(Reg(1), Reg(2), Reg(3)),
            Insn::BranchNz(Reg(4), -7),
            Insn::Fence,
            Insn::Halt,
            Insn::Mul(Reg(7), Reg(8), Reg(9)),
            Insn::Shl(Reg(1), Reg(2), 16),
        ];
        for insn in &program {
            assert_eq!(decode(&encode(*insn)).unwrap(), *insn);
        }
        let blob = encode_program(&program);
        assert_eq!(blob.len(), program.len() * INSN_BYTES);
    }

    #[test]
    fn decode_rejects_garbage() {
        let mut w = [0u8; INSN_BYTES];
        w[0] = 200;
        assert!(matches!(decode(&w), Err(AccessError::Parse { .. })));
        let mut w = [0u8; INSN_BYTES];
        w[0] = 1;
        w[1] = 99; // bad register
        assert!(decode(&w).is_err());
    }

    #[test]
    fn program_loads_from_dimm_and_runs() {
        // The paper's dynamic-programming story: compile, store the
        // blob in the DIMMs, trigger a load, execute.
        let mut avalon = bus();
        let program = assemble(
            "set r1, 0x200000
             set r2, 0x600000
             set r3, 65536
             copy r1, r2, r3
             fence
             halt",
        )
        .unwrap();
        let blob = encode_program(&program);
        let payload: Vec<u8> = (0..65536u32).map(|i| (i % 199) as u8).collect();
        let mut ap = AccessProcessor::new(AccessConfig::default(), &mut avalon);
        ap.dma_write(0x10_0000, &blob); // program image in the DIMMs
        ap.dma_write(0x20_0000, &payload); // data
        let loaded = ap.load_program(0x10_0000, program.len()).unwrap();
        assert_eq!(loaded, program);
        ap.run(&loaded, 1, SimTime::ZERO).unwrap();
        let mut back = vec![0u8; payload.len()];
        ap.dma_read(0x60_0000, &mut back);
        assert_eq!(back, payload);
    }

    #[test]
    fn multithreaded_stripe_copy() {
        // Four hardware threads each copy their own 64 KiB stripe,
        // with addresses generated from the thread id in r15.
        let mut avalon = bus();
        let stripe: u64 = 65536;
        let total = stripe * 4;
        let payload: Vec<u8> = (0..total as u32).map(|i| (i % 191) as u8).collect();
        {
            let mut ap = AccessProcessor::new(AccessConfig::default(), &mut avalon);
            ap.dma_write(0x10_0000, &payload);
        }
        let program = assemble(
            "set r4, 65536       ; stripe bytes
             mul r5, r15, r4     ; offset = tid * stripe
             set r6, 0x100000
             add r7, r6, r5      ; src = base + offset
             set r8, 0x900000
             add r9, r8, r5      ; dst = dstbase + offset
             copy r7, r9, r4
             fence
             halt",
        )
        .unwrap();
        let mut ap = AccessProcessor::new(AccessConfig::default(), &mut avalon);
        ap.run(&program, 4, SimTime::ZERO).unwrap();
        assert_eq!(ap.perf().bytes_loaded, total);
        assert_eq!(ap.perf().bytes_stored, total);
        let mut back = vec![0u8; total as usize];
        ap.dma_read(0x90_0000, &mut back);
        assert_eq!(back, payload);
    }

    #[test]
    fn shl_and_mul_semantics() {
        let mut avalon = bus();
        let program = assemble(
            "set r1, 3
             set r2, 5
             mul r3, r1, r2      ; 15
             shl r4, r3, 4       ; 240
             halt",
        )
        .unwrap();
        let mut ap = AccessProcessor::new(AccessConfig::default(), &mut avalon);
        ap.run(&program, 1, SimTime::ZERO).unwrap();
        // Semantics verified indirectly: use the values as a copy size.
        // (Registers are thread-private; assert via a transfer length.)
        let program = assemble(
            "set r1, 4
             set r2, 1024
             mul r3, r1, r2      ; 4096 bytes
             set r5, 0
             set r6, 0x800000
             copy r5, r6, r3
             fence
             halt",
        )
        .unwrap();
        let mut ap = AccessProcessor::new(AccessConfig::default(), &mut avalon);
        ap.run(&program, 1, SimTime::ZERO).unwrap();
        assert_eq!(ap.perf().bytes_loaded, 4096);
    }

    #[test]
    fn multithreaded_run_uses_thread_ids() {
        let mut avalon = bus();
        // Each thread copies a disjoint 64 KiB using r15 (thread id).
        // addr = r15 * 65536; dst = addr + 0x400000.
        let program = assemble(
            "set r2, 65536
             set r3, 0x400000
             set r4, 65536
             add r1, r15, r0     ; r1 = tid (r0 is always 0)
             set r5, 16
             add r6, r0, r0      ; r6 = tid * 65536 via shift loop
             add r6, r15, r0
             set r7, 65536
             halt",
        )
        .unwrap();
        let mut ap = AccessProcessor::new(AccessConfig::default(), &mut avalon);
        let done = ap.run(&program, 4, SimTime::ZERO).unwrap();
        assert_eq!(done, SimTime::ZERO, "no transfers, no time");
        assert_eq!(ap.perf().instructions, 4 * 9);
    }
}
