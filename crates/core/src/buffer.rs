//! The assembled ConTutto buffer.
//!
//! [`ConTutto`] wires the PHY ([`crate::phy`]), MBI ([`crate::mbi`]),
//! MBS ([`crate::mbs`]) and Avalon/memory-controller stack
//! ([`crate::avalon`], [`crate::memctl`]) into a
//! [`contutto_dmi::DmiBuffer`] that the POWER8 channel model can plug
//! in wherever a Centaur sat — the "base ConTutto design ... the bare
//! minimum logic to enable ConTutto to replace a CDIMM" (paper §3.3),
//! plus the extensions: the latency knob (§4.1), non-DRAM memory
//! (§4.2) and the acceleration hooks (§4.3).

use contutto_dmi::buffer::{DmiBuffer, MediaFaultSpec, PowerRestoreOutcome};
use contutto_dmi::frame::{DownstreamPayload, UpstreamPayload};
use contutto_memdev::{range_ok, FaultConfig, MramGeneration, RasCounters};
use contutto_sim::snapshot::{self, SnapReader};
use contutto_sim::{MetricsRegistry, SimTime, Tracer};

use crate::avalon::AvalonBus;
use crate::mbi::MbiConfig;
use crate::mbs::{MbsConfig, MbsLogic, MbsStats};
use crate::memctl::{MemoryController, MemoryKind};
use crate::phy::PhyConfig;
use crate::resources::ResourceReport;

/// Full configuration of a ConTutto card's FPGA design.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ContuttoConfig {
    /// Design-variant name for reports.
    pub name: &'static str,
    /// PHY parameters (mux ratio, clock-crossing choice).
    pub phy: PhyConfig,
    /// MBI parameters (CRC pipeline, freeze length).
    pub mbi: MbiConfig,
    /// MBS pipeline + knob.
    pub mbs: MbsConfig,
    /// Avalon clock-domain-crossing cycles.
    pub avalon_cdc_cycles: u64,
}

impl ContuttoConfig {
    /// The base (optimized) ConTutto design of paper §3.3.
    pub fn base() -> Self {
        ContuttoConfig {
            name: "contutto-base",
            phy: PhyConfig::optimized(),
            mbi: MbiConfig::optimized(),
            mbs: MbsConfig::base(),
            avalon_cdc_cycles: 5,
        }
    }

    /// Base design with the latency knob at the given position
    /// (paper §4.1 Table 3: +24 ns per step).
    pub fn with_knob(knob: u8) -> Self {
        assert!(knob <= 7, "knob has 8 positions (0-7)");
        let mut cfg = ContuttoConfig::base();
        cfg.name = match knob {
            0 => "contutto-base",
            1 => "contutto-knob-1",
            2 => "contutto-knob-2",
            3 => "contutto-knob-3",
            4 => "contutto-knob-4",
            5 => "contutto-knob-5",
            6 => "contutto-knob-6",
            _ => "contutto-knob-7",
        };
        cfg.mbs.latency_knob = knob;
        cfg
    }

    /// The naive first-cut FPGA design: receiver clock-crossing FIFO
    /// in the path and 4-stage CRC. Its FRTL exceeds the POWER8
    /// limit — the design-story ablation of paper §3.3(ii).
    pub fn naive() -> Self {
        ContuttoConfig {
            name: "contutto-naive",
            phy: PhyConfig::naive(),
            mbi: MbiConfig::naive(),
            ..ContuttoConfig::base()
        }
    }

    /// One-way receive latency through PHY + MBI.
    pub fn rx_latency(&self) -> SimTime {
        self.phy.rx_latency() + self.mbi.rx_latency()
    }

    /// One-way transmit latency through MBI + PHY.
    pub fn tx_latency(&self) -> SimTime {
        self.mbi.tx_latency() + self.phy.tx_latency()
    }
}

impl Default for ContuttoConfig {
    fn default() -> Self {
        ContuttoConfig::base()
    }
}

/// What is plugged into the card's two DDR3 DIMM connectors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryPopulation {
    /// Media kind (both connectors are populated identically).
    pub kind: MemoryKind,
    /// Capacity per DIMM, bytes.
    pub dimm_capacity: u64,
    /// Populated connectors (1 or 2).
    pub dimms: u32,
}

impl MemoryPopulation {
    /// The paper's DRAM experiments: 2 × 4 GB DDR3 (§4.1: "a total of
    /// 8 GB DDR3 memory behind ConTutto (4 GB in each DIMM slot)").
    pub fn dram_8gb() -> Self {
        MemoryPopulation {
            kind: MemoryKind::Ddr3Dram,
            dimm_capacity: 4 << 30,
            dimms: 2,
        }
    }

    /// The paper's MRAM setup: 2 × 256 MB STT-MRAM per card (§4.2).
    pub fn mram_512mb(gen: MramGeneration) -> Self {
        MemoryPopulation {
            kind: MemoryKind::SttMram(gen),
            dimm_capacity: 256 << 20,
            dimms: 2,
        }
    }

    /// NVDIMM-N population (2 × 4 GB).
    pub fn nvdimm_8gb() -> Self {
        MemoryPopulation {
            kind: MemoryKind::NvdimmN,
            dimm_capacity: 4 << 30,
            dimms: 2,
        }
    }

    /// Total capacity across connectors.
    pub fn total_bytes(&self) -> u64 {
        self.dimm_capacity * u64::from(self.dimms)
    }
}

/// Aggregated ConTutto statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ContuttoStats {
    /// MBS-level counters.
    pub mbs: MbsStats,
    /// Avalon transfers.
    pub avalon_transfers: u64,
}

/// A ConTutto card's FPGA logic, ready to sit on a DMI channel.
#[derive(Debug)]
pub struct ConTutto {
    cfg: ContuttoConfig,
    population: MemoryPopulation,
    mbs: MbsLogic,
}

impl ConTutto {
    /// Builds the card with the given design variant and DIMM
    /// population.
    ///
    /// # Panics
    ///
    /// Panics if the population requests more than the card's two
    /// DIMM connectors.
    pub fn new(cfg: ContuttoConfig, population: MemoryPopulation) -> Self {
        assert!(
            (1..=2).contains(&population.dimms),
            "the card has two DIMM connectors"
        );
        let controllers: Vec<MemoryController> = (0..population.dimms)
            .map(|_| MemoryController::new(population.kind, population.dimm_capacity))
            .collect();
        let avalon = AvalonBus::new(controllers, cfg.avalon_cdc_cycles);
        let mbs = MbsLogic::new(cfg.mbs, avalon, cfg.rx_latency(), cfg.tx_latency());
        ConTutto {
            cfg,
            population,
            mbs,
        }
    }

    /// The design configuration.
    pub fn config(&self) -> &ContuttoConfig {
        &self.cfg
    }

    /// The DIMM population.
    pub fn population(&self) -> MemoryPopulation {
        self.population
    }

    /// Statistics so far.
    pub fn stats(&self) -> ContuttoStats {
        ContuttoStats {
            mbs: self.mbs.stats(),
            avalon_transfers: self.mbs.avalon().transfers(),
        }
    }

    /// Runtime latency-knob control (software-visible register).
    pub fn set_latency_knob(&mut self, knob: u8) {
        self.mbs.set_latency_knob(knob);
    }

    /// Direct access to the MBS (accelerators, Access processor and
    /// card firmware use this).
    pub fn mbs_mut(&mut self) -> &mut MbsLogic {
        &mut self.mbs
    }

    /// Arms a deterministic media-fault injector on every DIMM port.
    pub fn attach_media_faults(&mut self, cfg: FaultConfig) {
        self.mbs.avalon_mut().attach_media_faults(cfg);
    }

    /// Enables background patrol scrub on every DIMM port.
    pub fn enable_scrub(&mut self, interval: SimTime) {
        self.mbs.avalon_mut().enable_scrub(interval);
    }

    /// Media RAS counters aggregated across DIMM ports.
    pub fn ras_counters(&self) -> RasCounters {
        self.mbs.avalon().ras_counters()
    }

    /// FPGA resource utilization of this design variant (Table 1).
    pub fn resource_report(&self) -> ResourceReport {
        ResourceReport::for_base_design()
    }
}

impl DmiBuffer for ConTutto {
    fn push_downstream(&mut self, now: SimTime, payload: DownstreamPayload) {
        self.mbs.handle_downstream(now, payload);
    }

    fn pull_upstream(&mut self, now: SimTime) -> Option<UpstreamPayload> {
        self.mbs.pull_upstream(now)
    }

    fn frtl_turnaround(&self) -> SimTime {
        self.cfg.rx_latency() + self.cfg.tx_latency()
    }

    fn name(&self) -> &str {
        self.cfg.name
    }

    fn attach_tracer(&mut self, tracer: Tracer) {
        self.mbs.attach_tracer(tracer);
    }

    fn sideband_read_line(&mut self, now: SimTime, addr: u64) -> Option<([u8; 128], bool)> {
        // The sideband takes external addresses (maintenance tools,
        // fault reproducers): refuse out-of-range instead of letting
        // the device's range assertion abort the process.
        if !range_ok(self.mbs.avalon().capacity_bytes(), addr, 128) {
            return None;
        }
        Some(self.mbs.avalon_mut().sideband_read_line(now, addr))
    }

    fn sideband_write_line(&mut self, addr: u64, data: &[u8; 128], poison: bool) -> bool {
        if !range_ok(self.mbs.avalon().capacity_bytes(), addr, 128) {
            return false;
        }
        self.mbs
            .avalon_mut()
            .sideband_write_line(addr, data, poison);
        true
    }

    /// The MBS flush extension run under EPOW (paper §4.2: "we
    /// extended the MBS logic to add a special flush command ... this
    /// functionality does not exist in the Centaur ASIC"): drives
    /// every buffered write to the media and charges the hold-up rail
    /// a small fixed cost per DIMM port for the bus activity.
    fn epow_flush(&mut self, now: SimTime, energy_nj: &mut u64) -> SimTime {
        const EPOW_FLUSH_COST_PER_PORT_NJ: u64 = 1_000;
        let cost = EPOW_FLUSH_COST_PER_PORT_NJ * self.mbs.avalon().ports() as u64;
        *energy_nj = energy_nj.saturating_sub(cost);
        self.mbs.avalon_mut().flush_all(now)
    }

    fn power_cut(&mut self, now: SimTime) -> SimTime {
        // Fabric state (engines, response queues) dies instantly; the
        // DIMM ports then run their own power-loss paths (an armed
        // NVDIMM keeps saving on supercap).
        self.mbs.discard_volatile();
        self.mbs.avalon_mut().power_cut(now)
    }

    fn power_restore(&mut self, now: SimTime) -> (SimTime, PowerRestoreOutcome) {
        self.mbs.avalon_mut().power_restore(now)
    }

    fn set_save_armed(&mut self, armed: bool) -> bool {
        self.mbs.avalon_mut().set_save_armed(armed)
    }

    fn set_supercap_budget_nj(&mut self, nj: u64) {
        self.mbs.avalon_mut().set_supercap_budget_nj(nj);
    }

    fn arm_media_faults(&mut self, now: SimTime, spec: MediaFaultSpec) -> bool {
        self.mbs.avalon_mut().attach_media_faults_at(
            now,
            FaultConfig {
                seed: spec.seed,
                transient_flips: spec.transient_flips,
                window: spec.window,
                hot_start: spec.hot_start,
                hot_len: spec.hot_len.max(1),
                stuck_cells: spec.stuck_cells,
                wear_acceleration: 0.0,
            },
        );
        true
    }

    fn set_scrub(&mut self, now: SimTime, interval: Option<SimTime>) -> bool {
        match interval {
            Some(interval) => self.mbs.avalon_mut().enable_scrub_at(now, interval),
            None => self.mbs.avalon_mut().disable_scrub(),
        }
        true
    }

    fn scrub_interval(&self) -> Option<SimTime> {
        self.mbs.avalon().scrub_interval()
    }

    fn snapshot_state(&self, out: &mut Vec<u8>) {
        // All dynamic card state lives in the MBS and below (Avalon,
        // controllers, media); the PHY/MBI layers are pure latency.
        self.mbs.snapshot_state(out);
    }

    fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), snapshot::RestoreError> {
        self.mbs.restore_state(r)
    }

    fn register_metrics(&self, prefix: &str, registry: &mut MetricsRegistry) {
        let stats = self.stats();
        registry.set_counter(&format!("{prefix}.reads"), stats.mbs.reads);
        registry.set_counter(&format!("{prefix}.writes"), stats.mbs.writes);
        registry.set_counter(&format!("{prefix}.rmws"), stats.mbs.rmws);
        registry.set_counter(
            &format!("{prefix}.inline_accel_ops"),
            stats.mbs.inline_accel_ops,
        );
        registry.set_counter(&format!("{prefix}.flushes"), stats.mbs.flushes);
        registry.set_counter(&format!("{prefix}.write_beats"), stats.mbs.write_beats);
        registry.set_counter(
            &format!("{prefix}.coalesced_dones"),
            stats.mbs.coalesced_dones,
        );
        registry.set_counter(
            &format!("{prefix}.avalon_transfers"),
            stats.avalon_transfers,
        );
        registry.set_counter(
            &format!("{prefix}.corrected_reads"),
            stats.mbs.corrected_reads,
        );
        registry.set_counter(
            &format!("{prefix}.poisoned_reads"),
            stats.mbs.poisoned_reads,
        );
        registry.set_counter(&format!("{prefix}.poisoned_rmws"), stats.mbs.poisoned_rmws);
        registry.set_counter(
            &format!("{prefix}.frames_orphaned"),
            stats.mbs.frames_orphaned,
        );
        let media = self.ras_counters();
        registry.set_counter(
            &format!("{prefix}.media.demand_corrected"),
            media.demand_corrected,
        );
        registry.set_counter(
            &format!("{prefix}.media.demand_uncorrectable"),
            media.demand_uncorrectable,
        );
        registry.set_counter(
            &format!("{prefix}.media.scrub_corrected"),
            media.scrub_corrected,
        );
        registry.set_counter(
            &format!("{prefix}.media.scrub_uncorrectable"),
            media.scrub_uncorrectable,
        );
        registry.set_counter(&format!("{prefix}.media.scrub_passes"), media.scrub_passes);
        registry.set_counter(
            &format!("{prefix}.media.pages_retired"),
            media.pages_retired,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use contutto_dmi::command::{CacheLine, Tag};
    use contutto_dmi::frame::{line_to_downstream_beats, CommandHeader, LineAssembler};

    fn t(n: u8) -> Tag {
        Tag::new(n).unwrap()
    }

    fn drain(c: &mut ConTutto, until: SimTime) -> Vec<(SimTime, UpstreamPayload)> {
        let mut out = Vec::new();
        let mut now = SimTime::ZERO;
        while now <= until {
            while let Some(p) = c.pull_upstream(now) {
                out.push((now, p));
            }
            now += SimTime::from_ns(2);
        }
        out
    }

    #[test]
    fn sideband_refuses_out_of_range_addresses() {
        let mut c = ConTutto::new(ContuttoConfig::base(), MemoryPopulation::dram_8gb());
        let cap = c.population().total_bytes();
        assert!(c.sideband_read_line(SimTime::ZERO, cap).is_none());
        assert!(c.sideband_read_line(SimTime::ZERO, u64::MAX - 64).is_none());
        assert!(!c.sideband_write_line(cap, &[0u8; 128], false));
        assert!(!c.sideband_write_line(u64::MAX - 64, &[0u8; 128], false));
        // In-range maintenance access still works.
        assert!(c.sideband_read_line(SimTime::ZERO, cap - 128).is_some());
    }

    #[test]
    fn base_card_roundtrip_on_dram() {
        let mut c = ConTutto::new(ContuttoConfig::base(), MemoryPopulation::dram_8gb());
        let line = CacheLine::patterned(11);
        c.push_downstream(
            SimTime::ZERO,
            DownstreamPayload::Command {
                tag: t(0),
                header: CommandHeader::Write { addr: 0x10_0000 },
            },
        );
        for (i, beat) in line_to_downstream_beats(t(0), &line)
            .into_iter()
            .enumerate()
        {
            c.push_downstream(SimTime::from_ns(2) * (i as u64 + 1), beat);
        }
        drain(&mut c, SimTime::from_us(2));
        c.push_downstream(
            SimTime::from_us(3),
            DownstreamPayload::Command {
                tag: t(1),
                header: CommandHeader::Read { addr: 0x10_0000 },
            },
        );
        let resp = drain(&mut c, SimTime::from_us(5));
        let mut asm = LineAssembler::upstream();
        for (_, p) in &resp {
            if let UpstreamPayload::ReadData { beat, data, .. } = p {
                asm.add_beat(*beat, data);
            }
        }
        assert_eq!(asm.into_line(), line);
    }

    #[test]
    fn mram_population_works_and_is_persistent_media() {
        let mut c = ConTutto::new(
            ContuttoConfig::base(),
            MemoryPopulation::mram_512mb(MramGeneration::Pmtj),
        );
        assert!(c.mbs_mut().avalon().kind().is_nonvolatile());
        assert_eq!(c.population().total_bytes(), 512 << 20);
        // Flush is supported on the MRAM card.
        c.push_downstream(
            SimTime::ZERO,
            DownstreamPayload::Command {
                tag: t(7),
                header: CommandHeader::Flush,
            },
        );
        let resp = drain(&mut c, SimTime::from_us(2));
        assert!(matches!(
            resp.last().unwrap().1,
            UpstreamPayload::Done { first, .. } if first == t(7)
        ));
        assert_eq!(c.stats().mbs.flushes, 1);
    }

    #[test]
    fn nvdimm_card_survives_power_cycle_and_torn_save_is_typed() {
        let pop = MemoryPopulation {
            kind: MemoryKind::NvdimmN,
            dimm_capacity: 512 << 10,
            dimms: 2,
        };
        // Armed card with an ideal supercap: the image comes back.
        let mut c = ConTutto::new(ContuttoConfig::base(), pop);
        let line = [0x5Au8; 128];
        assert!(c.sideband_write_line(0x100, &line, false));
        assert!(c.set_save_armed(true));
        let quiet = c.power_cut(SimTime::from_ms(1));
        assert!(quiet > SimTime::from_ms(1), "save engine takes time");
        let (ready, outcome) = c.power_restore(quiet + SimTime::from_secs(1));
        assert_eq!(outcome, PowerRestoreOutcome::Restored);
        assert!(ready > quiet);
        let (back, poison) = c.sideband_read_line(ready, 0x100).unwrap();
        assert_eq!(back, line);
        assert!(!poison);

        // Starved supercap: the save tears and the loss is typed.
        let mut c = ConTutto::new(ContuttoConfig::base(), pop);
        c.sideband_write_line(0x100, &line, false);
        c.set_save_armed(true);
        c.set_supercap_budget_nj(contutto_memdev::SAVE_COST_PER_PAGE_NJ * 4);
        let quiet = c.power_cut(SimTime::from_ms(1));
        let (_, outcome) = c.power_restore(quiet + SimTime::from_secs(1));
        assert_eq!(outcome, PowerRestoreOutcome::TornSave);
        // After the typed loss the card serves traffic empty, never
        // presenting the torn image as data.
        let (back, _) = c.sideband_read_line(SimTime::from_secs(2), 0x100).unwrap();
        assert_eq!(back, [0u8; 128]);
    }

    #[test]
    fn dram_card_power_cycle_is_volatile() {
        let mut c = ConTutto::new(ContuttoConfig::base(), MemoryPopulation::dram_8gb());
        c.sideband_write_line(0x2000, &[9u8; 128], false);
        assert!(!c.set_save_armed(true), "no save engine on DRAM");
        let quiet = c.power_cut(SimTime::from_ms(1));
        assert_eq!(quiet, SimTime::from_ms(1), "nothing to save");
        let (_, outcome) = c.power_restore(quiet);
        assert_eq!(outcome, PowerRestoreOutcome::Volatile);
        let (back, _) = c.sideband_read_line(quiet, 0x2000).unwrap();
        assert_eq!(back, [0u8; 128]);
    }

    #[test]
    fn naive_design_has_higher_turnaround() {
        let base = ConTutto::new(ContuttoConfig::base(), MemoryPopulation::dram_8gb());
        let naive = ConTutto::new(ContuttoConfig::naive(), MemoryPopulation::dram_8gb());
        // CDC FIFO (4 cy) + 2x2 extra CRC stages = 8 cy = 32 ns.
        assert_eq!(
            naive.frtl_turnaround() - base.frtl_turnaround(),
            SimTime::from_ns(32)
        );
    }

    #[test]
    fn base_turnaround_value() {
        let c = ConTutto::new(ContuttoConfig::base(), MemoryPopulation::dram_8gb());
        // phy 5+5, mbi 3+2 cycles = 15 cy = 60 ns.
        assert_eq!(c.frtl_turnaround(), SimTime::from_ns(60));
    }

    #[test]
    fn knob_config_names() {
        assert_eq!(ContuttoConfig::with_knob(0).name, "contutto-base");
        assert_eq!(ContuttoConfig::with_knob(6).name, "contutto-knob-6");
    }

    #[test]
    fn read_latency_through_card_is_fpga_slow() {
        let mut c = ConTutto::new(ContuttoConfig::base(), MemoryPopulation::dram_8gb());
        c.push_downstream(
            SimTime::ZERO,
            DownstreamPayload::Command {
                tag: t(0),
                header: CommandHeader::Read { addr: 0 },
            },
        );
        let resp = drain(&mut c, SimTime::from_us(2));
        let done = resp.last().unwrap().0;
        // The FPGA path alone is ~350 ns — far above Centaur's ~70 ns.
        assert!(done > SimTime::from_ns(300), "done {done}");
        assert!(done < SimTime::from_ns(430), "done {done}");
    }

    #[test]
    fn snapshot_restore_card_resumes_identically() {
        let mut c = ConTutto::new(ContuttoConfig::with_knob(2), MemoryPopulation::dram_8gb());
        let line = CacheLine::patterned(31);
        c.push_downstream(
            SimTime::ZERO,
            DownstreamPayload::Command {
                tag: t(0),
                header: CommandHeader::Write { addr: 0x8000 },
            },
        );
        for (i, beat) in line_to_downstream_beats(t(0), &line)
            .into_iter()
            .enumerate()
        {
            c.push_downstream(SimTime::from_ns(2) * (i as u64 + 1), beat);
        }
        drain(&mut c, SimTime::from_us(2));
        // A read whose response is still queued rides across the
        // snapshot boundary.
        c.push_downstream(
            SimTime::from_us(3),
            DownstreamPayload::Command {
                tag: t(1),
                header: CommandHeader::Read { addr: 0x8000 },
            },
        );
        let mut img = Vec::new();
        c.snapshot_state(&mut img);

        let mut fresh = ConTutto::new(ContuttoConfig::with_knob(2), MemoryPopulation::dram_8gb());
        fresh.restore_state(&mut SnapReader::new(&img)).unwrap();
        let a = drain(&mut c, SimTime::from_us(6));
        let b = drain(&mut fresh, SimTime::from_us(6));
        assert_eq!(a, b, "restored card must replay the exact response stream");
        assert_eq!(c.stats(), fresh.stats());
        assert_eq!(c.ras_counters(), fresh.ras_counters());

        // A card with a different population refuses the image.
        let mut mram = ConTutto::new(
            ContuttoConfig::with_knob(2),
            MemoryPopulation::mram_512mb(MramGeneration::Pmtj),
        );
        let err = mram.restore_state(&mut SnapReader::new(&img)).unwrap_err();
        assert!(
            matches!(err, snapshot::RestoreError::TopologyMismatch { .. }),
            "got {err:?}"
        );
    }

    #[test]
    #[should_panic(expected = "two DIMM connectors")]
    fn population_validation() {
        let _ = ConTutto::new(
            ContuttoConfig::base(),
            MemoryPopulation {
                kind: MemoryKind::Ddr3Dram,
                dimm_capacity: 1 << 30,
                dimms: 3,
            },
        );
    }
}
