//! Soft memory controllers.
//!
//! Paper §3.3(v): "Supporting these different memory types mainly
//! requires changes only to the memory controller ... For DRAM
//! enablement, we use the soft DDR3 memory controller from Altera. To
//! enable MRAM and NVDIMM devices, we use the generated code for the
//! DRAM memory controller as a starting point and make the necessary
//! changes as suggested by the memory vendors."
//!
//! Paper §4.2: the persistent-memory stack additionally needs a
//! **flush** command — "we extended the MBS logic to add a special
//! flush command ... this functionality does not exist in the Centaur
//! ASIC" — which completes once every outstanding write is durable at
//! the media. The controller tracks write completion times to serve
//! it.

use contutto_dmi::PowerRestoreOutcome;
use contutto_memdev::{
    DdrTimings, Dram, FaultConfig, MemoryDevice, MramGeneration, NvdimmN, RasCounters, ReadOutcome,
    ReadResult, RestoreError, SaveState, SttMram,
};
use contutto_sim::snapshot::{self, Persist, SnapReader};
use contutto_sim::{SimTime, TraceEvent, Tracer};

/// The memory technology a controller instance drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemoryKind {
    /// Standard DDR3 DRAM.
    Ddr3Dram,
    /// STT-MRAM of the given generation.
    SttMram(MramGeneration),
    /// Flash-backed NVDIMM-N.
    NvdimmN,
}

impl MemoryKind {
    /// Whether the media retains contents across power loss.
    pub fn is_nonvolatile(self) -> bool {
        !matches!(self, MemoryKind::Ddr3Dram)
    }
}

#[derive(Debug)]
enum PortDevice {
    Dram(Box<Dram>),
    Mram(Box<SttMram>),
    Nvdimm(Box<NvdimmN>),
}

impl PortDevice {
    fn as_device_mut(&mut self) -> &mut dyn MemoryDevice {
        match self {
            PortDevice::Dram(d) => d.as_mut(),
            PortDevice::Mram(d) => d.as_mut(),
            PortDevice::Nvdimm(d) => d.as_mut(),
        }
    }
}

/// One soft memory controller driving one DIMM port.
///
/// Besides demand traffic, the controller owns the port's patrol-scrub
/// schedule ([`MemoryController::enable_scrub`]): before each demand
/// access it replays any scrub passes that fell due, so background
/// correction interleaves deterministically with foreground traffic.
#[derive(Debug)]
pub struct MemoryController {
    kind: MemoryKind,
    device: PortDevice,
    /// Completion time of the latest write (for flush).
    last_write_durable: SimTime,
    reads: u64,
    writes: u64,
    flushes: u64,
    scrub_interval: Option<SimTime>,
    next_scrub: SimTime,
    tracer: Tracer,
}

impl MemoryController {
    /// Creates a controller for `capacity` bytes of the given media.
    pub fn new(kind: MemoryKind, capacity: u64) -> Self {
        let device = match kind {
            MemoryKind::Ddr3Dram => {
                PortDevice::Dram(Box::new(Dram::new(capacity, DdrTimings::ddr3_1600())))
            }
            MemoryKind::SttMram(gen) => PortDevice::Mram(Box::new(SttMram::new(capacity, gen))),
            MemoryKind::NvdimmN => {
                PortDevice::Nvdimm(Box::new(NvdimmN::new(capacity, DdrTimings::ddr3_1600())))
            }
        };
        MemoryController {
            kind,
            device,
            last_write_durable: SimTime::ZERO,
            reads: 0,
            writes: 0,
            flushes: 0,
            scrub_interval: None,
            next_scrub: SimTime::ZERO,
            tracer: Tracer::off(),
        }
    }

    /// Routes RAS trace events into a shared tracer.
    pub fn attach_tracer(&mut self, tracer: Tracer) {
        if let PortDevice::Nvdimm(d) = &mut self.device {
            d.attach_tracer(tracer.clone());
        }
        self.tracer = tracer;
    }

    /// Installs a deterministic media-fault injector on this port.
    pub fn attach_media_faults(&mut self, cfg: FaultConfig) {
        match &mut self.device {
            PortDevice::Dram(d) => d.attach_media_faults(cfg),
            PortDevice::Mram(d) => d.attach_media_faults(cfg),
            PortDevice::Nvdimm(d) => d.attach_media_faults(cfg),
        }
    }

    /// Installs an injector whose flip schedule starts at `now`
    /// (runtime re-arm from a chaos plan).
    pub fn attach_media_faults_at(&mut self, now: SimTime, cfg: FaultConfig) {
        match &mut self.device {
            PortDevice::Dram(d) => d.attach_media_faults_at(now, cfg),
            PortDevice::Mram(d) => d.attach_media_faults_at(now, cfg),
            PortDevice::Nvdimm(d) => d.attach_media_faults_at(now, cfg),
        }
    }

    /// Correctable errors a page may accumulate before retirement.
    pub fn set_retire_threshold(&mut self, threshold: u32) {
        match &mut self.device {
            PortDevice::Dram(d) => d.set_retire_threshold(threshold),
            PortDevice::Mram(d) => d.set_retire_threshold(threshold),
            PortDevice::Nvdimm(d) => d.set_retire_threshold(threshold),
        }
    }

    /// Enables patrol scrub with the given interval; the first pass
    /// falls due one interval from time zero.
    pub fn enable_scrub(&mut self, interval: SimTime) {
        assert!(interval > SimTime::ZERO, "scrub interval must be nonzero");
        self.scrub_interval = Some(interval);
        self.next_scrub = interval;
    }

    /// Enables patrol scrub mid-run: the first pass falls due one
    /// interval after `now`, never retroactively. A zero interval is
    /// clamped to 1 ps — chaos plans are external input and must not
    /// abort the process.
    pub fn enable_scrub_at(&mut self, now: SimTime, interval: SimTime) {
        let interval = interval.max(SimTime::from_ps(1));
        self.scrub_interval = Some(interval);
        self.next_scrub = now + interval;
    }

    /// Disables patrol scrub.
    pub fn disable_scrub(&mut self) {
        self.scrub_interval = None;
    }

    /// Current patrol-scrub interval, if scrub is enabled.
    pub fn scrub_interval(&self) -> Option<SimTime> {
        self.scrub_interval
    }

    /// Cumulative media RAS counters for this port.
    pub fn ras_counters(&self) -> RasCounters {
        match &self.device {
            PortDevice::Dram(d) => d.ras_counters(),
            PortDevice::Mram(d) => d.ras_counters(),
            PortDevice::Nvdimm(d) => d.ras_counters(),
        }
    }

    /// Pages retired on this port so far.
    pub fn retired_pages(&self) -> Vec<u64> {
        match &self.device {
            PortDevice::Dram(d) => d.retired_pages(),
            PortDevice::Mram(d) => d.retired_pages(),
            PortDevice::Nvdimm(d) => d.retired_pages(),
        }
    }

    /// Replays every scrub pass that fell due at or before `now`, at
    /// its nominal time, so background correction interleaves
    /// deterministically with the demand stream.
    fn run_due_scrub(&mut self, now: SimTime) {
        let Some(interval) = self.scrub_interval else {
            return;
        };
        while self.next_scrub <= now {
            let at = self.next_scrub;
            let report = self.device.as_device_mut().scrub_pass(at);
            self.tracer.record(TraceEvent::ScrubPass {
                corrected: report.corrected,
                uncorrectable: report.uncorrectable,
            });
            for page in &report.retired_pages {
                self.tracer.record(TraceEvent::PageRetired { addr: *page });
            }
            self.next_scrub = at + interval;
        }
    }

    fn note_outcome(&mut self, addr: u64, outcome: ReadOutcome) {
        match outcome {
            ReadOutcome::Clean => {}
            ReadOutcome::Corrected { bits } => {
                self.tracer.record(TraceEvent::EccCorrected { addr, bits });
            }
            ReadOutcome::Uncorrectable => {
                self.tracer.record(TraceEvent::EccUncorrectable { addr });
            }
        }
    }

    /// The media kind.
    pub fn kind(&self) -> MemoryKind {
        self.kind
    }

    /// Capacity of the attached DIMM.
    pub fn capacity_bytes(&self) -> u64 {
        match &self.device {
            PortDevice::Dram(d) => d.capacity_bytes(),
            PortDevice::Mram(d) => d.capacity_bytes(),
            PortDevice::Nvdimm(d) => d.capacity_bytes(),
        }
    }

    /// Reads one 128 B line; returns data, availability time, and the
    /// media ECC outcome.
    pub fn read_line(&mut self, now: SimTime, addr: u64) -> ([u8; 128], SimTime, ReadOutcome) {
        self.run_due_scrub(now);
        self.reads += 1;
        let mut buf = [0u8; 128];
        let result = self.device.as_device_mut().read(now, addr, &mut buf);
        self.note_outcome(addr, result.outcome);
        (buf, result.done, result.outcome)
    }

    /// Writes one 128 B line; returns durability time.
    pub fn write_line(&mut self, now: SimTime, addr: u64, data: &[u8; 128]) -> SimTime {
        self.run_due_scrub(now);
        self.writes += 1;
        let done = self.device.as_device_mut().write(now, addr, data);
        self.last_write_durable = self.last_write_durable.max(done);
        done
    }

    /// Reads an arbitrary span (accelerator/Access-processor path).
    pub fn read_span(&mut self, now: SimTime, addr: u64, buf: &mut [u8]) -> ReadResult {
        self.run_due_scrub(now);
        self.reads += 1;
        let result = self.device.as_device_mut().read(now, addr, buf);
        self.note_outcome(addr, result.outcome);
        result
    }

    /// Writes an arbitrary span (accelerator/Access-processor path).
    pub fn write_span(&mut self, now: SimTime, addr: u64, data: &[u8]) -> SimTime {
        self.run_due_scrub(now);
        self.writes += 1;
        let done = self.device.as_device_mut().write(now, addr, data);
        self.last_write_durable = self.last_write_durable.max(done);
        done
    }

    /// Functional read without timing — the accelerator DMA path,
    /// whose timing is accounted by the Access processor's transfer
    /// engine rather than per-burst device charges.
    pub fn peek_span(&self, addr: u64, buf: &mut [u8]) {
        match &self.device {
            PortDevice::Dram(d) => d.peek(addr, buf),
            PortDevice::Mram(d) => d.peek(addr, buf),
            PortDevice::Nvdimm(d) => d.peek(addr, buf),
        }
    }

    /// Functional write without timing (accelerator DMA path).
    pub fn poke_span(&mut self, addr: u64, data: &[u8]) {
        match &mut self.device {
            PortDevice::Dram(d) => d.poke(addr, data),
            PortDevice::Mram(d) => d.poke(addr, data),
            PortDevice::Nvdimm(d) => d.poke(addr, data),
        }
    }

    /// Maintenance-path read of one 128 B line via the service
    /// interface (FSI → I²C sideband, paper §3.4): functional, zero
    /// timing, independent of the DMI link. Returns the ECC-verified
    /// line and whether it must travel as poison.
    pub fn sideband_read_line(&mut self, now: SimTime, addr: u64) -> ([u8; 128], bool) {
        match &mut self.device {
            PortDevice::Dram(d) => d.sideband_read_line(now, addr),
            PortDevice::Mram(d) => d.sideband_read_line(now, addr),
            PortDevice::Nvdimm(d) => d.sideband_read_line(now, addr),
        }
    }

    /// Maintenance-path write of one 128 B line, optionally depositing
    /// it with its poison marker (evacuation moves rot as rot).
    pub fn sideband_write_line(&mut self, addr: u64, data: &[u8; 128], poison: bool) {
        match &mut self.device {
            PortDevice::Dram(d) => d.sideband_write_line(addr, data, poison),
            PortDevice::Mram(d) => d.sideband_write_line(addr, data, poison),
            PortDevice::Nvdimm(d) => d.sideband_write_line(addr, data, poison),
        }
    }

    /// Flush: completes when all previously issued writes are durable.
    pub fn flush(&mut self, now: SimTime) -> SimTime {
        self.flushes += 1;
        now.max(self.last_write_durable)
    }

    /// (reads, writes, flushes) issued so far.
    pub fn op_counts(&self) -> (u64, u64, u64) {
        (self.reads, self.writes, self.flushes)
    }

    /// Power cut on this port: volatile contents are gone *now*; an
    /// armed NVDIMM's on-DIMM engine starts streaming DRAM to flash.
    /// Returns when the port is electrically quiet.
    pub fn power_cut(&mut self, now: SimTime) -> SimTime {
        // Outstanding-write bookkeeping dies with the power rail.
        self.last_write_durable = SimTime::ZERO;
        match &mut self.device {
            PortDevice::Dram(d) => {
                d.power_loss();
                now
            }
            PortDevice::Mram(d) => {
                d.power_loss();
                now
            }
            PortDevice::Nvdimm(d) => d.power_loss(now),
        }
    }

    /// Power returns on this port. Recovers whatever the media held:
    /// MRAM cells natively, an NVDIMM by restoring its save image.
    /// Every failure is typed — a torn or corrupt image leaves the
    /// port usable but *empty*, with the loss reported in the outcome,
    /// never silently presented as data.
    pub fn power_restore(&mut self, now: SimTime) -> (SimTime, PowerRestoreOutcome) {
        match &mut self.device {
            PortDevice::Dram(_) => (now, PowerRestoreOutcome::Volatile),
            PortDevice::Mram(_) => (now, PowerRestoreOutcome::Restored),
            PortDevice::Nvdimm(d) => {
                let was_lost = matches!(d.save_state(), SaveState::Lost);
                match d.power_restore(now) {
                    // Disarmed at the cut: contents are gone, and that
                    // is a loss the caller must surface.
                    Ok(ready) if was_lost => (ready, PowerRestoreOutcome::Lost),
                    Ok(ready) => (ready, PowerRestoreOutcome::Restored),
                    Err(e) => {
                        let outcome = match e {
                            RestoreError::TornSave { .. } => PowerRestoreOutcome::TornSave,
                            RestoreError::CrcMismatch { .. } => PowerRestoreOutcome::CorruptImage,
                            _ => PowerRestoreOutcome::Lost,
                        };
                        // The failed restore left the DIMM in `Lost`;
                        // a second restore brings it up usable-empty.
                        let ready = d.power_restore(now).unwrap_or(now);
                        (ready, outcome)
                    }
                }
            }
        }
    }

    /// Arms/disarms the port's NVDIMM save engine. Returns `true` if
    /// the port has one.
    pub fn set_save_armed(&mut self, armed: bool) -> bool {
        match &mut self.device {
            PortDevice::Nvdimm(d) => {
                d.set_armed(armed);
                true
            }
            _ => false,
        }
    }

    /// Installs a finite supercap budget on the port's NVDIMM save
    /// engine, if it has one.
    pub fn set_supercap_budget_nj(&mut self, nj: u64) {
        if let PortDevice::Nvdimm(d) = &mut self.device {
            d.set_supercap_budget_nj(nj);
        }
    }

    /// NVDIMM save/restore engine access (firmware path).
    pub fn as_nvdimm_mut(&mut self) -> Option<&mut NvdimmN> {
        match &mut self.device {
            PortDevice::Nvdimm(d) => Some(d.as_mut()),
            _ => None,
        }
    }

    /// MRAM wear/energy telemetry, if this port drives MRAM.
    pub fn as_mram(&self) -> Option<&SttMram> {
        match &self.device {
            PortDevice::Mram(d) => Some(d.as_ref()),
            _ => None,
        }
    }

    /// Serializes the controller's dynamic state: the device (contents,
    /// wear, save engine), flush bookkeeping, op counters and the
    /// patrol-scrub schedule. The payload is tagged with the media kind
    /// so a restore into a differently-populated port fails as a
    /// topology mismatch instead of misinterpreting the bytes.
    pub fn snapshot_state(&self, out: &mut Vec<u8>) {
        match &self.device {
            PortDevice::Dram(d) => {
                0u8.persist(out);
                d.snapshot_state(out);
            }
            PortDevice::Mram(d) => {
                1u8.persist(out);
                d.snapshot_state(out);
            }
            PortDevice::Nvdimm(d) => {
                2u8.persist(out);
                d.snapshot_state(out);
            }
        }
        self.last_write_durable.persist(out);
        self.reads.persist(out);
        self.writes.persist(out);
        self.flushes.persist(out);
        self.scrub_interval.persist(out);
        self.next_scrub.persist(out);
    }

    /// Overlays a [`MemoryController::snapshot_state`] image.
    ///
    /// # Errors
    ///
    /// [`snapshot::RestoreError::TopologyMismatch`] if this port drives
    /// a different media kind than the image, or any decode error from
    /// a corrupt payload.
    pub fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), snapshot::RestoreError> {
        let tag = r.u8()?;
        match (&mut self.device, tag) {
            (PortDevice::Dram(d), 0) => d.restore_state(r)?,
            (PortDevice::Mram(d), 1) => d.restore_state(r)?,
            (PortDevice::Nvdimm(d), 2) => d.restore_state(r)?,
            (_, 0..=2) => {
                return Err(snapshot::RestoreError::TopologyMismatch {
                    context: "memory-controller media kind",
                })
            }
            _ => {
                return Err(snapshot::RestoreError::Malformed {
                    context: "memory-controller media discriminant",
                })
            }
        }
        let last_write_durable = SimTime::restore(r)?;
        let reads = r.u64()?;
        let writes = r.u64()?;
        let flushes = r.u64()?;
        let scrub_interval = Option::<SimTime>::restore(r)?;
        let next_scrub = SimTime::restore(r)?;
        self.last_write_durable = last_write_durable;
        self.reads = reads;
        self.writes = writes;
        self.flushes = flushes;
        self.scrub_interval = scrub_interval;
        self.next_scrub = next_scrub;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dram_controller_roundtrip() {
        let mut mc = MemoryController::new(MemoryKind::Ddr3Dram, 1 << 30);
        let data = [0xABu8; 128];
        let t1 = mc.write_line(SimTime::ZERO, 0x100_0000, &data);
        let (back, t2, outcome) = mc.read_line(t1, 0x100_0000);
        assert_eq!(back, data);
        assert!(t2 > t1);
        assert!(outcome.is_clean());
        assert_eq!(mc.op_counts(), (1, 1, 0));
    }

    #[test]
    fn mram_controller_uses_mram_timing() {
        let mut dram = MemoryController::new(MemoryKind::Ddr3Dram, 1 << 28);
        let mut mram = MemoryController::new(MemoryKind::SttMram(MramGeneration::Pmtj), 1 << 28);
        let (_, t_dram, _) = dram.read_line(SimTime::ZERO, 0);
        let (_, t_mram, _) = mram.read_line(SimTime::ZERO, 0);
        // pMTJ: 2 x 35 ns = 70 ns for 128 B vs DRAM ~51 ns.
        assert!(t_mram > t_dram);
        assert!(mram.as_mram().is_some());
        assert!(dram.as_mram().is_none());
    }

    #[test]
    fn flush_waits_for_outstanding_writes() {
        let mut mc = MemoryController::new(MemoryKind::SttMram(MramGeneration::Pmtj), 1 << 28);
        let durable = mc.write_line(SimTime::ZERO, 0, &[1u8; 128]);
        // Flush issued immediately: completes only once the write is durable.
        let f = mc.flush(SimTime::from_ns(1));
        assert_eq!(f, durable);
        // Flush after everything is durable: immediate.
        let f2 = mc.flush(durable + SimTime::from_ns(5));
        assert_eq!(f2, durable + SimTime::from_ns(5));
        assert_eq!(mc.op_counts().2, 2);
    }

    #[test]
    fn nonvolatility_by_kind() {
        assert!(!MemoryKind::Ddr3Dram.is_nonvolatile());
        assert!(MemoryKind::SttMram(MramGeneration::Imtj).is_nonvolatile());
        assert!(MemoryKind::NvdimmN.is_nonvolatile());
    }

    #[test]
    fn nvdimm_engine_reachable() {
        let mut mc = MemoryController::new(MemoryKind::NvdimmN, 1 << 20);
        assert!(mc.as_nvdimm_mut().is_some());
        mc.write_line(SimTime::ZERO, 0, &[7u8; 128]);
        let nv = mc.as_nvdimm_mut().unwrap();
        let done = nv.power_loss(SimTime::from_ms(1));
        nv.power_restore(done).expect("clean restore");
        let (back, _, _) = mc.read_line(SimTime::from_secs(1), 0);
        assert_eq!(back, [7u8; 128]);
    }

    #[test]
    fn snapshot_restore_resumes_scrub_and_flush_bookkeeping() {
        let mut mc = MemoryController::new(MemoryKind::SttMram(MramGeneration::Pmtj), 1 << 20);
        mc.enable_scrub(SimTime::from_us(50));
        let durable = mc.write_line(SimTime::ZERO, 0x100, &[0x77u8; 128]);
        let mut img = Vec::new();
        mc.snapshot_state(&mut img);

        let mut fresh = MemoryController::new(MemoryKind::SttMram(MramGeneration::Pmtj), 1 << 20);
        fresh.restore_state(&mut SnapReader::new(&img)).unwrap();
        // Contents, flush horizon, op counters and scrub schedule all
        // came back.
        let (back, _, _) = fresh.read_line(durable, 0x100);
        assert_eq!(back, [0x77u8; 128]);
        assert_eq!(
            fresh.flush(SimTime::from_ns(1)),
            mc.flush(SimTime::from_ns(1))
        );
        assert_eq!(fresh.scrub_interval(), Some(SimTime::from_us(50)));
        let (r, w, f) = fresh.op_counts();
        assert_eq!((r, w), (1, 1));
        assert_eq!(f, 1);

        // A differently-populated port refuses the image.
        let mut dram = MemoryController::new(MemoryKind::Ddr3Dram, 1 << 20);
        let err = dram.restore_state(&mut SnapReader::new(&img)).unwrap_err();
        assert!(
            matches!(err, snapshot::RestoreError::TopologyMismatch { .. }),
            "got {err:?}"
        );
    }

    #[test]
    fn scrub_heals_latent_faults_and_traces() {
        use contutto_memdev::FaultConfig;

        let mut mc = MemoryController::new(MemoryKind::Ddr3Dram, 1 << 20);
        let tracer = Tracer::ring(256);
        mc.attach_tracer(tracer.clone());
        mc.attach_media_faults(FaultConfig {
            transient_flips: 4,
            window: SimTime::from_us(100),
            hot_start: 0,
            hot_len: 256,
            ..FaultConfig::none(7)
        });
        mc.enable_scrub(SimTime::from_us(50));
        mc.write_line(SimTime::ZERO, 0, &[0x3Cu8; 128]);
        mc.write_line(SimTime::ZERO, 128, &[0x3Cu8; 128]);
        // A demand access long after the fault window: the catch-up
        // loop replays the due scrub passes first, which heal the
        // single-bit flips before they can pair up.
        let (back, _, outcome) = mc.read_line(SimTime::from_ms(1), 0);
        assert!(!outcome.is_uncorrectable());
        assert_eq!(back, [0x3Cu8; 128]);
        let c = mc.ras_counters();
        assert!(c.scrub_passes >= 20, "passes {}", c.scrub_passes);
        assert!(
            tracer.count_matching(|e| matches!(e, TraceEvent::ScrubPass { .. })) > 0,
            "scrub passes must be traced"
        );
    }
}
