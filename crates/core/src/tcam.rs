//! The on-card TCAM.
//!
//! Paper §3.2: "the PCIe and TCAM blocks are included in the ConTutto
//! design to allow for future experimentation. The TCAM is a ternary
//! CAM, which could be potentially used to contain routing tables or
//! tag entries on a data cache or for the acceleration of other
//! applications requiring look-up."
//!
//! This models the discrete TCAM chip on the card (Figure 3): fixed
//! entry count, single-cycle masked match across all entries,
//! lowest-index priority. Two canonical uses are exercised in tests:
//! a longest-prefix-match routing table and a cache tag directory.

use contutto_sim::{time::clocks, Cycles, SimTime};

/// One TCAM entry: matches a key when `(key & mask) == (value & mask)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TcamEntry {
    /// Match value.
    pub value: u64,
    /// Care mask (1 bits are compared; 0 bits are "don't care").
    pub mask: u64,
    /// Associated data returned on a hit.
    pub data: u64,
}

impl TcamEntry {
    fn matches(&self, key: u64) -> bool {
        (key & self.mask) == (self.value & self.mask)
    }
}

/// Lookup statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TcamStats {
    /// Lookups performed.
    pub lookups: u64,
    /// Lookups that matched an entry.
    pub hits: u64,
}

/// The ternary CAM.
///
/// # Example
///
/// ```
/// use contutto_core::{Tcam, TcamEntry};
///
/// let mut tcam = Tcam::new(8);
/// tcam.program(0, TcamEntry { value: 0xFF00, mask: 0xFF00, data: 7 });
/// assert_eq!(tcam.lookup(0xFF42), Some((0, 7))); // low byte is don't-care
/// assert_eq!(tcam.lookup(0x0042), None);
/// ```
#[derive(Debug, Clone)]
pub struct Tcam {
    entries: Vec<Option<TcamEntry>>,
    stats: TcamStats,
}

impl Tcam {
    /// Creates a TCAM with `slots` entries (all empty).
    ///
    /// # Panics
    ///
    /// Panics if `slots` is zero.
    pub fn new(slots: usize) -> Self {
        assert!(slots > 0, "need at least one slot");
        Tcam {
            entries: vec![None; slots],
            stats: TcamStats::default(),
        }
    }

    /// Slot count.
    pub fn slots(&self) -> usize {
        self.entries.len()
    }

    /// Programs a slot.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range.
    pub fn program(&mut self, slot: usize, entry: TcamEntry) {
        self.entries[slot] = Some(entry);
    }

    /// Clears a slot.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range.
    pub fn clear(&mut self, slot: usize) {
        self.entries[slot] = None;
    }

    /// Single-cycle lookup: all entries compared in parallel, lowest
    /// matching slot wins. Returns `(slot, data)` on a hit.
    pub fn lookup(&mut self, key: u64) -> Option<(usize, u64)> {
        self.stats.lookups += 1;
        for (slot, entry) in self.entries.iter().enumerate() {
            if let Some(e) = entry {
                if e.matches(key) {
                    self.stats.hits += 1;
                    return Some((slot, e.data));
                }
            }
        }
        None
    }

    /// Fixed lookup latency: one fabric cycle, as a parallel match.
    pub fn lookup_latency(&self) -> SimTime {
        clocks::FPGA_FABRIC.cycles_to_time(Cycles(1))
    }

    /// Statistics so far.
    pub fn stats(&self) -> TcamStats {
        self.stats
    }

    /// Programs an IPv4-style longest-prefix route: entries must be
    /// inserted most-specific first for priority to implement LPM.
    /// Returns the slot used, or `None` when full.
    pub fn program_prefix(&mut self, prefix: u64, prefix_len: u32, data: u64) -> Option<usize> {
        let mask = if prefix_len == 0 {
            0
        } else {
            u64::MAX << (64 - prefix_len)
        };
        let slot = self.entries.iter().position(|e| e.is_none())?;
        self.program(
            slot,
            TcamEntry {
                value: prefix,
                mask,
                data,
            },
        );
        Some(slot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_match_lookup() {
        let mut t = Tcam::new(8);
        t.program(
            3,
            TcamEntry {
                value: 0xABCD,
                mask: u64::MAX,
                data: 42,
            },
        );
        assert_eq!(t.lookup(0xABCD), Some((3, 42)));
        assert_eq!(t.lookup(0xABCE), None);
        assert_eq!(t.stats().lookups, 2);
        assert_eq!(t.stats().hits, 1);
    }

    #[test]
    fn dont_care_bits_ignored() {
        let mut t = Tcam::new(4);
        t.program(
            0,
            TcamEntry {
                value: 0xFF00,
                mask: 0xFF00,
                data: 1,
            },
        );
        assert!(t.lookup(0xFF42).is_some());
        assert!(t.lookup(0xFFFF).is_some());
        assert!(t.lookup(0xFE00).is_none());
    }

    #[test]
    fn lowest_slot_wins_priority() {
        let mut t = Tcam::new(4);
        t.program(
            2,
            TcamEntry {
                value: 0,
                mask: 0,
                data: 99,
            }, // catch-all
        );
        t.program(
            1,
            TcamEntry {
                value: 0x10,
                mask: 0xF0,
                data: 7,
            },
        );
        assert_eq!(t.lookup(0x15), Some((1, 7)));
        assert_eq!(t.lookup(0x25), Some((2, 99)));
    }

    #[test]
    fn longest_prefix_match_routing_table() {
        // The paper's routing-table use case: most-specific first.
        let mut t = Tcam::new(16);
        let net = |a: u64, b: u64, c: u64, d: u64| (a << 56) | (b << 48) | (c << 40) | (d << 32);
        t.program_prefix(net(10, 1, 2, 0), 24, 100).unwrap(); // 10.1.2.0/24 -> if 100
        t.program_prefix(net(10, 1, 0, 0), 16, 200).unwrap(); // 10.1.0.0/16 -> if 200
        t.program_prefix(0, 0, 999).unwrap(); // default route
        assert_eq!(t.lookup(net(10, 1, 2, 7)).unwrap().1, 100);
        assert_eq!(t.lookup(net(10, 1, 9, 1)).unwrap().1, 200);
        assert_eq!(t.lookup(net(192, 168, 0, 1)).unwrap().1, 999);
    }

    #[test]
    fn cache_tag_directory_use_case() {
        // Tag entries on a data cache: key = line address, data = way.
        let mut t = Tcam::new(8);
        for way in 0..4u64 {
            t.program(
                way as usize,
                TcamEntry {
                    value: 0x1000 + way * 128,
                    mask: !127, // line-granular match
                    data: way,
                },
            );
        }
        // Any byte inside a cached line resolves to its way.
        assert_eq!(t.lookup(0x1000 + 64).unwrap().1, 0);
        assert_eq!(t.lookup(0x1180 + 5).unwrap().1, 3);
        assert_eq!(t.lookup(0x2000), None);
    }

    #[test]
    fn lookup_is_single_cycle() {
        let t = Tcam::new(1024);
        assert_eq!(t.lookup_latency(), SimTime::from_ns(4));
    }

    #[test]
    fn clear_removes_entry() {
        let mut t = Tcam::new(2);
        t.program(
            0,
            TcamEntry {
                value: 1,
                mask: u64::MAX,
                data: 1,
            },
        );
        t.clear(0);
        assert_eq!(t.lookup(1), None);
    }
}
