//! Near-memory acceleration (paper §4.3).
//!
//! Two attachment styles from the paper:
//!
//! * **In-line acceleration** (Figure 11): special load/store commands
//!   handled by augmented command engines in the regular ConTutto
//!   pipeline — min-store, max-store, conditional swap. These are
//!   implemented in the MBS via [`contutto_dmi::command::RmwOp`];
//!   [`inline`] provides the command builders and documentation.
//! * **Block acceleration** (Figure 12): the accelerator appears as a
//!   memory-mapped region; the processor sends a control block
//!   describing the task, the [`crate::access::AccessProcessor`]
//!   streams data between the DIMMs and the accelerator, and
//!   completion status is written back into the control block.
//!   [`block`] implements the driver and the three accelerated
//!   functions of Table 5 (memcpy, min/max, FFT); [`fft`] holds the
//!   actual radix-2 FFT engine.

pub mod block;
pub mod fft;
pub mod inline;

pub use block::{BlockAccelDriver, BlockOp, ControlBlock, ControlBlockStatus};
pub use fft::{fft_1024, Complex32, FftBank};
pub use inline::{conditional_swap_command, max_store_command, min_store_command};
