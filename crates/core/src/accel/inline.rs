//! In-line acceleration command builders (paper Figure 11).
//!
//! "acceleration tasks, identified using special load/store
//! instructions, can be handled by command engines augmented to
//! perform special operations ... (e.g. min-store, max-store,
//! conditional swap etc.) as part of the regular ConTutto pipeline.
//! Since the accelerator is in-line with the main ConTutto pipeline,
//! it has access to the upstream DMI channel and can send direct
//! response to the processor without the need for the processor to
//! poll."
//!
//! The operations themselves execute in the MBS's shared ALU (see
//! [`contutto_dmi::command::RmwOp`] and
//! [`crate::mbs::MbsLogic`]); this module provides the command
//! constructors the processor-side software uses, plus the host-side
//! cost model showing why one round trip beats the software
//! read-compute-write sequence.

use contutto_dmi::command::{CacheLine, CommandOp, MemCommand, RmwOp, Tag};

/// Builds a min-store command: each 64-bit word of the target line
/// becomes `min(old, new)` atomically at the buffer.
pub fn min_store_command(tag: Tag, addr: u64, operand: CacheLine) -> MemCommand {
    MemCommand {
        tag,
        op: CommandOp::Rmw {
            addr,
            op: RmwOp::MinStore,
            data: operand,
        },
    }
}

/// Builds a max-store command.
pub fn max_store_command(tag: Tag, addr: u64, operand: CacheLine) -> MemCommand {
    MemCommand {
        tag,
        op: CommandOp::Rmw {
            addr,
            op: RmwOp::MaxStore,
            data: operand,
        },
    }
}

/// Builds a conditional-swap command: the line is replaced by
/// `operand` iff word 0 matches `operand`'s word 0.
pub fn conditional_swap_command(tag: Tag, addr: u64, operand: CacheLine) -> MemCommand {
    MemCommand {
        tag,
        op: CommandOp::Rmw {
            addr,
            op: RmwOp::ConditionalSwap,
            data: operand,
        },
    }
}

/// Round trips the software equivalent needs for one atomic update
/// without in-line acceleration: read + (compute) + write, and the
/// line is unprotected in between (requiring a lock or retry loop on
/// a real system — one more trip).
pub const SOFTWARE_ROUND_TRIPS: u32 = 2;
/// Round trips with in-line acceleration: the single RMW command.
pub const INLINE_ROUND_TRIPS: u32 = 1;

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> Tag {
        Tag::new(4).unwrap()
    }

    #[test]
    fn builders_produce_fpga_extension_ops() {
        let line = CacheLine::patterned(1);
        for cmd in [
            min_store_command(t(), 0x100, line),
            max_store_command(t(), 0x100, line),
            conditional_swap_command(t(), 0x100, line),
        ] {
            assert!(cmd.op.is_fpga_extension());
            assert_eq!(cmd.op.addr(), Some(0x100));
            assert!(cmd.op.carries_write_data());
            assert_eq!(cmd.tag, t());
        }
    }

    #[test]
    fn inline_halves_round_trips() {
        const { assert!(INLINE_ROUND_TRIPS < SOFTWARE_ROUND_TRIPS) };
    }
}
