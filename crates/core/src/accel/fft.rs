//! The FFT engine: a real radix-2 decimation-in-time FFT over
//! complex 32-bit floating-point samples, plus the pipelined
//! accelerator bank that the Access processor streams blocks through.
//!
//! Paper §4.3, Table 5(iii): "Calculation of 1024-point FFTs based on
//! 8B complex 32-bit floating point samples ... The FFTs are
//! calculated in parallel on multiple FFT accelerators, in such way
//! that, through appropriate scheduling by the Access processor, the
//! sample and result transfers between a given accelerator and the
//! DIMMs are overlapped with computation on the other accelerators."

use contutto_sim::SimTime;

use crate::access::StreamAccelerator;

/// A complex sample: two 32-bit floats (8 bytes — the paper's format).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex32 {
    /// Real part.
    pub re: f32,
    /// Imaginary part.
    pub im: f32,
}

impl Complex32 {
    /// Creates a complex number.
    pub fn new(re: f32, im: f32) -> Self {
        Complex32 { re, im }
    }

    fn mul(self, other: Complex32) -> Complex32 {
        Complex32 {
            re: self.re * other.re - self.im * other.im,
            im: self.re * other.im + self.im * other.re,
        }
    }

    fn add(self, other: Complex32) -> Complex32 {
        Complex32 {
            re: self.re + other.re,
            im: self.im + other.im,
        }
    }

    fn sub(self, other: Complex32) -> Complex32 {
        Complex32 {
            re: self.re - other.re,
            im: self.im - other.im,
        }
    }

    /// Magnitude.
    pub fn abs(self) -> f32 {
        self.re.hypot(self.im)
    }

    /// Parses from 8 little-endian bytes.
    pub fn from_bytes(bytes: &[u8]) -> Self {
        Complex32 {
            re: f32::from_le_bytes(bytes[0..4].try_into().expect("4 bytes")),
            im: f32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes")),
        }
    }

    /// Serializes to 8 little-endian bytes.
    pub fn to_bytes(self) -> [u8; 8] {
        let mut out = [0u8; 8];
        out[0..4].copy_from_slice(&self.re.to_le_bytes());
        out[4..8].copy_from_slice(&self.im.to_le_bytes());
        out
    }
}

/// In-place radix-2 DIT FFT.
///
/// # Panics
///
/// Panics unless `data.len()` is a power of two.
pub fn fft_in_place(data: &mut [Complex32]) {
    let n = data.len();
    assert!(n.is_power_of_two(), "fft length must be a power of two");
    if n <= 1 {
        return;
    }
    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = (i as u32).reverse_bits() >> (32 - bits);
        let j = j as usize;
        if i < j {
            data.swap(i, j);
        }
    }
    // Butterflies.
    let mut len = 2;
    while len <= n {
        let ang = -2.0 * std::f32::consts::PI / len as f32;
        let wlen = Complex32::new(ang.cos(), ang.sin());
        let mut i = 0;
        while i < n {
            let mut w = Complex32::new(1.0, 0.0);
            for k in 0..len / 2 {
                let u = data[i + k];
                let v = data[i + k + len / 2].mul(w);
                data[i + k] = u.add(v);
                data[i + k + len / 2] = u.sub(v);
                w = w.mul(wlen);
            }
            i += len;
        }
        len <<= 1;
    }
}

/// 1024-point FFT (the paper's kernel size).
///
/// # Panics
///
/// Panics unless `data.len() == 1024`.
pub fn fft_1024(data: &mut [Complex32]) {
    assert_eq!(data.len(), 1024, "kernel is 1024-point");
    fft_in_place(data);
}

/// Reference O(n²) DFT for correctness checks.
pub fn dft_reference(input: &[Complex32]) -> Vec<Complex32> {
    let n = input.len();
    (0..n)
        .map(|k| {
            let mut acc = Complex32::default();
            for (j, x) in input.iter().enumerate() {
                let ang = -2.0 * std::f32::consts::PI * (k * j) as f32 / n as f32;
                acc = acc.add(x.mul(Complex32::new(ang.cos(), ang.sin())));
            }
            acc
        })
        .collect()
}

/// Samples per FFT block.
pub const FFT_POINTS: usize = 1024;
/// Bytes per FFT block (1024 × 8 B).
pub const FFT_BLOCK_BYTES: usize = FFT_POINTS * 8;

/// A bank of pipelined FFT accelerator units.
///
/// Each unit processes one 1024-point block in `1024` fabric cycles
/// (one sample per cycle at 250 MHz ⇒ 250 Msamples/s per unit); the
/// bank dispatches incoming blocks to the least-busy unit so transfer
/// and compute overlap across units, as the paper describes.
#[derive(Debug)]
pub struct FftBank {
    unit_free: Vec<SimTime>,
    results: Vec<u8>,
    blocks_done: u64,
    leftover: Vec<u8>,
}

/// Compute time for one 1024-point block at one sample/cycle, 250 MHz.
const BLOCK_COMPUTE: SimTime = SimTime::from_ns(4096);

impl FftBank {
    /// Creates a bank of `units` pipelined FFT engines.
    ///
    /// # Panics
    ///
    /// Panics if `units` is zero.
    pub fn new(units: usize) -> Self {
        assert!(units > 0, "need at least one FFT unit");
        FftBank {
            unit_free: vec![SimTime::ZERO; units],
            results: Vec::new(),
            blocks_done: 0,
            leftover: Vec::new(),
        }
    }

    /// Blocks transformed so far.
    pub fn blocks_done(&self) -> u64 {
        self.blocks_done
    }

    /// Drains the accumulated transformed blocks.
    pub fn take_results(&mut self) -> Vec<u8> {
        std::mem::take(&mut self.results)
    }
}

impl StreamAccelerator for FftBank {
    fn consume(&mut self, start: SimTime, data: &[u8]) -> SimTime {
        // Accumulate stream bytes into whole 8 KiB blocks.
        self.leftover.extend_from_slice(data);
        let mut last_done = start;
        while self.leftover.len() >= FFT_BLOCK_BYTES {
            let block: Vec<u8> = self.leftover.drain(..FFT_BLOCK_BYTES).collect();
            let mut samples: Vec<Complex32> =
                block.chunks_exact(8).map(Complex32::from_bytes).collect();
            fft_in_place(&mut samples);
            for s in &samples {
                self.results.extend_from_slice(&s.to_bytes());
            }
            self.blocks_done += 1;
            // Dispatch to the least-busy unit.
            let unit = self
                .unit_free
                .iter_mut()
                .min_by_key(|t| t.as_ps())
                .expect("nonzero units");
            let begin = start.max(*unit);
            *unit = begin + BLOCK_COMPUTE;
            last_done = last_done.max(*unit);
        }
        last_done
    }

    fn produce(&mut self, out: &mut [u8]) -> usize {
        let n = out.len().min(self.results.len());
        out[..n].copy_from_slice(&self.results[..n]);
        self.results.drain(..n);
        n
    }

    fn name(&self) -> &str {
        "fft-bank"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: Complex32, b: Complex32, tol: f32) -> bool {
        (a.re - b.re).abs() <= tol && (a.im - b.im).abs() <= tol
    }

    #[test]
    fn fft_matches_reference_dft() {
        let input: Vec<Complex32> = (0..64)
            .map(|i| Complex32::new((i as f32 * 0.37).sin(), (i as f32 * 0.11).cos()))
            .collect();
        let reference = dft_reference(&input);
        let mut fast = input.clone();
        fft_in_place(&mut fast);
        for (f, r) in fast.iter().zip(&reference) {
            assert!(close(*f, *r, 1e-3), "fft {f:?} vs dft {r:?}");
        }
    }

    #[test]
    fn impulse_transforms_to_flat_spectrum() {
        let mut data = vec![Complex32::default(); 1024];
        data[0] = Complex32::new(1.0, 0.0);
        fft_1024(&mut data);
        for bin in &data {
            assert!(close(*bin, Complex32::new(1.0, 0.0), 1e-4));
        }
    }

    #[test]
    fn single_tone_peaks_in_one_bin() {
        let n = 1024;
        let freq = 37;
        let mut data: Vec<Complex32> = (0..n)
            .map(|i| {
                let ang = 2.0 * std::f32::consts::PI * (freq * i) as f32 / n as f32;
                Complex32::new(ang.cos(), ang.sin())
            })
            .collect();
        fft_1024(&mut data);
        let peak = data
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.abs().partial_cmp(&b.1.abs()).unwrap())
            .unwrap()
            .0;
        assert_eq!(peak, freq);
        assert!(data[freq].abs() > 1000.0);
    }

    #[test]
    fn parseval_energy_preserved() {
        let input: Vec<Complex32> = (0..256)
            .map(|i| Complex32::new((i as f32).sin(), 0.2 * (i as f32).cos()))
            .collect();
        let time_energy: f32 = input.iter().map(|c| c.abs() * c.abs()).sum();
        let mut freq = input.clone();
        fft_in_place(&mut freq);
        let freq_energy: f32 = freq.iter().map(|c| c.abs() * c.abs()).sum::<f32>() / 256.0;
        assert!(
            (time_energy - freq_energy).abs() / time_energy < 1e-3,
            "{time_energy} vs {freq_energy}"
        );
    }

    #[test]
    fn bytes_roundtrip() {
        let c = Complex32::new(1.5, -2.25);
        assert_eq!(Complex32::from_bytes(&c.to_bytes()), c);
    }

    #[test]
    fn bank_transforms_streamed_blocks() {
        let mut bank = FftBank::new(4);
        let mut block = vec![0u8; FFT_BLOCK_BYTES];
        block[0..8].copy_from_slice(&Complex32::new(1.0, 0.0).to_bytes()); // impulse
        let done = bank.consume(SimTime::ZERO, &block);
        assert_eq!(bank.blocks_done(), 1);
        assert_eq!(done, BLOCK_COMPUTE);
        let results = bank.take_results();
        assert_eq!(results.len(), FFT_BLOCK_BYTES);
        let first = Complex32::from_bytes(&results[0..8]);
        assert!(close(first, Complex32::new(1.0, 0.0), 1e-4));
    }

    #[test]
    fn bank_units_overlap_compute() {
        // 4 blocks into 4 units at the same start: all finish together.
        let mut bank4 = FftBank::new(4);
        let blocks = vec![0u8; FFT_BLOCK_BYTES * 4];
        let done4 = bank4.consume(SimTime::ZERO, &blocks);
        assert_eq!(done4, BLOCK_COMPUTE);
        // Same 4 blocks into 1 unit: serialized.
        let mut bank1 = FftBank::new(1);
        let done1 = bank1.consume(SimTime::ZERO, &blocks);
        assert_eq!(done1, BLOCK_COMPUTE * 4);
    }

    #[test]
    fn partial_stream_chunks_accumulate() {
        let mut bank = FftBank::new(1);
        let block = vec![0u8; FFT_BLOCK_BYTES];
        bank.consume(SimTime::ZERO, &block[..1000]);
        assert_eq!(bank.blocks_done(), 0);
        bank.consume(SimTime::ZERO, &block[1000..]);
        assert_eq!(bank.blocks_done(), 1);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_rejected() {
        let mut data = vec![Complex32::default(); 100];
        fft_in_place(&mut data);
    }
}
