//! Block acceleration via control blocks (paper Figure 12).
//!
//! "the accelerator receives a control block from the processor
//! describing the acceleration task and a range of data or memory
//! addresses to operate on ... Upon task completion, the accelerator
//! writes processing status and completion information into specific
//! fields in the control block, which can be retrieved respectively
//! polled using load instructions."
//!
//! [`BlockAccelDriver::execute`] implements the three Table 5
//! functions: 1 GB memory copy, min/max over blocks of 32-bit
//! integers, and batched 1024-point FFTs — each expressed as an
//! Access-processor program streaming data between the DIMMs and a
//! [`StreamAccelerator`].

use contutto_sim::SimTime;

use crate::accel::fft::{FftBank, FFT_BLOCK_BYTES};
use crate::access::{assemble, AccessConfig, AccessError, AccessProcessor, StreamAccelerator};
use crate::avalon::AvalonBus;

/// The acceleration task requested in a control block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockOp {
    /// Copy `len` bytes from `src` to `dst` within the DIMMs.
    Memcpy {
        /// Source address.
        src: u64,
        /// Destination address.
        dst: u64,
        /// Length in bytes.
        len: u64,
    },
    /// Find the minimum and maximum 32-bit integer in `[addr, addr+len)`.
    MinMax {
        /// Block start.
        addr: u64,
        /// Block length in bytes (multiple of 4).
        len: u64,
    },
    /// Transform `len` bytes (multiple of 8 KiB) of complex-f32
    /// samples as consecutive 1024-point FFTs, writing spectra to
    /// `dst`.
    Fft {
        /// Sample source.
        src: u64,
        /// Spectrum destination.
        dst: u64,
        /// Length in bytes.
        len: u64,
    },
    /// Find the first occurrence of a 32-bit key in `[addr, addr+len)`
    /// (paper §4.3: "in-memory sort and search acceleration").
    Search {
        /// Block start.
        addr: u64,
        /// Block length in bytes (multiple of 4).
        len: u64,
        /// The key to find.
        key: u32,
    },
    /// Sort `[addr, addr+len)` as ascending 32-bit integers in place
    /// (paper §4.3's "in-memory sort" use case): an external merge
    /// sort scheduled by the Access processor — run formation on the
    /// first pass, k-way merge passes after, each pass a full
    /// read + write of the block.
    Sort {
        /// Block start.
        addr: u64,
        /// Block length in bytes (multiple of 4).
        len: u64,
    },
}

/// Control-block lifecycle state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ControlBlockStatus {
    /// Written by the processor, not yet picked up.
    Pending,
    /// In execution.
    Running,
    /// Finished; results valid.
    Complete,
}

/// A control block, as exchanged through the memory-mapped accelerator
/// region.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ControlBlock {
    /// The requested operation.
    pub op: BlockOp,
    /// Lifecycle status (written back by the accelerator).
    pub status: ControlBlockStatus,
    /// Minimum found (MinMax).
    pub result_min: u32,
    /// Maximum found (MinMax).
    pub result_max: u32,
    /// FFT blocks transformed (Fft).
    pub blocks_done: u64,
    /// Byte offset of the first key match (Search); `u64::MAX` when
    /// not found.
    pub result_offset: u64,
    /// Completion timestamp.
    pub completed_at: SimTime,
}

impl ControlBlock {
    /// A fresh control block for an operation.
    pub fn new(op: BlockOp) -> Self {
        ControlBlock {
            op,
            status: ControlBlockStatus::Pending,
            result_min: u32::MAX,
            result_max: 0,
            blocks_done: 0,
            result_offset: u64::MAX,
            completed_at: SimTime::ZERO,
        }
    }

    /// Throughput achieved, bytes/sec, given the submission time.
    pub fn throughput_bytes_per_sec(&self, submitted: SimTime) -> f64 {
        let len = match self.op {
            BlockOp::Memcpy { len, .. }
            | BlockOp::MinMax { len, .. }
            | BlockOp::Fft { len, .. }
            | BlockOp::Search { len, .. }
            | BlockOp::Sort { len, .. } => len,
        };
        let dur = self.completed_at.saturating_sub(submitted);
        if dur == SimTime::ZERO {
            0.0
        } else {
            len as f64 / dur.as_secs_f64()
        }
    }
}

/// Streaming min/max scanner (one 64 B word-batch per fabric cycle —
/// compute never limits the stream).
#[derive(Debug)]
pub struct MinMaxAccel {
    min: u32,
    max: u32,
    values: u64,
}

impl MinMaxAccel {
    /// Fresh scanner.
    pub fn new() -> Self {
        MinMaxAccel {
            min: u32::MAX,
            max: 0,
            values: 0,
        }
    }

    /// The running (min, max).
    pub fn result(&self) -> (u32, u32) {
        (self.min, self.max)
    }

    /// Values scanned.
    pub fn values(&self) -> u64 {
        self.values
    }
}

impl Default for MinMaxAccel {
    fn default() -> Self {
        Self::new()
    }
}

impl StreamAccelerator for MinMaxAccel {
    fn consume(&mut self, start: SimTime, data: &[u8]) -> SimTime {
        for chunk in data.chunks_exact(4) {
            let v = u32::from_le_bytes(chunk.try_into().expect("4 bytes"));
            self.min = self.min.min(v);
            self.max = self.max.max(v);
            self.values += 1;
        }
        // 64 B per 4 ns fabric cycle.
        start + SimTime::from_ps(data.len().div_ceil(64) as u64 * 4000)
    }

    fn produce(&mut self, out: &mut [u8]) -> usize {
        let n = out.len().min(8);
        let mut bytes = [0u8; 8];
        bytes[0..4].copy_from_slice(&self.min.to_le_bytes());
        bytes[4..8].copy_from_slice(&self.max.to_le_bytes());
        out[..n].copy_from_slice(&bytes[..n]);
        n
    }

    fn name(&self) -> &str {
        "minmax"
    }
}

/// Number of FFT units in the bank (compute must outrun the stream:
/// 6 × 250 Msamples/s = 1.5 Gs/s > the ~1.3 Gs/s the link feeds).
pub const FFT_UNITS: usize = 6;

/// Streaming key search: reports the byte offset of the first match.
#[derive(Debug)]
pub struct SearchAccel {
    key: u32,
    consumed: u64,
    found_at: Option<u64>,
}

impl SearchAccel {
    /// A scanner for `key`.
    pub fn new(key: u32) -> Self {
        SearchAccel {
            key,
            consumed: 0,
            found_at: None,
        }
    }

    /// Byte offset of the first match, if any.
    pub fn found_at(&self) -> Option<u64> {
        self.found_at
    }
}

impl StreamAccelerator for SearchAccel {
    fn consume(&mut self, start: SimTime, data: &[u8]) -> SimTime {
        if self.found_at.is_none() {
            for (i, chunk) in data.chunks_exact(4).enumerate() {
                if u32::from_le_bytes(chunk.try_into().expect("4 bytes")) == self.key {
                    self.found_at = Some(self.consumed + i as u64 * 4);
                    break;
                }
            }
        }
        self.consumed += data.len() as u64;
        // 64 B compared per fabric cycle, like the min/max scanner.
        start + SimTime::from_ps(data.len().div_ceil(64) as u64 * 4000)
    }

    fn produce(&mut self, out: &mut [u8]) -> usize {
        let v = self.found_at.unwrap_or(u64::MAX);
        let n = out.len().min(8);
        out[..n].copy_from_slice(&v.to_le_bytes()[..n]);
        n
    }

    fn name(&self) -> &str {
        "search"
    }
}

/// Executes control blocks against a card's Avalon bus.
#[derive(Debug, Default)]
pub struct BlockAccelDriver;

impl BlockAccelDriver {
    /// Runs one control block to completion, starting at `now`.
    /// Returns the completed block.
    ///
    /// For the FFT task, result write-back is overlapped with input
    /// streaming by the Access processor's scheduling (paper: sample
    /// and result transfers "are overlapped with computation on the
    /// other accelerators" and all functions "exploit the full access
    /// bandwidth"), so only the input stream occupies the access path
    /// in the timing model; spectra are deposited functionally at the
    /// destination.
    ///
    /// # Errors
    ///
    /// Propagates [`AccessError`] from the underlying program run.
    pub fn execute(
        &self,
        avalon: &mut AvalonBus,
        mut cb: ControlBlock,
        now: SimTime,
    ) -> Result<ControlBlock, AccessError> {
        cb.status = ControlBlockStatus::Running;
        match cb.op {
            BlockOp::Memcpy { src, dst, len } => {
                let program = assemble(&format!(
                    "set r1, {src}\nset r2, {dst}\nset r3, {len}\ncopy r1, r2, r3\nfence\nhalt"
                ))
                .expect("static program");
                let mut ap = AccessProcessor::new(AccessConfig::default(), avalon);
                let done = ap.run(&program, 1, now)?;
                cb.completed_at = done;
            }
            BlockOp::MinMax { addr, len } => {
                let program = assemble(&format!(
                    "set r1, {addr}\nset r2, {len}\nload r1, r2, 0\nfence\nhalt"
                ))
                .expect("static program");
                let mut scanner = MinMaxAccel::new();
                let mut ap = AccessProcessor::new(AccessConfig::default(), avalon);
                ap.attach_accelerator(0, &mut scanner);
                let done = ap.run(&program, 1, now)?;
                let (min, max) = scanner.result();
                cb.result_min = min;
                cb.result_max = max;
                cb.completed_at = done;
            }
            BlockOp::Fft { src, dst, len } => {
                assert!(
                    len % FFT_BLOCK_BYTES as u64 == 0,
                    "FFT length must be whole 1024-point blocks"
                );
                let program = assemble(&format!(
                    "set r1, {src}\nset r2, {len}\nload r1, r2, 0\nfence\nhalt"
                ))
                .expect("static program");
                let mut bank = FftBank::new(FFT_UNITS);
                let mut ap = AccessProcessor::new(AccessConfig::default(), avalon);
                ap.attach_accelerator(0, &mut bank);
                let done = ap.run(&program, 1, now)?;
                cb.blocks_done = bank.blocks_done();
                // Deposit spectra at dst (write-back overlapped; see above).
                let results = bank.take_results();
                let mut ap = AccessProcessor::new(AccessConfig::default(), avalon);
                ap.dma_write(dst, &results);
                cb.completed_at = done;
            }
            BlockOp::Sort { addr, len } => {
                assert!(len % 4 == 0, "sort operates on whole u32s");
                // On-chip run size: 4 MiB of BRAM-resident sorting.
                const RUN_BYTES: u64 = 4 << 20;
                // Functional sort.
                let mut bytes = vec![0u8; len as usize];
                let mut ap = AccessProcessor::new(AccessConfig::default(), avalon);
                ap.dma_read(addr, &mut bytes);
                let mut values: Vec<u32> = bytes
                    .chunks_exact(4)
                    .map(|c| u32::from_le_bytes(c.try_into().expect("4 bytes")))
                    .collect();
                values.sort_unstable();
                let sorted: Vec<u8> = values.iter().flat_map(|v| v.to_le_bytes()).collect();
                ap.dma_write(addr, &sorted);
                // Timing: run formation (1 pass) + merge passes, each a
                // full copy (read+write) of the block at the access
                // path's copy rate. 16-way merge over 4 MiB runs covers
                // 64 MiB in one merge pass, 1 GiB in two.
                let runs = len.div_ceil(RUN_BYTES).max(1);
                let merge_passes = if runs <= 1 {
                    0
                } else {
                    (64 - (runs - 1).leading_zeros() as u64).div_ceil(4) // log16(runs), ceil
                };
                let passes = 1 + merge_passes;
                let program = assemble(&format!(
                    "set r1, {addr}\nset r2, {addr}\nset r3, {len}\nset r4, {passes}\ncopy r1, r2, r3\naddi r4, r4, -1\nbnz r4, -2\nfence\nhalt"
                ))
                .expect("static program");
                let mut ap = AccessProcessor::new(AccessConfig::default(), avalon);
                let done = ap.run(&program, 1, now)?;
                cb.completed_at = done;
            }
            BlockOp::Search { addr, len, key } => {
                let program = assemble(&format!(
                    "set r1, {addr}\nset r2, {len}\nload r1, r2, 0\nfence\nhalt"
                ))
                .expect("static program");
                let mut scanner = SearchAccel::new(key);
                let mut ap = AccessProcessor::new(AccessConfig::default(), avalon);
                ap.attach_accelerator(0, &mut scanner);
                let done = ap.run(&program, 1, now)?;
                cb.result_offset = scanner.found_at().unwrap_or(u64::MAX);
                cb.completed_at = done;
            }
        }
        cb.status = ControlBlockStatus::Complete;
        Ok(cb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memctl::{MemoryController, MemoryKind};

    fn bus() -> AvalonBus {
        AvalonBus::new(
            vec![
                MemoryController::new(MemoryKind::Ddr3Dram, 2 << 30),
                MemoryController::new(MemoryKind::Ddr3Dram, 2 << 30),
            ],
            5,
        )
    }

    fn seed(avalon: &mut AvalonBus, addr: u64, data: &[u8]) {
        let mut ap = AccessProcessor::new(AccessConfig::default(), avalon);
        ap.dma_write(addr, data);
    }

    fn fetch(avalon: &mut AvalonBus, addr: u64, len: usize) -> Vec<u8> {
        let mut ap = AccessProcessor::new(AccessConfig::default(), avalon);
        let mut buf = vec![0u8; len];
        ap.dma_read(addr, &mut buf);
        buf
    }

    #[test]
    fn memcpy_block_copies_and_reports_throughput() {
        let mut avalon = bus();
        let data: Vec<u8> = (0..1_048_576u32).map(|i| (i % 251) as u8).collect();
        seed(&mut avalon, 0x100_0000, &data);
        let cb = ControlBlock::new(BlockOp::Memcpy {
            src: 0x100_0000,
            dst: 0x4000_0000,
            len: data.len() as u64,
        });
        let done = BlockAccelDriver
            .execute(&mut avalon, cb, SimTime::ZERO)
            .unwrap();
        assert_eq!(done.status, ControlBlockStatus::Complete);
        assert_eq!(fetch(&mut avalon, 0x4000_0000, data.len()), data);
        let gbps = done.throughput_bytes_per_sec(SimTime::ZERO) / 1e9;
        assert!((5.5..6.5).contains(&gbps), "memcpy at {gbps} GB/s");
    }

    #[test]
    fn minmax_block_finds_extremes() {
        let mut avalon = bus();
        let mut values: Vec<u32> = (0..262_144u32)
            .map(|i| i.wrapping_mul(2654435761) | 1)
            .collect();
        values[1000] = 0; // planted min
        values[2000] = u32::MAX; // planted max
        let bytes: Vec<u8> = values.iter().flat_map(|v| v.to_le_bytes()).collect();
        seed(&mut avalon, 0x20_0000, &bytes);
        let cb = ControlBlock::new(BlockOp::MinMax {
            addr: 0x20_0000,
            len: bytes.len() as u64,
        });
        let done = BlockAccelDriver
            .execute(&mut avalon, cb, SimTime::ZERO)
            .unwrap();
        assert_eq!(done.result_min, 0);
        assert_eq!(done.result_max, u32::MAX);
        let gbps = done.throughput_bytes_per_sec(SimTime::ZERO) / 1e9;
        assert!((9.5..11.5).contains(&gbps), "minmax at {gbps} GB/s");
    }

    #[test]
    fn fft_block_transforms_batches() {
        let mut avalon = bus();
        // Two blocks of impulses.
        let mut input = vec![0u8; FFT_BLOCK_BYTES * 2];
        input[0..4].copy_from_slice(&1.0f32.to_le_bytes());
        input[FFT_BLOCK_BYTES..FFT_BLOCK_BYTES + 4].copy_from_slice(&1.0f32.to_le_bytes());
        seed(&mut avalon, 0, &input);
        let cb = ControlBlock::new(BlockOp::Fft {
            src: 0,
            dst: 0x1000_0000,
            len: input.len() as u64,
        });
        let done = BlockAccelDriver
            .execute(&mut avalon, cb, SimTime::ZERO)
            .unwrap();
        assert_eq!(done.blocks_done, 2);
        let out = fetch(&mut avalon, 0x1000_0000, FFT_BLOCK_BYTES);
        // Impulse → flat spectrum of 1.0s.
        let bin0 = f32::from_le_bytes(out[0..4].try_into().unwrap());
        let bin512 = f32::from_le_bytes(out[512 * 8..512 * 8 + 4].try_into().unwrap());
        assert!((bin0 - 1.0).abs() < 1e-4);
        assert!((bin512 - 1.0).abs() < 1e-4);
    }

    #[test]
    fn fft_throughput_in_gsamples() {
        let mut avalon = bus();
        let len = (FFT_BLOCK_BYTES * 256) as u64; // 2 MiB of samples
        let cb = ControlBlock::new(BlockOp::Fft {
            src: 0,
            dst: 0x1000_0000,
            len,
        });
        let done = BlockAccelDriver
            .execute(&mut avalon, cb, SimTime::ZERO)
            .unwrap();
        let samples = len as f64 / 8.0;
        let gs = samples / done.completed_at.as_secs_f64() / 1e9;
        assert!((1.1..1.5).contains(&gs), "fft at {gs} Gsamples/s");
    }

    #[test]
    fn search_block_finds_first_occurrence() {
        let mut avalon = bus();
        let mut values: Vec<u32> = (0..100_000u32).map(|i| i | 1).collect(); // all odd
        values[77_777] = 0xBEEF_0000; // even planted key (first occurrence)
        values[90_000] = 0xBEEF_0000; // later duplicate
        let bytes: Vec<u8> = values.iter().flat_map(|v| v.to_le_bytes()).collect();
        seed(&mut avalon, 0x30_0000, &bytes);
        let cb = ControlBlock::new(BlockOp::Search {
            addr: 0x30_0000,
            len: bytes.len() as u64,
            key: 0xBEEF_0000,
        });
        let done = BlockAccelDriver
            .execute(&mut avalon, cb, SimTime::ZERO)
            .unwrap();
        assert_eq!(done.result_offset, 77_777 * 4);
        // Scanning streams at the same bandwidth class as min/max.
        let gbps = done.throughput_bytes_per_sec(SimTime::ZERO) / 1e9;
        assert!((9.5..11.5).contains(&gbps), "search at {gbps} GB/s");
    }

    #[test]
    fn search_block_reports_not_found() {
        let mut avalon = bus();
        let cb = ControlBlock::new(BlockOp::Search {
            addr: 0,
            len: 1 << 20,
            key: 0xDEAD_BEEF,
        });
        let done = BlockAccelDriver
            .execute(&mut avalon, cb, SimTime::ZERO)
            .unwrap();
        assert_eq!(done.result_offset, u64::MAX);
    }

    #[test]
    fn sort_block_orders_data_and_charges_passes() {
        let mut avalon = bus();
        let n = 262_144u32; // 1 MiB of u32s: single run, 1 pass
        let values: Vec<u32> = (0..n).map(|i| i.wrapping_mul(2654435761)).collect();
        let bytes: Vec<u8> = values.iter().flat_map(|v| v.to_le_bytes()).collect();
        seed(&mut avalon, 0x40_0000, &bytes);
        let cb = ControlBlock::new(BlockOp::Sort {
            addr: 0x40_0000,
            len: bytes.len() as u64,
        });
        let done = BlockAccelDriver
            .execute(&mut avalon, cb, SimTime::ZERO)
            .unwrap();
        let out = fetch(&mut avalon, 0x40_0000, bytes.len());
        let sorted: Vec<u32> = out
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
            .collect();
        assert!(sorted.windows(2).all(|w| w[0] <= w[1]), "ascending order");
        let mut expected = values.clone();
        expected.sort_unstable();
        assert_eq!(sorted, expected, "a permutation of the input");
        // Single pass: one full copy at ~6 GB/s.
        let gbps = done.throughput_bytes_per_sec(SimTime::ZERO) / 1e9;
        assert!((5.0..6.5).contains(&gbps), "sort pass at {gbps} GB/s");
    }

    #[test]
    fn larger_sorts_need_merge_passes() {
        // 64 MiB = 16 runs -> 1 merge pass -> half the single-pass rate.
        let mut avalon = bus();
        let cb = ControlBlock::new(BlockOp::Sort {
            addr: 0,
            len: 64 << 20,
        });
        let big = BlockAccelDriver
            .execute(&mut avalon, cb, SimTime::ZERO)
            .unwrap();
        let mut avalon = bus();
        let cb = ControlBlock::new(BlockOp::Sort {
            addr: 0,
            len: 2 << 20,
        });
        let small = BlockAccelDriver
            .execute(&mut avalon, cb, SimTime::ZERO)
            .unwrap();
        let big_rate = big.throughput_bytes_per_sec(SimTime::ZERO);
        let small_rate = small.throughput_bytes_per_sec(SimTime::ZERO);
        assert!(
            big_rate < small_rate * 0.6,
            "merge pass halves effective rate: {big_rate} vs {small_rate}"
        );
    }

    #[test]
    fn fft_overlap_ablation_store_pass_halves_throughput() {
        // §4.3's claim: with the Access processor overlapping result
        // transfers, the FFT runs at input-stream bandwidth (~1.3
        // Gs/s). Ablation: an explicit store pass for the spectra
        // (no overlap) costs a second trip over the access path and
        // roughly halves throughput.
        let len: u64 = (FFT_BLOCK_BYTES * 512) as u64;
        let mut avalon = bus();
        let mut bank = FftBank::new(FFT_UNITS);
        let program = assemble(&format!(
            "set r1, 0\nset r2, {len}\nload r1, r2, 0\nfence\nset r3, 0x10000000\nstore r3, r2, 0\nfence\nhalt"
        ))
        .unwrap();
        let mut ap = AccessProcessor::new(AccessConfig::default(), &mut avalon);
        ap.attach_accelerator(0, &mut bank);
        let done = ap.run(&program, 1, SimTime::ZERO).unwrap();
        let no_overlap_gs = (len as f64 / 8.0) / done.as_secs_f64() / 1e9;

        let mut avalon = bus();
        let cb = BlockAccelDriver
            .execute(
                &mut avalon,
                ControlBlock::new(BlockOp::Fft {
                    src: 0,
                    dst: 1 << 28,
                    len,
                }),
                SimTime::ZERO,
            )
            .unwrap();
        let overlapped_gs = (len as f64 / 8.0) / cb.completed_at.as_secs_f64() / 1e9;
        assert!(
            no_overlap_gs < overlapped_gs * 0.65,
            "no-overlap {no_overlap_gs:.2} Gs/s vs overlapped {overlapped_gs:.2} Gs/s"
        );
        assert!((1.1..1.5).contains(&overlapped_gs));
    }

    #[test]
    fn minmax_accel_streaming_logic() {
        let mut a = MinMaxAccel::new();
        let vals = [5u32, 3, 9, 7];
        let bytes: Vec<u8> = vals.iter().flat_map(|v| v.to_le_bytes()).collect();
        let t = a.consume(SimTime::ZERO, &bytes);
        assert_eq!(a.result(), (3, 9));
        assert_eq!(a.values(), 4);
        assert_eq!(t, SimTime::from_ps(4000)); // one fabric cycle
        let mut out = [0u8; 8];
        assert_eq!(a.produce(&mut out), 8);
        assert_eq!(u32::from_le_bytes(out[0..4].try_into().unwrap()), 3);
        assert_eq!(u32::from_le_bytes(out[4..8].try_into().unwrap()), 9);
    }
}
