//! The Memory Buffer Synchronous (MBS) logic.
//!
//! Paper §3.3(iii), Figure 5: "The MBS logic contains two parallel
//! datapaths to parse and decode two frames every cycle ... To
//! simultaneously support multiple commands in flight, MBS maintains
//! 32 identical command engines."
//!
//! Structure reproduced here:
//!
//! * **Read requests are issued directly by the frame decoders**, not
//!   by the engines ("This avoids the need for arbitration for the
//!   Avalon read ports among the 32 engines. Each frame decoder uses a
//!   dedicated read port.") — decoder 0 uses [`ReadPort::R0`],
//!   decoder 1 uses [`ReadPort::R1`], alternating per frame slot.
//! * **Write data is collected by the engines**; each Avalon write
//!   port serves 16 engines with arbitration (tag 0–15 → W0,
//!   16–31 → W1), and the shared RMW **ALU sits on the write-port
//!   path** ("thereby sharing each ALU among 16 engines. For normal
//!   write commands, the ALU acts as a NOP").
//! * **A single unified upstream arbiter** orders read data (which
//!   must occupy contiguous frames) and done notifications.
//!
//! The §4.1 **latency knob** is also here: "We add variable latency on
//! ConTutto by delaying the issuance of commands to the memory by
//! inserting delay modules between the MBS logic and the Avalon bus.
//! Each knob position ... adds 6 extra cycles of latency, equivalent
//! to 24 ns."

use std::collections::{HashMap, VecDeque};

use contutto_dmi::command::{CacheLine, Tag};
use contutto_dmi::frame::{
    line_to_upstream_beats, CommandHeader, DownstreamPayload, LineAssembler, UpstreamPayload,
};
use contutto_sim::snapshot::{self, Persist, SnapReader};
use contutto_sim::{time::clocks, Cycles, SimTime, TraceEvent, Tracer};

use crate::avalon::{AvalonBus, ReadPort, WritePort};

/// Fabric cycles added per latency-knob position (paper §4.1).
pub const KNOB_CYCLES_PER_STEP: u64 = 6;

/// Number of command engines (matches the 32 command tags).
pub const NUM_ENGINES: usize = 32;

/// MBS pipeline parameters, in fabric cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MbsConfig {
    /// Frame decode latency.
    pub decode_cycles: u64,
    /// Command-engine occupancy per response.
    pub engine_cycles: u64,
    /// Upstream arbitration latency.
    pub arb_cycles: u64,
    /// Memory-controller command-issue latency (the soft controller's
    /// front half).
    pub memctl_issue_cycles: u64,
    /// Memory-controller return-path latency.
    pub memctl_return_cycles: u64,
    /// Latency-knob position (0–7; 6 cycles / 24 ns per step).
    pub latency_knob: u8,
}

impl MbsConfig {
    /// The base ConTutto MBS.
    pub fn base() -> Self {
        MbsConfig {
            decode_cycles: 3,
            engine_cycles: 1,
            arb_cycles: 2,
            memctl_issue_cycles: 25,
            memctl_return_cycles: 17,
            latency_knob: 0,
        }
    }

    /// The knob-induced issue delay.
    pub fn knob_delay(&self) -> SimTime {
        clocks::FPGA_FABRIC
            .cycles_to_time(Cycles(KNOB_CYCLES_PER_STEP * u64::from(self.latency_knob)))
    }
}

impl Default for MbsConfig {
    fn default() -> Self {
        MbsConfig::base()
    }
}

/// MBS statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MbsStats {
    /// Read commands served.
    pub reads: u64,
    /// Write commands served.
    pub writes: u64,
    /// Standard (partial-write) RMWs served.
    pub rmws: u64,
    /// Inline-acceleration commands (min/max/cswap) served.
    pub inline_accel_ops: u64,
    /// Flush commands served.
    pub flushes: u64,
    /// Write-data beats received.
    pub write_beats: u64,
    /// Done pairs packed into a single upstream frame.
    pub coalesced_dones: u64,
    /// Demand reads whose line needed (successful) ECC correction.
    pub corrected_reads: u64,
    /// Demand reads answered with the poison bit set (uncorrectable).
    pub poisoned_reads: u64,
    /// RMWs whose read-half hit a poisoned line; the merge is dropped
    /// rather than laundering the poison into a fresh write.
    pub poisoned_rmws: u64,
    /// WriteData frames that arrived for an idle/unknown tag (late
    /// delivery after a retrain, or decode aliasing) and were dropped.
    pub frames_orphaned: u64,
}

#[derive(Debug)]
struct EngineState {
    header: CommandHeader,
    assembler: LineAssembler,
}

/// The assembled MBS: decoders, 32 command engines, Avalon master
/// ports and the unified upstream arbiter.
#[derive(Debug)]
pub struct MbsLogic {
    cfg: MbsConfig,
    avalon: AvalonBus,
    engines: HashMap<Tag, EngineState>,
    ready: VecDeque<(SimTime, UpstreamPayload)>,
    /// Extra receive-path latency charged by the caller's PHY + MBI.
    rx_extra: SimTime,
    /// Extra transmit-path latency (MBI + PHY) added to responses.
    tx_extra: SimTime,
    decoder_toggle: bool,
    stats: MbsStats,
    tracer: Tracer,
}

impl MbsLogic {
    /// Builds the MBS over an Avalon bus. `rx_extra`/`tx_extra` carry
    /// the PHY + MBI latencies of the enclosing buffer.
    pub fn new(cfg: MbsConfig, avalon: AvalonBus, rx_extra: SimTime, tx_extra: SimTime) -> Self {
        MbsLogic {
            cfg,
            avalon,
            engines: HashMap::new(),
            ready: VecDeque::new(),
            rx_extra,
            tx_extra,
            decoder_toggle: false,
            stats: MbsStats::default(),
            tracer: Tracer::off(),
        }
    }

    /// Statistics so far.
    pub fn stats(&self) -> MbsStats {
        self.stats
    }

    /// Connects the MBS to a shared [`Tracer`]; memory accesses issued
    /// to the Avalon bus are recorded as device read/write events, and
    /// the bus forwards media RAS events (ECC, scrub, retire).
    pub fn attach_tracer(&mut self, tracer: Tracer) {
        self.avalon.attach_tracer(tracer.clone());
        self.tracer = tracer;
    }

    /// Engines currently occupied by in-flight write-class commands.
    pub fn engines_busy(&self) -> usize {
        self.engines.len()
    }

    /// The underlying bus (for accelerators and telemetry).
    pub fn avalon_mut(&mut self) -> &mut AvalonBus {
        &mut self.avalon
    }

    /// Shared bus access.
    pub fn avalon(&self) -> &AvalonBus {
        &self.avalon
    }

    /// Changes the latency knob at runtime ("controllable from
    /// software", paper §4.1).
    pub fn set_latency_knob(&mut self, knob: u8) {
        assert!(knob <= 7, "knob has 8 positions (0-7)");
        self.cfg.latency_knob = knob;
    }

    fn cy(&self, n: u64) -> SimTime {
        clocks::FPGA_FABRIC.cycles_to_time(Cycles(n))
    }

    fn respond(&mut self, at: SimTime, payload: UpstreamPayload) {
        // The unified arbiter serializes responses; FIFO order models
        // its grant sequence. Responses keep per-command contiguity
        // because each command's payloads are enqueued together.
        let at = at + self.tx_extra;
        // Never let the queue go back in time (FIFO on the upstream
        // channel): a response cannot overtake one queued earlier.
        let at = match self.ready.back() {
            Some((t, _)) => at.max(*t),
            None => at,
        };
        self.ready.push_back((at, payload));
    }

    /// Handles one downstream payload arriving at the PHY at `now`.
    pub fn handle_downstream(&mut self, now: SimTime, payload: DownstreamPayload) {
        let decoded = now + self.rx_extra + self.cy(self.cfg.decode_cycles);
        match payload {
            DownstreamPayload::Idle | DownstreamPayload::Control(_) => {}
            DownstreamPayload::Command { tag, header } => match header {
                CommandHeader::Read { addr } => {
                    self.stats.reads += 1;
                    self.tracer.record(TraceEvent::DeviceRead { addr });
                    // Issued directly by the decoder on its dedicated
                    // read port — no engine arbitration.
                    let port = if self.decoder_toggle {
                        ReadPort::R1
                    } else {
                        ReadPort::R0
                    };
                    self.decoder_toggle = !self.decoder_toggle;
                    let issue =
                        decoded + self.cfg.knob_delay() + self.cy(self.cfg.memctl_issue_cycles);
                    let (bytes, avail, outcome) = self.avalon.read_line(issue, port, addr);
                    let avail = avail
                        + self.cy(self.cfg.memctl_return_cycles)
                        + self.cy(self.cfg.engine_cycles + self.cfg.arb_cycles);
                    let poison = outcome.is_uncorrectable();
                    if poison {
                        self.stats.poisoned_reads += 1;
                    } else if outcome.corrected_bits() > 0 {
                        self.stats.corrected_reads += 1;
                    }
                    let line = CacheLine(bytes);
                    for beat in line_to_upstream_beats(tag, &line, poison) {
                        self.respond(avail, beat);
                    }
                    self.respond(
                        avail,
                        UpstreamPayload::Done {
                            first: tag,
                            second: None,
                        },
                    );
                }
                CommandHeader::Write { .. } | CommandHeader::Rmw { .. } => {
                    assert!(
                        self.engines.len() < NUM_ENGINES,
                        "more write-class commands in flight than engines"
                    );
                    let prev = self.engines.insert(
                        tag,
                        EngineState {
                            header,
                            assembler: LineAssembler::downstream(),
                        },
                    );
                    assert!(prev.is_none(), "tag reused while engine still busy");
                }
                CommandHeader::Flush => {
                    self.stats.flushes += 1;
                    let issue =
                        decoded + self.cfg.knob_delay() + self.cy(self.cfg.memctl_issue_cycles);
                    let done = self.avalon.flush_all(issue)
                        + self.cy(self.cfg.memctl_return_cycles)
                        + self.cy(self.cfg.engine_cycles + self.cfg.arb_cycles);
                    self.respond(
                        done,
                        UpstreamPayload::Done {
                            first: tag,
                            second: None,
                        },
                    );
                }
            },
            DownstreamPayload::WriteData { tag, beat, data } => {
                self.stats.write_beats += 1;
                // A beat for an idle engine is a stale frame (late
                // delivery after a retrain, or decode aliasing):
                // dropping it is safe — the originating command was
                // already reclaimed host-side — executing it would not
                // be.
                let Some(engine) = self.engines.get_mut(&tag) else {
                    self.stats.frames_orphaned += 1;
                    self.tracer
                        .record(TraceEvent::FrameOrphaned { tag: tag.raw() });
                    return;
                };
                match engine.assembler.try_add_beat(beat, &data) {
                    Ok(true) => {
                        if let Some(engine) = self.engines.remove(&tag) {
                            let line = engine.assembler.into_line();
                            self.execute_write(decoded, tag, engine.header, line);
                        }
                    }
                    Ok(false) => {}
                    // A beat with an impossible index or size (decode
                    // aliasing past the frame-level checks): drop it
                    // loudly rather than corrupting the assembly.
                    Err(_) => {
                        self.stats.frames_orphaned += 1;
                        self.tracer
                            .record(TraceEvent::FrameOrphaned { tag: tag.raw() });
                    }
                }
            }
        }
    }

    fn execute_write(
        &mut self,
        decoded: SimTime,
        tag: Tag,
        header: CommandHeader,
        line: CacheLine,
    ) {
        // Engines 0-15 share write port W0 (and its ALU), 16-31 W1.
        let wport = if tag.index() < 16 {
            WritePort::W0
        } else {
            WritePort::W1
        };
        let issue = decoded
            + self.cy(self.cfg.engine_cycles)
            + self.cfg.knob_delay()
            + self.cy(self.cfg.memctl_issue_cycles);
        let durable = match header {
            CommandHeader::Write { addr } => {
                self.stats.writes += 1;
                self.tracer.record(TraceEvent::DeviceWrite { addr });
                // ALU in NOP mode.
                self.avalon.write_line(issue, wport, addr, &line.0)
            }
            CommandHeader::Rmw { addr, op } => {
                if op.is_fpga_extension() {
                    self.stats.inline_accel_ops += 1;
                } else {
                    self.stats.rmws += 1;
                }
                self.tracer.record(TraceEvent::DeviceWrite { addr });
                // Read the current line (decoder read port by tag
                // parity), merge in the shared ALU, write back.
                let rport = if tag.index().is_multiple_of(2) {
                    ReadPort::R0
                } else {
                    ReadPort::R1
                };
                let (current, read_avail, outcome) = self.avalon.read_line(issue, rport, addr);
                if outcome.is_uncorrectable() {
                    // Merging against poisoned data would launder the
                    // corruption into a fresh-looking line. Drop the
                    // merge; the line stays poisoned in the media, so
                    // later reads stay loud.
                    self.stats.poisoned_rmws += 1;
                    read_avail + self.cy(1)
                } else {
                    let merged = op.apply(CacheLine(current), line);
                    // One ALU cycle, then the write.
                    let wr_issue = read_avail + self.cy(1);
                    self.avalon.write_line(wr_issue, wport, addr, &merged.0)
                }
            }
            _ => unreachable!("only write-class headers reach execute_write"),
        };
        let done_at =
            durable + self.cy(self.cfg.memctl_return_cycles) + self.cy(self.cfg.arb_cycles);
        self.respond(
            done_at,
            UpstreamPayload::Done {
                first: tag,
                second: None,
            },
        );
    }

    /// Serializes all dynamic MBS state: the runtime latency knob, the
    /// Avalon bus and media below it, every in-flight command engine,
    /// the upstream response queue and the statistics. Pipeline depths
    /// and PHY/MBI latencies are construction parameters and only
    /// cross-checked.
    pub fn snapshot_state(&self, out: &mut Vec<u8>) {
        self.cfg.decode_cycles.persist(out);
        self.cfg.engine_cycles.persist(out);
        self.cfg.arb_cycles.persist(out);
        self.cfg.memctl_issue_cycles.persist(out);
        self.cfg.memctl_return_cycles.persist(out);
        self.rx_extra.persist(out);
        self.tx_extra.persist(out);
        // The knob is software-writable at runtime, so it travels as
        // state rather than a construction parameter.
        self.cfg.latency_knob.persist(out);
        self.avalon.snapshot_state(out);
        let mut tags: Vec<Tag> = self.engines.keys().copied().collect();
        tags.sort_by_key(|t| t.raw());
        (tags.len() as u64).persist(out);
        for tag in tags {
            let engine = &self.engines[&tag];
            tag.persist(out);
            engine.header.persist(out);
            engine.assembler.persist(out);
        }
        (self.ready.len() as u64).persist(out);
        for (at, payload) in &self.ready {
            at.persist(out);
            payload.persist(out);
        }
        self.decoder_toggle.persist(out);
        self.stats.reads.persist(out);
        self.stats.writes.persist(out);
        self.stats.rmws.persist(out);
        self.stats.inline_accel_ops.persist(out);
        self.stats.flushes.persist(out);
        self.stats.write_beats.persist(out);
        self.stats.coalesced_dones.persist(out);
        self.stats.corrected_reads.persist(out);
        self.stats.poisoned_reads.persist(out);
        self.stats.poisoned_rmws.persist(out);
        self.stats.frames_orphaned.persist(out);
    }

    /// Overlays an [`MbsLogic::snapshot_state`] image.
    ///
    /// # Errors
    ///
    /// [`snapshot::RestoreError::TopologyMismatch`] if the image came
    /// from a differently-configured pipeline, or any decode error
    /// from a corrupt payload.
    pub fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), snapshot::RestoreError> {
        let decode_cycles = r.u64()?;
        let engine_cycles = r.u64()?;
        let arb_cycles = r.u64()?;
        let memctl_issue_cycles = r.u64()?;
        let memctl_return_cycles = r.u64()?;
        let rx_extra = SimTime::restore(r)?;
        let tx_extra = SimTime::restore(r)?;
        if decode_cycles != self.cfg.decode_cycles
            || engine_cycles != self.cfg.engine_cycles
            || arb_cycles != self.cfg.arb_cycles
            || memctl_issue_cycles != self.cfg.memctl_issue_cycles
            || memctl_return_cycles != self.cfg.memctl_return_cycles
            || rx_extra != self.rx_extra
            || tx_extra != self.tx_extra
        {
            return Err(snapshot::RestoreError::TopologyMismatch {
                context: "mbs pipeline parameters",
            });
        }
        let latency_knob = r.u8()?;
        if latency_knob > 7 {
            return Err(snapshot::RestoreError::Malformed {
                context: "latency knob out of range",
            });
        }
        self.avalon.restore_state(r)?;
        let n = r.len()?;
        if n > NUM_ENGINES {
            return Err(snapshot::RestoreError::Malformed {
                context: "more engines in image than exist",
            });
        }
        let mut engines = HashMap::with_capacity(n);
        for _ in 0..n {
            let tag = Tag::restore(r)?;
            let header = CommandHeader::restore(r)?;
            let assembler = LineAssembler::restore(r)?;
            if engines
                .insert(tag, EngineState { header, assembler })
                .is_some()
            {
                return Err(snapshot::RestoreError::Malformed {
                    context: "duplicate engine tag",
                });
            }
        }
        let m = r.len()?;
        // Each queue entry costs at least 9 bytes (timestamp + payload
        // discriminant); reject counts the remaining bytes cannot hold.
        if m > r.remaining() / 9 {
            return Err(snapshot::RestoreError::Truncated {
                context: "mbs upstream queue",
            });
        }
        let mut ready = VecDeque::with_capacity(m);
        for _ in 0..m {
            let at = SimTime::restore(r)?;
            let payload = UpstreamPayload::restore(r)?;
            ready.push_back((at, payload));
        }
        let decoder_toggle = r.bool()?;
        let stats = MbsStats {
            reads: r.u64()?,
            writes: r.u64()?,
            rmws: r.u64()?,
            inline_accel_ops: r.u64()?,
            flushes: r.u64()?,
            write_beats: r.u64()?,
            coalesced_dones: r.u64()?,
            corrected_reads: r.u64()?,
            poisoned_reads: r.u64()?,
            poisoned_rmws: r.u64()?,
            frames_orphaned: r.u64()?,
        };
        self.cfg.latency_knob = latency_knob;
        self.engines = engines;
        self.ready = ready;
        self.decoder_toggle = decoder_toggle;
        self.stats = stats;
        Ok(())
    }

    /// Power cut: every in-flight engine assembly and queued response
    /// is volatile fabric state and dies with the rail. The media
    /// below is handled separately by the Avalon power path.
    pub fn discard_volatile(&mut self) {
        self.engines.clear();
        self.ready.clear();
        self.decoder_toggle = false;
    }

    /// Offers the upstream arbiter a frame slot at `now`.
    ///
    /// When two done notifications are both ready, the arbiter packs
    /// them into one frame (paper §3.3(iii): "the two upstream frames
    /// may contain completion notification from two separate command
    /// engines") — here one frame carries both tags.
    pub fn pull_upstream(&mut self, now: SimTime) -> Option<UpstreamPayload> {
        let ready_now = matches!(self.ready.front(), Some((t, _)) if *t <= now);
        if !ready_now {
            return None;
        }
        let (_, first) = self.ready.pop_front().expect("checked non-empty");
        if let UpstreamPayload::Done {
            first: tag_a,
            second: None,
        } = first
        {
            // Coalesce with a second ready done, if next in line.
            if let Some((t, UpstreamPayload::Done { second: None, .. })) = self.ready.front() {
                if *t <= now {
                    let (_, second) = self.ready.pop_front().expect("checked");
                    if let UpstreamPayload::Done { first: tag_b, .. } = second {
                        self.stats.coalesced_dones += 1;
                        return Some(UpstreamPayload::Done {
                            first: tag_a,
                            second: Some(tag_b),
                        });
                    }
                }
            }
            return Some(first);
        }
        Some(first)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memctl::{MemoryController, MemoryKind};
    use contutto_dmi::command::RmwOp;
    use contutto_dmi::frame::line_to_downstream_beats;

    fn t(n: u8) -> Tag {
        Tag::new(n).unwrap()
    }

    fn mbs() -> MbsLogic {
        let avalon = AvalonBus::new(
            vec![
                MemoryController::new(MemoryKind::Ddr3Dram, 1 << 29),
                MemoryController::new(MemoryKind::Ddr3Dram, 1 << 29),
            ],
            5,
        );
        MbsLogic::new(
            MbsConfig::base(),
            avalon,
            SimTime::from_ns(32), // phy+mbi rx
            SimTime::from_ns(28), // mbi+phy tx
        )
    }

    fn drain(m: &mut MbsLogic, until: SimTime) -> Vec<(SimTime, UpstreamPayload)> {
        let mut out = Vec::new();
        let mut now = SimTime::ZERO;
        while now <= until {
            while let Some(p) = m.pull_upstream(now) {
                out.push((now, p));
            }
            now += SimTime::from_ns(2);
        }
        out
    }

    fn push_write(m: &mut MbsLogic, base: SimTime, tag: Tag, addr: u64, line: &CacheLine) {
        m.handle_downstream(
            base,
            DownstreamPayload::Command {
                tag,
                header: CommandHeader::Write { addr },
            },
        );
        for (i, beat) in line_to_downstream_beats(tag, line).into_iter().enumerate() {
            m.handle_downstream(base + SimTime::from_ns(2) * (i as u64 + 1), beat);
        }
    }

    #[test]
    fn orphan_write_beat_is_dropped_not_fatal() {
        let mut m = mbs();
        let tracer = Tracer::ring(16);
        m.attach_tracer(tracer.clone());
        // A WriteData beat with no preceding command: a stale frame
        // surviving a retrain. It must be dropped, flagged, and leave
        // the engine pool untouched.
        let line = CacheLine::patterned(9);
        let beats = line_to_downstream_beats(t(5), &line);
        m.handle_downstream(SimTime::ZERO, beats[0].clone());
        assert_eq!(m.stats().frames_orphaned, 1);
        assert_eq!(
            tracer.count_matching(|e| matches!(e, TraceEvent::FrameOrphaned { tag: 5 })),
            1
        );
        // The decoder still services real traffic afterwards.
        push_write(&mut m, SimTime::from_ns(100), t(0), 0x2000, &line);
        let resp = drain(&mut m, SimTime::from_us(2));
        assert!(resp
            .iter()
            .any(|(_, p)| matches!(p, UpstreamPayload::Done { .. })));
    }

    #[test]
    fn malformed_beat_index_is_dropped_not_fatal() {
        let mut m = mbs();
        let tracer = Tracer::ring(16);
        m.attach_tracer(tracer.clone());
        m.handle_downstream(
            SimTime::ZERO,
            DownstreamPayload::Command {
                tag: t(3),
                header: CommandHeader::Write { addr: 0x1000 },
            },
        );
        // A beat index past the 8-beat line (decode aliasing): dropped
        // loudly, the engine keeps waiting for real beats.
        m.handle_downstream(
            SimTime::from_ns(2),
            DownstreamPayload::WriteData {
                tag: t(3),
                beat: 9,
                data: [0u8; 16],
            },
        );
        assert_eq!(m.stats().frames_orphaned, 1);
        assert_eq!(
            tracer.count_matching(|e| matches!(e, TraceEvent::FrameOrphaned { tag: 3 })),
            1
        );
        assert_eq!(m.engines_busy(), 1, "engine survives the bad beat");
        // The real beats still complete the write.
        let line = CacheLine::patterned(7);
        for (i, beat) in line_to_downstream_beats(t(3), &line)
            .into_iter()
            .enumerate()
        {
            m.handle_downstream(SimTime::from_ns(4) + SimTime::from_ns(2) * (i as u64), beat);
        }
        let resp = drain(&mut m, SimTime::from_us(2));
        assert!(resp
            .iter()
            .any(|(_, p)| matches!(p, UpstreamPayload::Done { .. })));
        assert_eq!(m.stats().writes, 1);
    }

    #[test]
    fn discard_volatile_clears_engines_and_responses() {
        let mut m = mbs();
        push_write(
            &mut m,
            SimTime::ZERO,
            t(0),
            0x1000,
            &CacheLine::patterned(1),
        );
        m.handle_downstream(
            SimTime::from_ns(40),
            DownstreamPayload::Command {
                tag: t(1),
                header: CommandHeader::Write { addr: 0x2000 },
            },
        );
        assert_eq!(m.engines_busy(), 1);
        m.discard_volatile();
        assert_eq!(m.engines_busy(), 0);
        assert!(m.pull_upstream(SimTime::from_secs(1)).is_none());
    }

    #[test]
    fn write_read_roundtrip() {
        let mut m = mbs();
        let line = CacheLine::patterned(3);
        push_write(&mut m, SimTime::ZERO, t(0), 0x1000, &line);
        drain(&mut m, SimTime::from_us(2));
        m.handle_downstream(
            SimTime::from_us(3),
            DownstreamPayload::Command {
                tag: t(1),
                header: CommandHeader::Read { addr: 0x1000 },
            },
        );
        let resp = drain(&mut m, SimTime::from_us(5));
        let mut asm = LineAssembler::upstream();
        for (_, p) in &resp {
            if let UpstreamPayload::ReadData { beat, data, .. } = p {
                asm.add_beat(*beat, data);
            }
        }
        assert_eq!(asm.into_line(), line);
        assert_eq!(m.stats().reads, 1);
        assert_eq!(m.stats().writes, 1);
        assert_eq!(m.stats().write_beats, 8);
    }

    #[test]
    fn read_latency_includes_full_pipeline() {
        let mut m = mbs();
        m.handle_downstream(
            SimTime::ZERO,
            DownstreamPayload::Command {
                tag: t(0),
                header: CommandHeader::Read { addr: 0 },
            },
        );
        let resp = drain(&mut m, SimTime::from_us(2));
        let done_at = resp.last().unwrap().0;
        // rx 32 + decode 12 + memctl 112 + avalon 2x20 + DRAM ~51 +
        // ret 72 + engine/arb 12 + tx 28 ≈ 360 ns.
        assert!(done_at > SimTime::from_ns(300), "done at {done_at}");
        assert!(done_at < SimTime::from_ns(420), "done at {done_at}");
    }

    #[test]
    fn knob_adds_24ns_per_step() {
        let run = |knob: u8| {
            let mut m = mbs();
            m.set_latency_knob(knob);
            m.handle_downstream(
                SimTime::ZERO,
                DownstreamPayload::Command {
                    tag: t(0),
                    header: CommandHeader::Read { addr: 0 },
                },
            );
            drain(&mut m, SimTime::from_us(3)).last().unwrap().0
        };
        let base = run(0);
        let k2 = run(2);
        let k6 = run(6);
        let k7 = run(7);
        // 2 ns frame-slot quantization of the drain loop.
        let close = |a: SimTime, b: SimTime| {
            a.saturating_sub(b).as_ps().max(b.saturating_sub(a).as_ps()) <= 2000
        };
        assert!(
            close(k2, base + SimTime::from_ns(48)),
            "base {base} k2 {k2}"
        );
        assert!(
            close(k6, base + SimTime::from_ns(144)),
            "base {base} k6 {k6}"
        );
        assert!(
            close(k7, base + SimTime::from_ns(168)),
            "base {base} k7 {k7}"
        );
    }

    #[test]
    fn inline_accel_min_store() {
        let mut m = mbs();
        let mut base = CacheLine::ZERO;
        for w in 0..16 {
            base.set_word(w, 100);
        }
        push_write(&mut m, SimTime::ZERO, t(0), 0, &base);
        drain(&mut m, SimTime::from_us(2));

        let mut candidate = CacheLine::ZERO;
        for w in 0..16 {
            candidate.set_word(w, if w % 2 == 0 { 50 } else { 150 });
        }
        m.handle_downstream(
            SimTime::from_us(3),
            DownstreamPayload::Command {
                tag: t(1),
                header: CommandHeader::Rmw {
                    addr: 0,
                    op: RmwOp::MinStore,
                },
            },
        );
        for (i, beat) in line_to_downstream_beats(t(1), &candidate)
            .into_iter()
            .enumerate()
        {
            m.handle_downstream(
                SimTime::from_us(3) + SimTime::from_ns(2) * (i as u64 + 1),
                beat,
            );
        }
        drain(&mut m, SimTime::from_us(5));
        assert_eq!(m.stats().inline_accel_ops, 1);

        m.handle_downstream(
            SimTime::from_us(6),
            DownstreamPayload::Command {
                tag: t(2),
                header: CommandHeader::Read { addr: 0 },
            },
        );
        let resp = drain(&mut m, SimTime::from_us(8));
        let mut asm = LineAssembler::upstream();
        for (_, p) in &resp {
            if let UpstreamPayload::ReadData { beat, data, .. } = p {
                asm.add_beat(*beat, data);
            }
        }
        let result = asm.into_line();
        for w in 0..16 {
            assert_eq!(result.word(w), if w % 2 == 0 { 50 } else { 100 });
        }
    }

    #[test]
    fn flush_completes_after_writes() {
        let mut m = mbs();
        push_write(
            &mut m,
            SimTime::ZERO,
            t(0),
            0x2000,
            &CacheLine::patterned(1),
        );
        m.handle_downstream(
            SimTime::from_ns(20),
            DownstreamPayload::Command {
                tag: t(1),
                header: CommandHeader::Flush,
            },
        );
        let resp = drain(&mut m, SimTime::from_us(3));
        // Both dones arrive; flush counted.
        let dones: Vec<Tag> = resp
            .iter()
            .filter_map(|(_, p)| match p {
                UpstreamPayload::Done { first, .. } => Some(*first),
                _ => None,
            })
            .collect();
        assert!(dones.contains(&t(0)) && dones.contains(&t(1)));
        assert_eq!(m.stats().flushes, 1);
    }

    #[test]
    fn engines_track_occupancy() {
        let mut m = mbs();
        for i in 0..5 {
            m.handle_downstream(
                SimTime::from_ns(2 * u64::from(i)),
                DownstreamPayload::Command {
                    tag: t(i),
                    header: CommandHeader::Write {
                        addr: u64::from(i) * 128,
                    },
                },
            );
        }
        assert_eq!(m.engines_busy(), 5);
    }

    #[test]
    fn ready_done_pairs_coalesce_into_one_frame() {
        let mut m = mbs();
        // Two writes to different ports complete near-simultaneously;
        // their dones should pack into a single upstream frame.
        push_write(&mut m, SimTime::ZERO, t(0), 0, &CacheLine::patterned(1));
        push_write(&mut m, SimTime::ZERO, t(16), 128, &CacheLine::patterned(2));
        let resp = drain(&mut m, SimTime::from_us(3));
        let dones: Vec<_> = resp
            .iter()
            .filter_map(|(_, p)| match p {
                UpstreamPayload::Done { first, second } => Some((*first, *second)),
                _ => None,
            })
            .collect();
        assert_eq!(dones.len(), 1, "one coalesced done frame: {dones:?}");
        assert_eq!(dones[0].0, t(0));
        assert_eq!(dones[0].1, Some(t(16)));
        assert_eq!(m.stats().coalesced_dones, 1);
    }

    #[test]
    fn snapshot_mid_assembly_resumes_identically() {
        let mut m = mbs();
        m.set_latency_knob(3);
        // One complete write, one write mid-assembly (5 of 8 beats),
        // and a read whose response is still queued.
        let line_a = CacheLine::patterned(21);
        push_write(&mut m, SimTime::ZERO, t(0), 0x1000, &line_a);
        let line_b = CacheLine::patterned(22);
        m.handle_downstream(
            SimTime::from_ns(100),
            DownstreamPayload::Command {
                tag: t(17),
                header: CommandHeader::Write { addr: 0x2000 },
            },
        );
        let beats = line_to_downstream_beats(t(17), &line_b);
        for (i, beat) in beats.iter().take(5).enumerate() {
            m.handle_downstream(SimTime::from_ns(102 + 2 * i as u64), beat.clone());
        }
        m.handle_downstream(
            SimTime::from_ns(120),
            DownstreamPayload::Command {
                tag: t(2),
                header: CommandHeader::Read { addr: 0x1000 },
            },
        );
        assert_eq!(m.engines_busy(), 1);

        let mut img = Vec::new();
        m.snapshot_state(&mut img);
        let mut fresh = mbs();
        fresh.restore_state(&mut SnapReader::new(&img)).unwrap();
        assert_eq!(fresh.engines_busy(), 1);

        // Feed the remaining beats to both copies; their upstream
        // streams must be byte-identical including timestamps.
        for m in [&mut m, &mut fresh] {
            for (i, beat) in beats.iter().skip(5).enumerate() {
                m.handle_downstream(
                    SimTime::from_us(1) + SimTime::from_ns(2 * i as u64),
                    beat.clone(),
                );
            }
        }
        let a = drain(&mut m, SimTime::from_us(4));
        let b = drain(&mut fresh, SimTime::from_us(4));
        assert_eq!(a, b);
        assert_eq!(m.stats(), fresh.stats());

        // A pipeline with different depths refuses the image.
        let avalon = AvalonBus::new(
            vec![
                MemoryController::new(MemoryKind::Ddr3Dram, 1 << 29),
                MemoryController::new(MemoryKind::Ddr3Dram, 1 << 29),
            ],
            5,
        );
        let mut other = MbsLogic::new(
            MbsConfig {
                decode_cycles: 9,
                ..MbsConfig::base()
            },
            avalon,
            SimTime::from_ns(32),
            SimTime::from_ns(28),
        );
        let err = other.restore_state(&mut SnapReader::new(&img)).unwrap_err();
        assert!(
            matches!(err, snapshot::RestoreError::TopologyMismatch { .. }),
            "got {err:?}"
        );
    }

    #[test]
    fn upstream_queue_is_fifo_and_monotonic() {
        let mut m = mbs();
        // Two reads; the second targets the other port but responses
        // must come out in queue order with non-decreasing timestamps.
        for i in 0..2 {
            m.handle_downstream(
                SimTime::from_ns(2 * u64::from(i)),
                DownstreamPayload::Command {
                    tag: t(i),
                    header: CommandHeader::Read {
                        addr: u64::from(i) * 128,
                    },
                },
            );
        }
        let resp = drain(&mut m, SimTime::from_us(2));
        assert_eq!(resp.len(), 10); // 2 x (4 beats + done)
        assert!(resp.windows(2).all(|w| w[0].0 <= w[1].0));
    }
}
