//! The on-chip Avalon bus.
//!
//! Paper §3.3(iv): "MBS connects to the memory controllers via the
//! Altera Avalon bus. MBS has 2 read- and 2 write-ports on the bus,
//! because it processes 2 DMI frames every clock cycle. Also, the
//! crossing between the core- and DDR-clock domain is accomplished by
//! the Avalon bus. Using a bus-based design as opposed to direct
//! connections offers great flexibility ... memory controllers for
//! alternative memory technologies can be developed independent of
//! the rest of the ConTutto design. We only require a compatible bus
//! interface and the integration ... is plug-and-play."
//!
//! [`AvalonBus`] owns the two DIMM-port memory controllers, routes
//! line-interleaved addresses, charges the clock-domain-crossing
//! latency each way, and serializes transfers per port.

use contutto_dmi::PowerRestoreOutcome;
use contutto_memdev::{FaultConfig, RasCounters, ReadOutcome};
use contutto_sim::snapshot::{self, Persist, SnapReader};
use contutto_sim::{time::clocks, Cycles, SimTime, Tracer};

use crate::memctl::{MemoryController, MemoryKind};

/// Identifies one of the two MBS read ports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadPort {
    /// Read port of frame decoder 0.
    R0,
    /// Read port of frame decoder 1.
    R1,
}

/// Identifies one of the two MBS write ports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WritePort {
    /// Write port serving command engines 0–15.
    W0,
    /// Write port serving command engines 16–31.
    W1,
}

/// The Avalon interconnect with two memory-controller slaves.
#[derive(Debug)]
pub struct AvalonBus {
    controllers: Vec<MemoryController>,
    cdc_cycles: u64,
    read_busy: [SimTime; 2],
    write_busy: [SimTime; 2],
    transfers: u64,
}

/// Bytes per line-interleave unit across DIMM ports.
const INTERLEAVE_BYTES: u64 = 128;

impl AvalonBus {
    /// Builds the bus over the given per-port controllers (ConTutto
    /// has two DIMM connectors — paper §3.2).
    ///
    /// # Panics
    ///
    /// Panics unless exactly 1 or 2 controllers are supplied and all
    /// have equal capacity and kind.
    pub fn new(controllers: Vec<MemoryController>, cdc_cycles: u64) -> Self {
        assert!(
            (1..=2).contains(&controllers.len()),
            "ConTutto has one or two populated DIMM ports"
        );
        assert!(
            controllers
                .windows(2)
                .all(|w| w[0].capacity_bytes() == w[1].capacity_bytes()
                    && w[0].kind() == w[1].kind()),
            "DIMM ports must be populated identically"
        );
        AvalonBus {
            controllers,
            cdc_cycles,
            read_busy: [SimTime::ZERO; 2],
            write_busy: [SimTime::ZERO; 2],
            transfers: 0,
        }
    }

    /// Total memory capacity across ports.
    pub fn capacity_bytes(&self) -> u64 {
        self.controllers.iter().map(|c| c.capacity_bytes()).sum()
    }

    /// The populated media kind.
    pub fn kind(&self) -> MemoryKind {
        self.controllers[0].kind()
    }

    /// Bus transfers performed.
    pub fn transfers(&self) -> u64 {
        self.transfers
    }

    fn cdc(&self) -> SimTime {
        clocks::FPGA_FABRIC.cycles_to_time(Cycles(self.cdc_cycles))
    }

    fn route(&self, addr: u64) -> (usize, u64) {
        let unit = addr / INTERLEAVE_BYTES;
        let n = self.controllers.len() as u64;
        let port = (unit % n) as usize;
        (
            port,
            (unit / n) * INTERLEAVE_BYTES + addr % INTERLEAVE_BYTES,
        )
    }

    /// Reads one 128 B line through an MBS read port; the media ECC
    /// outcome rides along so MBS can poison the response.
    pub fn read_line(
        &mut self,
        now: SimTime,
        port: ReadPort,
        addr: u64,
    ) -> ([u8; 128], SimTime, ReadOutcome) {
        self.transfers += 1;
        let idx = match port {
            ReadPort::R0 => 0,
            ReadPort::R1 => 1,
        };
        // Port serialization: one outstanding request occupies the
        // port for one fabric cycle.
        let start = now.max(self.read_busy[idx]);
        self.read_busy[idx] = start + clocks::FPGA_FABRIC.period();
        let issue = start + self.cdc();
        let (dev_port, local) = self.route(addr);
        let (data, dev_done, outcome) = self.controllers[dev_port].read_line(issue, local);
        (data, dev_done + self.cdc(), outcome)
    }

    /// Writes one 128 B line through an MBS write port.
    pub fn write_line(
        &mut self,
        now: SimTime,
        port: WritePort,
        addr: u64,
        data: &[u8; 128],
    ) -> SimTime {
        self.transfers += 1;
        let idx = match port {
            WritePort::W0 => 0,
            WritePort::W1 => 1,
        };
        let start = now.max(self.write_busy[idx]);
        self.write_busy[idx] = start + clocks::FPGA_FABRIC.period();
        let issue = start + self.cdc();
        let (dev_port, local) = self.route(addr);
        let done = self.controllers[dev_port].write_line(issue, local, data);
        done + self.cdc()
    }

    /// Maintenance-path read of one line: routed to the owning port's
    /// service interface, no bus or CDC time charged (the sideband
    /// does not ride the Avalon fabric).
    pub fn sideband_read_line(&mut self, now: SimTime, addr: u64) -> ([u8; 128], bool) {
        let (dev_port, local) = self.route(addr);
        self.controllers[dev_port].sideband_read_line(now, local)
    }

    /// Maintenance-path write of one line, optionally with poison.
    pub fn sideband_write_line(&mut self, addr: u64, data: &[u8; 128], poison: bool) {
        let (dev_port, local) = self.route(addr);
        self.controllers[dev_port].sideband_write_line(local, data, poison);
    }

    /// Flush across all controllers (persistent-memory sync).
    pub fn flush_all(&mut self, now: SimTime) -> SimTime {
        let issue = now + self.cdc();
        let done = self
            .controllers
            .iter_mut()
            .map(|c| c.flush(issue))
            .max()
            .expect("at least one controller");
        done + self.cdc()
    }

    /// Direct span access for the Access processor / accelerators
    /// (they sit on the bus as additional masters; the span is routed
    /// to the owning port — spans must not cross the interleave
    /// granularity unless port-aligned, so accelerators address ports
    /// explicitly).
    pub fn controller_mut(&mut self, port: usize) -> &mut MemoryController {
        &mut self.controllers[port]
    }

    /// Number of populated DIMM ports.
    pub fn ports(&self) -> usize {
        self.controllers.len()
    }

    /// Routes RAS trace events from every port into a shared tracer.
    pub fn attach_tracer(&mut self, tracer: Tracer) {
        for c in &mut self.controllers {
            c.attach_tracer(tracer.clone());
        }
    }

    /// Enables patrol scrub on every port.
    pub fn enable_scrub(&mut self, interval: SimTime) {
        for c in &mut self.controllers {
            c.enable_scrub(interval);
        }
    }

    /// Enables patrol scrub on every port mid-run, first pass due one
    /// interval after `now`.
    pub fn enable_scrub_at(&mut self, now: SimTime, interval: SimTime) {
        for c in &mut self.controllers {
            c.enable_scrub_at(now, interval);
        }
    }

    /// Disables patrol scrub on every port.
    pub fn disable_scrub(&mut self) {
        for c in &mut self.controllers {
            c.disable_scrub();
        }
    }

    /// Current patrol-scrub interval. All ports are armed together, so
    /// the first port's interval speaks for the bus.
    pub fn scrub_interval(&self) -> Option<SimTime> {
        self.controllers.first().and_then(|c| c.scrub_interval())
    }

    /// Arms a media-fault injector on every port. Each port's seed is
    /// decorrelated so the two DIMMs do not fail in lock-step.
    pub fn attach_media_faults(&mut self, cfg: FaultConfig) {
        for (i, c) in self.controllers.iter_mut().enumerate() {
            let mut port_cfg = cfg;
            port_cfg.seed = cfg.seed.wrapping_add(i as u64 * 0x9E37_79B9);
            c.attach_media_faults(port_cfg);
        }
    }

    /// Arms a media-fault injector on every port with the flip
    /// schedule starting at `now`, same per-port seed decorrelation.
    pub fn attach_media_faults_at(&mut self, now: SimTime, cfg: FaultConfig) {
        for (i, c) in self.controllers.iter_mut().enumerate() {
            let mut port_cfg = cfg;
            port_cfg.seed = cfg.seed.wrapping_add(i as u64 * 0x9E37_79B9);
            c.attach_media_faults_at(now, port_cfg);
        }
    }

    /// Sets the correctable-error page-retirement threshold per port.
    pub fn set_retire_threshold(&mut self, threshold: u32) {
        for c in &mut self.controllers {
            c.set_retire_threshold(threshold);
        }
    }

    /// Power cut across every port: volatile contents are gone, armed
    /// NVDIMM save engines run on supercap. Port-busy bookkeeping is
    /// reset — the fabric comes back idle. Returns when the last port
    /// is quiescent.
    pub fn power_cut(&mut self, now: SimTime) -> SimTime {
        self.read_busy = [SimTime::ZERO; 2];
        self.write_busy = [SimTime::ZERO; 2];
        self.controllers
            .iter_mut()
            .map(|c| c.power_cut(now))
            .max()
            .expect("at least one controller")
    }

    /// Power restore across every port. Returns when the last port is
    /// serviceable and the *worst* per-port outcome (one torn DIMM
    /// marks the whole bus torn — losses never average away).
    pub fn power_restore(&mut self, now: SimTime) -> (SimTime, PowerRestoreOutcome) {
        let mut ready = now;
        let mut worst = PowerRestoreOutcome::Volatile;
        for c in &mut self.controllers {
            let (t, outcome) = c.power_restore(now);
            ready = ready.max(t);
            worst = worst.max(outcome);
        }
        (ready, worst)
    }

    /// Arms/disarms every port's NVDIMM save engine. Returns `true`
    /// if at least one port has one.
    pub fn set_save_armed(&mut self, armed: bool) -> bool {
        let mut any = false;
        for c in &mut self.controllers {
            any |= c.set_save_armed(armed);
        }
        any
    }

    /// Installs a finite supercap budget on every port's save engine.
    pub fn set_supercap_budget_nj(&mut self, nj: u64) {
        for c in &mut self.controllers {
            c.set_supercap_budget_nj(nj);
        }
    }

    /// Serializes the bus's dynamic state: every port controller plus
    /// the port-busy bookkeeping and transfer counter. Port count and
    /// CDC depth are construction parameters and only cross-checked.
    pub fn snapshot_state(&self, out: &mut Vec<u8>) {
        (self.controllers.len() as u64).persist(out);
        self.cdc_cycles.persist(out);
        for c in &self.controllers {
            c.snapshot_state(out);
        }
        for t in &self.read_busy {
            t.persist(out);
        }
        for t in &self.write_busy {
            t.persist(out);
        }
        self.transfers.persist(out);
    }

    /// Overlays an [`AvalonBus::snapshot_state`] image.
    ///
    /// # Errors
    ///
    /// [`snapshot::RestoreError::TopologyMismatch`] if the image came
    /// from a bus with a different port count or CDC depth, or any
    /// decode error from the per-port payloads.
    pub fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), snapshot::RestoreError> {
        let ports = r.len()?;
        let cdc = r.u64()?;
        if ports != self.controllers.len() || cdc != self.cdc_cycles {
            return Err(snapshot::RestoreError::TopologyMismatch {
                context: "avalon port count or cdc depth",
            });
        }
        for c in &mut self.controllers {
            c.restore_state(r)?;
        }
        for t in &mut self.read_busy {
            *t = SimTime::restore(r)?;
        }
        for t in &mut self.write_busy {
            *t = SimTime::restore(r)?;
        }
        self.transfers = r.u64()?;
        Ok(())
    }

    /// Media RAS counters summed across ports.
    pub fn ras_counters(&self) -> RasCounters {
        let mut total = RasCounters::default();
        for c in &self.controllers {
            let p = c.ras_counters();
            total.demand_corrected += p.demand_corrected;
            total.demand_uncorrectable += p.demand_uncorrectable;
            total.scrub_corrected += p.scrub_corrected;
            total.scrub_uncorrectable += p.scrub_uncorrectable;
            total.scrub_passes += p.scrub_passes;
            total.pages_retired += p.pages_retired;
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bus() -> AvalonBus {
        AvalonBus::new(
            vec![
                MemoryController::new(MemoryKind::Ddr3Dram, 1 << 29),
                MemoryController::new(MemoryKind::Ddr3Dram, 1 << 29),
            ],
            5,
        )
    }

    #[test]
    fn roundtrip_through_bus() {
        let mut b = bus();
        let data = [0x3Cu8; 128];
        let t = b.write_line(SimTime::ZERO, WritePort::W0, 0x4000, &data);
        let (back, _, _) = b.read_line(t, ReadPort::R0, 0x4000);
        assert_eq!(back, data);
        assert_eq!(b.transfers(), 2);
    }

    #[test]
    fn cdc_charged_both_ways() {
        let mut b_fast = AvalonBus::new(
            vec![MemoryController::new(MemoryKind::Ddr3Dram, 1 << 29)],
            0,
        );
        let mut b_slow = AvalonBus::new(
            vec![MemoryController::new(MemoryKind::Ddr3Dram, 1 << 29)],
            5,
        );
        let (_, t_fast, _) = b_fast.read_line(SimTime::ZERO, ReadPort::R0, 0);
        let (_, t_slow, _) = b_slow.read_line(SimTime::ZERO, ReadPort::R0, 0);
        // 5 cycles x 4 ns x 2 directions = 40 ns extra.
        assert_eq!(t_slow - t_fast, SimTime::from_ns(40));
    }

    #[test]
    fn lines_interleave_across_two_ports() {
        let b = bus();
        assert_eq!(b.route(0), (0, 0));
        assert_eq!(b.route(128), (1, 0));
        assert_eq!(b.route(256), (0, 128));
        assert_eq!(b.route(300), (0, 128 + 44));
    }

    #[test]
    fn single_port_routes_identity() {
        let b = AvalonBus::new(
            vec![MemoryController::new(MemoryKind::Ddr3Dram, 1 << 29)],
            5,
        );
        assert_eq!(b.route(12345), (0, 12345));
    }

    #[test]
    fn port_serialization() {
        let mut b = bus();
        // Two reads on the same port at the same instant: the second
        // is delayed by one fabric cycle at the port.
        let (_, t1, _) = b.read_line(SimTime::ZERO, ReadPort::R0, 0);
        let (_, t2, _) = b.read_line(SimTime::ZERO, ReadPort::R0, 256);
        assert!(t2 >= t1, "same-bank same-port second access serializes");
        // Different port, different DIMM: independent.
        let (_, t3, _) = b.read_line(SimTime::ZERO, ReadPort::R1, 128);
        assert_eq!(t3, t1);
    }

    #[test]
    fn flush_all_crosses_cdc() {
        let mut b = AvalonBus::new(
            vec![MemoryController::new(
                MemoryKind::SttMram(contutto_memdev::MramGeneration::Pmtj),
                1 << 28,
            )],
            5,
        );
        let durable = b.write_line(SimTime::ZERO, WritePort::W0, 0, &[1u8; 128]);
        let f = b.flush_all(SimTime::from_ns(1));
        assert!(f >= durable);
    }

    #[test]
    #[should_panic(expected = "identically")]
    fn mismatched_ports_rejected() {
        let _ = AvalonBus::new(
            vec![
                MemoryController::new(MemoryKind::Ddr3Dram, 1 << 29),
                MemoryController::new(MemoryKind::Ddr3Dram, 1 << 28),
            ],
            5,
        );
    }
}
