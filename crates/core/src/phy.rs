//! The ConTutto DMI PHY.
//!
//! Paper §3.3(i): the FPGA's transceivers recover the clock from the
//! data (CDR) on receive — the link is operated asymmetrically — and
//! a 32:1 mux ratio brings 8 Gb/s lanes down to the 250 MHz fabric,
//! so the FPGA handles **two full frames per fabric cycle** (8× more
//! data per cycle than Centaur's 4:1 design).
//!
//! Two latency-critical design choices are modelled (paper §3.3(ii)):
//!
//! * **Clock-crossing FIFO bypass** — "instead of using the receiver
//!   macro clock crossing FIFO which adds extra latency, we capture
//!   the phase-offset data from the 14 receiver channels directly in
//!   the core clock domain."
//! * **CRC pipeline depth** — "we reduce the initially designed
//!   4-stage CRC logic on the FPGA down to two stages."
//!
//! Both default to the optimized setting; flipping them back
//! reproduces the naive design whose FRTL exceeds the POWER8 limit
//! (the ablation bench exercises exactly this).

use contutto_sim::{time::clocks, Cycles, SimTime};

/// Fabric-cycle latency configuration of the PHY.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhyConfig {
    /// Link-to-fabric mux ratio (32 on ConTutto, 4 on Centaur).
    pub mux_ratio: u32,
    /// Whether the receiver-macro clock-crossing FIFO is in the path
    /// (true = naive design, +4 fabric cycles of receive latency).
    pub use_clock_crossing_fifo: bool,
    /// Base receive deserialization latency, fabric cycles.
    pub rx_base_cycles: u64,
    /// Transmit serialization latency, fabric cycles.
    pub tx_cycles: u64,
}

impl PhyConfig {
    /// The optimized ConTutto PHY (direct core-domain capture).
    pub fn optimized() -> Self {
        PhyConfig {
            mux_ratio: 32,
            use_clock_crossing_fifo: false,
            rx_base_cycles: 5,
            tx_cycles: 5,
        }
    }

    /// The naive first-cut design with the receiver clock-crossing
    /// FIFO still in the path.
    pub fn naive() -> Self {
        PhyConfig {
            use_clock_crossing_fifo: true,
            ..PhyConfig::optimized()
        }
    }

    /// Receive latency through deserializer (+ optional CDC FIFO).
    pub fn rx_cycles(&self) -> Cycles {
        let fifo = if self.use_clock_crossing_fifo { 4 } else { 0 };
        Cycles(self.rx_base_cycles + fifo)
    }

    /// Receive latency as time.
    pub fn rx_latency(&self) -> SimTime {
        clocks::FPGA_FABRIC.cycles_to_time(self.rx_cycles())
    }

    /// Transmit latency as time.
    pub fn tx_latency(&self) -> SimTime {
        clocks::FPGA_FABRIC.cycles_to_time(Cycles(self.tx_cycles))
    }

    /// Frames delivered to the fabric per fabric cycle. With 14
    /// downstream lanes demuxed 32:1 at 8 Gb/s into a 250 MHz fabric,
    /// this is 2 (paper: "two full DMI frames per FPGA clock cycle").
    pub fn frames_per_fabric_cycle(&self) -> u32 {
        // lanes * mux_ratio bits per cycle / frame bits
        14 * self.mux_ratio / 224
    }
}

impl Default for PhyConfig {
    fn default() -> Self {
        PhyConfig::optimized()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn optimized_phy_frames_per_cycle_is_two() {
        assert_eq!(PhyConfig::optimized().frames_per_fabric_cycle(), 2);
    }

    #[test]
    fn centaur_style_mux_handles_quarter_frame() {
        // 4:1 mux: 14*4/224 = 0.25 frames per (Centaur) cycle — the
        // integer division documents that it is below one frame.
        let centaur_like = PhyConfig {
            mux_ratio: 4,
            ..PhyConfig::optimized()
        };
        assert_eq!(centaur_like.frames_per_fabric_cycle(), 0);
    }

    #[test]
    fn cdc_fifo_adds_latency() {
        let opt = PhyConfig::optimized();
        let naive = PhyConfig::naive();
        assert_eq!(naive.rx_cycles().count() - opt.rx_cycles().count(), 4);
        assert_eq!(opt.rx_latency(), SimTime::from_ns(20));
        assert_eq!(naive.rx_latency(), SimTime::from_ns(36));
        assert_eq!(opt.tx_latency(), naive.tx_latency());
    }
}
