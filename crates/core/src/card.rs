//! Card-level support: FSI slave, I²C register path, power
//! sequencing, presence detect and SPD access.
//!
//! Paper §3.2/§3.4: "ConTutto contains an FSI slave external to the
//! FPGA and the register space inside the FPGA is accessed via I²C.
//! Thus, each access becomes an indirect path of FSI Slave → I²C
//! Master → FPGA register" — slower than Centaur's direct FSI but
//! sufficient for training and control. "the auxiliary FSI slave on
//! the card provides some additional controls which enable the
//! firmware to control the FPGA's reset and power-on sequences
//! independently from the rest of the system. This allows for
//! repeated retries of the training sequence without bringing down
//! the entire system." The same slave serves presence
//! detect/differentiation from CDIMMs and direct SPD reads.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use contutto_memdev::Spd;
use contutto_sim::SimTime;

/// Presence-detect code returned for a ConTutto card (differentiates
/// it from a standard CDIMM during IPL).
pub const PRESENCE_CONTUTTO: u8 = 0xC7;
/// Presence-detect code of a standard Centaur CDIMM.
pub const PRESENCE_CDIMM: u8 = 0xCD;

/// Latency of one indirect FSI→I²C→FPGA register access.
pub const I2C_REG_ACCESS: SimTime = SimTime::from_us(100);
/// Latency of a direct FSI register access (Centaur-style, for
/// comparison).
pub const DIRECT_FSI_ACCESS: SimTime = SimTime::from_us(10);

/// Power rails, in the order the service processor must enable them
/// ("the service processor is responsible for maintaining the proper
/// time sequencing of the voltage rails in accordance with the FPGA
/// device power sequencing guidelines", §3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rail {
    /// FPGA core logic (switching regulator).
    VccCore,
    /// Auxiliary / configuration.
    VccAux,
    /// Digital I/O banks.
    VccIo,
    /// Quiet analog supply for the transceivers (LDO).
    VccTransceiver,
}

impl Rail {
    /// The mandated enable order.
    pub fn sequence() -> [Rail; 4] {
        [
            Rail::VccCore,
            Rail::VccAux,
            Rail::VccIo,
            Rail::VccTransceiver,
        ]
    }
}

/// Card control errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CardError {
    /// Register access attempted while the FPGA is unpowered or
    /// unconfigured.
    NotReady,
    /// A rail was enabled out of sequence.
    PowerSequenceViolation {
        /// The rail that was wrongly enabled.
        rail: Rail,
    },
    /// SPD requested for an unpopulated DIMM slot.
    NoDimm {
        /// The empty slot index.
        slot: usize,
    },
}

impl fmt::Display for CardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CardError::NotReady => write!(f, "fpga not powered/configured"),
            CardError::PowerSequenceViolation { rail } => {
                write!(f, "rail {rail:?} enabled out of sequence")
            }
            CardError::NoDimm { slot } => write!(f, "no dimm in slot {slot}"),
        }
    }
}

impl Error for CardError {}

/// The board-level model of one ConTutto card.
#[derive(Debug)]
pub struct ContuttoCard {
    rails_enabled: Vec<Rail>,
    fpga_configured: bool,
    registers: HashMap<u16, u32>,
    spd: Vec<Option<Spd>>,
    resets: u64,
}

/// Well-known FPGA register addresses (I²C-accessible space).
pub mod regs {
    /// Link-training control/status.
    pub const TRAINING_CTL: u16 = 0x0010;
    /// Latency-knob position (paper §4.1: "controllable from software").
    pub const LATENCY_KNOB: u16 = 0x0020;
    /// Design version/ID.
    pub const DESIGN_ID: u16 = 0x0000;
}

impl ContuttoCard {
    /// A powered-off card with the given DIMM slots populated.
    pub fn new(spd: Vec<Option<Spd>>) -> Self {
        assert!(spd.len() <= 2, "two DIMM connectors on the card");
        let mut registers = HashMap::new();
        registers.insert(regs::DESIGN_ID, 0xC0_7077_u32);
        ContuttoCard {
            rails_enabled: Vec::new(),
            fpga_configured: false,
            registers,
            spd,
            resets: 0,
        }
    }

    /// Presence-detect code read by firmware over FSI. Works even
    /// with the FPGA unpowered (it comes from the external FSI slave).
    pub fn presence_code(&self) -> u8 {
        PRESENCE_CONTUTTO
    }

    /// Reads a DIMM's SPD directly through the FSI slave ("critical
    /// for detecting and controlling the NVDIMMs", §3.4). Available
    /// without FPGA power.
    ///
    /// # Errors
    ///
    /// [`CardError::NoDimm`] for an empty slot.
    pub fn read_spd(&self, slot: usize) -> Result<&Spd, CardError> {
        self.spd
            .get(slot)
            .and_then(|s| s.as_ref())
            .ok_or(CardError::NoDimm { slot })
    }

    /// Enables one power rail. The service processor must follow the
    /// mandated order.
    ///
    /// # Errors
    ///
    /// [`CardError::PowerSequenceViolation`] if enabled out of order.
    pub fn enable_rail(&mut self, rail: Rail) -> Result<(), CardError> {
        let seq = Rail::sequence();
        let expected = seq.get(self.rails_enabled.len());
        if expected == Some(&rail) {
            self.rails_enabled.push(rail);
            Ok(())
        } else {
            Err(CardError::PowerSequenceViolation { rail })
        }
    }

    /// Runs the full power-on sequence and configures the FPGA from
    /// its flash (the free-running crystal path, §3.2). Returns the
    /// time the FPGA is ready.
    ///
    /// # Errors
    ///
    /// Propagates sequence violations (none occur on this path).
    pub fn power_on(&mut self, now: SimTime) -> Result<SimTime, CardError> {
        for rail in Rail::sequence() {
            if !self.rails_enabled.contains(&rail) {
                self.enable_rail(rail)?;
            }
        }
        self.fpga_configured = true;
        // Rail sequencing ~10 ms + bitstream load from flash ~800 ms.
        Ok(now + SimTime::from_ms(810))
    }

    /// Whether the FPGA is powered and configured.
    pub fn is_ready(&self) -> bool {
        self.rails_enabled.len() == Rail::sequence().len() && self.fpga_configured
    }

    /// Resets only the FPGA (for training retries) without touching
    /// the rest of the system. Returns reconfiguration-complete time.
    ///
    /// # Errors
    ///
    /// [`CardError::NotReady`] if the card is unpowered.
    pub fn reset_fpga(&mut self, now: SimTime) -> Result<SimTime, CardError> {
        if self.rails_enabled.len() != Rail::sequence().len() {
            return Err(CardError::NotReady);
        }
        self.resets += 1;
        self.fpga_configured = true;
        Ok(now + SimTime::from_ms(800))
    }

    /// FPGA-only resets performed (training retries).
    pub fn reset_count(&self) -> u64 {
        self.resets
    }

    /// Reads an FPGA register over the indirect FSI→I²C path.
    ///
    /// # Errors
    ///
    /// [`CardError::NotReady`] when the FPGA is down.
    pub fn read_fpga_reg(&self, now: SimTime, addr: u16) -> Result<(u32, SimTime), CardError> {
        if !self.is_ready() {
            return Err(CardError::NotReady);
        }
        let value = self.registers.get(&addr).copied().unwrap_or(0);
        Ok((value, now + I2C_REG_ACCESS))
    }

    /// Writes an FPGA register over the indirect FSI→I²C path.
    ///
    /// # Errors
    ///
    /// [`CardError::NotReady`] when the FPGA is down.
    pub fn write_fpga_reg(
        &mut self,
        now: SimTime,
        addr: u16,
        value: u32,
    ) -> Result<SimTime, CardError> {
        if !self.is_ready() {
            return Err(CardError::NotReady);
        }
        self.registers.insert(addr, value);
        Ok(now + I2C_REG_ACCESS)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use contutto_memdev::MramGeneration;

    fn card() -> ContuttoCard {
        ContuttoCard::new(vec![
            Some(Spd::mram(256 << 20, MramGeneration::Pmtj)),
            Some(Spd::mram(256 << 20, MramGeneration::Pmtj)),
        ])
    }

    #[test]
    fn presence_differs_from_cdimm() {
        assert_ne!(card().presence_code(), PRESENCE_CDIMM);
        assert_eq!(card().presence_code(), PRESENCE_CONTUTTO);
    }

    #[test]
    fn spd_readable_without_power() {
        let c = card();
        assert!(!c.is_ready());
        let spd = c.read_spd(0).unwrap();
        assert!(spd.nonvolatile);
        assert_eq!(
            ContuttoCard::new(vec![None]).read_spd(0),
            Err(CardError::NoDimm { slot: 0 })
        );
    }

    #[test]
    fn power_sequence_enforced() {
        let mut c = card();
        // IO before core: violation.
        assert_eq!(
            c.enable_rail(Rail::VccIo),
            Err(CardError::PowerSequenceViolation { rail: Rail::VccIo })
        );
        for rail in Rail::sequence() {
            c.enable_rail(rail).unwrap();
        }
        assert_eq!(c.rails_enabled.len(), 4);
    }

    #[test]
    fn register_access_requires_power() {
        let mut c = card();
        assert_eq!(
            c.read_fpga_reg(SimTime::ZERO, regs::DESIGN_ID),
            Err(CardError::NotReady)
        );
        let ready = c.power_on(SimTime::ZERO).unwrap();
        assert!(c.is_ready());
        let (id, t) = c.read_fpga_reg(ready, regs::DESIGN_ID).unwrap();
        assert_eq!(id, 0xC0_7077);
        assert_eq!(t - ready, I2C_REG_ACCESS);
    }

    #[test]
    fn indirect_path_is_slower_than_direct_fsi() {
        assert!(I2C_REG_ACCESS > DIRECT_FSI_ACCESS);
    }

    #[test]
    fn knob_register_roundtrip() {
        let mut c = card();
        let ready = c.power_on(SimTime::ZERO).unwrap();
        let t = c.write_fpga_reg(ready, regs::LATENCY_KNOB, 6).unwrap();
        let (v, _) = c.read_fpga_reg(t, regs::LATENCY_KNOB).unwrap();
        assert_eq!(v, 6);
    }

    #[test]
    fn fpga_reset_without_system_reboot() {
        let mut c = card();
        assert_eq!(c.reset_fpga(SimTime::ZERO), Err(CardError::NotReady));
        let ready = c.power_on(SimTime::ZERO).unwrap();
        for i in 1..=3 {
            let t = c.reset_fpga(ready).unwrap();
            assert!(t > ready);
            assert_eq!(c.reset_count(), i);
        }
        assert!(c.is_ready(), "system never went down");
    }
}
