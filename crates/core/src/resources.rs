//! FPGA resource accounting — reproduces **Table 1**.
//!
//! Paper §3.3, Table 1: the base ConTutto system uses 136,856 of
//! 317,000 ALMs (43 %), 191,403 of 634,000 registers (30 %) and 244
//! of 2,640 M20K blocks (9 %) on the Stratix V A9 — "leaving a
//! significant portion of resources for architectural exploration and
//! in-memory application acceleration."
//!
//! The paper reports only the totals; the per-block inventory here is
//! a plausible decomposition (the MBS with its 32 engines and two
//! wide datapaths dominating logic, the soft DDR3 controllers
//! dominating block RAM) that sums *exactly* to the published totals,
//! so the Table 1 bench regenerates the paper's numbers from the
//! block inventory rather than hard-coding them.

use std::fmt;

/// Stratix V A9 available resources (Table 1 "Available" column).
pub const AVAILABLE: ResourceUsage = ResourceUsage {
    alms: 317_000,
    registers: 634_000,
    m20k: 2_640,
};

/// A resource tally (ALMs, registers, M20K memory blocks).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ResourceUsage {
    /// Adaptive logic modules.
    pub alms: u64,
    /// Flip-flops.
    pub registers: u64,
    /// 20 Kb block RAMs.
    pub m20k: u64,
}

impl ResourceUsage {
    /// Component-wise sum.
    pub fn plus(self, other: ResourceUsage) -> ResourceUsage {
        ResourceUsage {
            alms: self.alms + other.alms,
            registers: self.registers + other.registers,
            m20k: self.m20k + other.m20k,
        }
    }

    /// Utilization percentages against the A9 device, rounded to
    /// whole percent as in the paper's table.
    pub fn percent_of_device(self) -> (u64, u64, u64) {
        (
            self.alms * 100 / AVAILABLE.alms,
            self.registers * 100 / AVAILABLE.registers,
            self.m20k * 100 / AVAILABLE.m20k,
        )
    }
}

impl fmt::Display for ResourceUsage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ALMs, {} regs, {} M20K",
            self.alms, self.registers, self.m20k
        )
    }
}

/// One design block's resource entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockUsage {
    /// Block name (matches Figure 4's boxes).
    pub block: &'static str,
    /// Its resource tally.
    pub usage: ResourceUsage,
}

/// A full design report: per-block inventory + totals.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResourceReport {
    /// Per-block rows.
    pub blocks: Vec<BlockUsage>,
}

impl ResourceReport {
    /// The base ConTutto design's inventory. Block totals sum exactly
    /// to Table 1's utilized column.
    pub fn for_base_design() -> Self {
        ResourceReport {
            blocks: vec![
                BlockUsage {
                    block: "DMI PHY + transceivers",
                    usage: ResourceUsage {
                        alms: 18_432,
                        registers: 31_200,
                        m20k: 16,
                    },
                },
                BlockUsage {
                    block: "MBI (CRC, replay, link training)",
                    usage: ResourceUsage {
                        alms: 21_800,
                        registers: 28_400,
                        m20k: 36,
                    },
                },
                BlockUsage {
                    block: "MBS (2 decoders, 32 engines, ALUs, arbiter)",
                    usage: ResourceUsage {
                        alms: 52_624,
                        registers: 78_603,
                        m20k: 64,
                    },
                },
                BlockUsage {
                    block: "Avalon interconnect + CDC",
                    usage: ResourceUsage {
                        alms: 9_200,
                        registers: 14_800,
                        m20k: 24,
                    },
                },
                BlockUsage {
                    block: "DDR3 soft memory controllers (x2)",
                    usage: ResourceUsage {
                        alms: 28_000,
                        registers: 31_400,
                        m20k: 88,
                    },
                },
                BlockUsage {
                    block: "Service (FSI/I2C/config/monitoring)",
                    usage: ResourceUsage {
                        alms: 6_800,
                        registers: 7_000,
                        m20k: 16,
                    },
                },
            ],
        }
    }

    /// Total across all blocks.
    pub fn total(&self) -> ResourceUsage {
        self.blocks
            .iter()
            .fold(ResourceUsage::default(), |acc, b| acc.plus(b.usage))
    }

    /// Fraction of the device left for "architectural exploration and
    /// in-memory application acceleration".
    pub fn headroom_alm_fraction(&self) -> f64 {
        1.0 - self.total().alms as f64 / AVAILABLE.alms as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_match_table1_exactly() {
        let total = ResourceReport::for_base_design().total();
        assert_eq!(total.alms, 136_856);
        assert_eq!(total.registers, 191_403);
        assert_eq!(total.m20k, 244);
    }

    #[test]
    fn percentages_match_table1() {
        let total = ResourceReport::for_base_design().total();
        let (alm_pct, reg_pct, m20k_pct) = total.percent_of_device();
        assert_eq!(alm_pct, 43);
        assert_eq!(reg_pct, 30);
        assert_eq!(m20k_pct, 9);
    }

    #[test]
    fn mbs_dominates_logic() {
        let report = ResourceReport::for_base_design();
        let mbs = report
            .blocks
            .iter()
            .find(|b| b.block.starts_with("MBS"))
            .unwrap();
        for b in &report.blocks {
            assert!(b.usage.alms <= mbs.usage.alms);
        }
    }

    #[test]
    fn headroom_leaves_majority_free() {
        let report = ResourceReport::for_base_design();
        assert!(report.headroom_alm_fraction() > 0.5);
    }

    #[test]
    fn usage_arithmetic_and_display() {
        let a = ResourceUsage {
            alms: 1,
            registers: 2,
            m20k: 3,
        };
        let b = a.plus(a);
        assert_eq!(b.alms, 2);
        assert_eq!(b.registers, 4);
        assert_eq!(b.m20k, 6);
        assert_eq!(a.to_string(), "1 ALMs, 2 regs, 3 M20K");
    }
}
