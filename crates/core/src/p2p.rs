//! Card-to-card PCIe transfers.
//!
//! Paper §3.2: "The PCIe interface could be potentially used for
//! direct memory-to-memory transfers between ConTutto cards without
//! burdening the POWER8 memory bus."
//!
//! [`P2pLink`] models that side channel: a DMA engine that streams
//! data from one card's DIMMs to another card's DIMMs over a private
//! PCIe connection. The transfer is functional (real bytes move) and
//! charged at PCIe bandwidth — and, critically, it performs **zero**
//! Avalon line transfers on either card's DMI-facing ports, which the
//! tests assert.

use contutto_sim::SimTime;

use crate::avalon::AvalonBus;

/// A point-to-point PCIe link between two ConTutto cards.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct P2pLink {
    /// Usable link bandwidth, bytes/sec (Gen3 x8 ≈ 7.9 GB/s).
    pub bandwidth: f64,
    /// Per-transfer DMA setup cost (descriptor write + doorbell).
    pub setup: SimTime,
}

impl Default for P2pLink {
    fn default() -> Self {
        P2pLink {
            bandwidth: 7.9e9,
            setup: SimTime::from_us(2),
        }
    }
}

/// Statistics for one transfer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct P2pTransfer {
    /// Bytes moved.
    pub bytes: u64,
    /// Completion time.
    pub completed_at: SimTime,
    /// Achieved bandwidth, bytes/sec.
    pub bandwidth: f64,
}

impl P2pLink {
    /// Copies `len` bytes from `src_addr` on `src` card to `dst_addr`
    /// on `dst` card, starting at `now`.
    ///
    /// # Panics
    ///
    /// Panics if either range exceeds the card's capacity.
    pub fn transfer(
        &self,
        src: &mut AvalonBus,
        dst: &mut AvalonBus,
        src_addr: u64,
        dst_addr: u64,
        len: u64,
        now: SimTime,
    ) -> P2pTransfer {
        assert!(
            src_addr + len <= src.capacity_bytes(),
            "source out of range"
        );
        assert!(
            dst_addr + len <= dst.capacity_bytes(),
            "destination out of range"
        );
        // Functional move in 64 KiB chunks, port-interleaved like the
        // cards' line interleave.
        let mut buf = vec![0u8; 64 * 1024];
        let mut off = 0u64;
        while off < len {
            let n = (len - off).min(buf.len() as u64) as usize;
            read_interleaved(src, src_addr + off, &mut buf[..n]);
            write_interleaved(dst, dst_addr + off, &buf[..n]);
            off += n as u64;
        }
        let duration = SimTime::from_ps((len as f64 / self.bandwidth * 1e12) as u64);
        let completed_at = now + self.setup + duration;
        P2pTransfer {
            bytes: len,
            completed_at,
            bandwidth: len as f64 / (completed_at - now).as_secs_f64(),
        }
    }
}

fn read_interleaved(bus: &mut AvalonBus, addr: u64, buf: &mut [u8]) {
    let ports = bus.ports() as u64;
    let mut off = 0u64;
    while (off as usize) < buf.len() {
        let a = addr + off;
        let unit = a / 128;
        let port = (unit % ports) as usize;
        let local = (unit / ports) * 128 + a % 128;
        let span = 128 - a % 128;
        let n = span.min(buf.len() as u64 - off) as usize;
        bus.controller_mut(port)
            .peek_span(local, &mut buf[off as usize..off as usize + n]);
        off += n as u64;
    }
}

fn write_interleaved(bus: &mut AvalonBus, addr: u64, data: &[u8]) {
    let ports = bus.ports() as u64;
    let mut off = 0u64;
    while (off as usize) < data.len() {
        let a = addr + off;
        let unit = a / 128;
        let port = (unit % ports) as usize;
        let local = (unit / ports) * 128 + a % 128;
        let span = 128 - a % 128;
        let n = span.min(data.len() as u64 - off) as usize;
        bus.controller_mut(port)
            .poke_span(local, &data[off as usize..off as usize + n]);
        off += n as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memctl::{MemoryController, MemoryKind};

    fn card_bus() -> AvalonBus {
        AvalonBus::new(
            vec![
                MemoryController::new(MemoryKind::Ddr3Dram, 1 << 29),
                MemoryController::new(MemoryKind::Ddr3Dram, 1 << 29),
            ],
            5,
        )
    }

    #[test]
    fn transfer_moves_data_between_cards() {
        let mut a = card_bus();
        let mut b = card_bus();
        let payload: Vec<u8> = (0..300_000u32).map(|i| (i % 249) as u8).collect();
        write_interleaved(&mut a, 0x1000, &payload);
        let link = P2pLink::default();
        let t = link.transfer(
            &mut a,
            &mut b,
            0x1000,
            0x9000,
            payload.len() as u64,
            SimTime::ZERO,
        );
        assert_eq!(t.bytes, payload.len() as u64);
        let mut back = vec![0u8; payload.len()];
        read_interleaved(&mut b, 0x9000, &mut back);
        assert_eq!(back, payload);
    }

    #[test]
    fn memory_bus_is_not_burdened() {
        // The paper's point: P2P traffic bypasses the DMI path. The
        // Avalon line-transfer counters (which the DMI/MBS path uses)
        // must not move.
        let mut a = card_bus();
        let mut b = card_bus();
        let before = (a.transfers(), b.transfers());
        P2pLink::default().transfer(&mut a, &mut b, 0, 0, 1 << 20, SimTime::ZERO);
        assert_eq!((a.transfers(), b.transfers()), before);
    }

    #[test]
    fn bandwidth_is_pcie_class() {
        let mut a = card_bus();
        let mut b = card_bus();
        let len: u64 = 64 << 20;
        let t = P2pLink::default().transfer(&mut a, &mut b, 0, 0, len, SimTime::ZERO);
        let gbps = t.bandwidth / 1e9;
        assert!((6.0..8.0).contains(&gbps), "p2p at {gbps} GB/s");
    }

    #[test]
    fn setup_dominates_tiny_transfers() {
        let mut a = card_bus();
        let mut b = card_bus();
        let t = P2pLink::default().transfer(&mut a, &mut b, 0, 0, 64, SimTime::ZERO);
        assert!(t.completed_at >= SimTime::from_us(2));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn range_checked() {
        let mut a = card_bus();
        let mut b = card_bus();
        let cap = a.capacity_bytes();
        P2pLink::default().transfer(&mut a, &mut b, cap - 10, 0, 100, SimTime::ZERO);
    }
}
