//! # contutto-core
//!
//! The **ConTutto FPGA memory buffer**: the paper's primary
//! contribution (§3). This crate models the complete FPGA logic stack
//! of Figure 4 plus the card-level support of Figure 3:
//!
//! | module | paper block |
//! |---|---|
//! | [`phy`] | DMI interface: 32:1 mux, CDR receive, clock-crossing choices (§3.3(i)) |
//! | [`mbi`] | Memory Buffer Interface: CRC pipeline depth, replay/freeze (§3.3(ii)) |
//! | [`mbs`] | Memory Buffer Synchronous logic: 2 frame decoders, 32 command engines, shared RMW ALU, unified upstream arbiter (§3.3(iii)) |
//! | [`avalon`] | On-chip Avalon bus with clock-domain crossing (§3.3(iv)) |
//! | [`memctl`] | Soft memory controllers: DDR3, MRAM, NVDIMM + flush (§3.3(v), §4.2) |
//! | [`buffer`] | The assembled [`ConTutto`] buffer (implements `DmiBuffer`) with the latency knob of §4.1 |
//! | [`accel`] | Near-memory acceleration: inline command engines and block accelerators — memcpy, min/max, FFT (§4.3) |
//! | [`access`] | The programmable Access processor: ISA, assembler, multithreaded interpreter, address mapping (§4.3) |
//! | [`tcam`] | the on-card ternary CAM for lookup acceleration (§3.2) |
//! | [`p2p`] | card-to-card PCIe transfers bypassing the memory bus (§3.2) |
//! | [`resources`] | FPGA resource accounting reproducing Table 1 |
//! | [`card`] | Board-level: FSI slave, I²C register access, power sequencing, SPD (§3.2, §3.4) |
//!
//! ## Quick start
//!
//! ```
//! use contutto_core::{ConTutto, ContuttoConfig, MemoryPopulation};
//! use contutto_dmi::DmiBuffer;
//!
//! let card = ConTutto::new(ContuttoConfig::base(), MemoryPopulation::dram_8gb());
//! assert_eq!(card.name(), "contutto-base");
//! // The FPGA is slower through than the Centaur ASIC — that is the
//! // price of flexibility (paper §4.1).
//! assert!(card.frtl_turnaround().as_ns() >= 50);
//! ```

pub mod accel;
pub mod access;
pub mod avalon;
pub mod buffer;
pub mod card;
pub mod mbi;
pub mod mbs;
pub mod memctl;
pub mod p2p;
pub mod phy;
pub mod resources;
pub mod tcam;

pub use buffer::{ConTutto, ContuttoConfig, ContuttoStats, MemoryPopulation};
pub use mbi::MbiConfig;
pub use memctl::{MemoryController, MemoryKind};
pub use p2p::P2pLink;
pub use phy::PhyConfig;
pub use resources::{ResourceReport, ResourceUsage};
pub use tcam::{Tcam, TcamEntry};
