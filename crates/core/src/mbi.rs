//! The Memory Buffer Interface (MBI) logic configuration.
//!
//! Paper §3.3(ii): the MBI "handles DMI protocol handshaking",
//! generates/verifies CRC and sequence IDs, manages the replay buffer
//! and — uniquely on ConTutto — implements the **freeze workaround**:
//! on a replay request the FPGA "repeatedly re-transmits the last
//! upstream frame, effectively freezing the flow of frames from the
//! processor's perspective, until the FPGA is ready to switch to
//! replay".
//!
//! The protocol machinery itself lives in
//! [`contutto_dmi::protocol::LinkEndpoint`]; this module carries the
//! FPGA-implementation parameters (CRC pipeline depth, freeze length)
//! and their latency contributions.

use contutto_dmi::protocol::LinkEndpointConfig;
use contutto_sim::{time::clocks, Cycles, SimTime};

/// MBI implementation parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MbiConfig {
    /// CRC pipeline stages (2 after optimization, 4 in the first cut —
    /// paper: "similar to the design on Centaur, packing a lot more
    /// logic in each stage than usually done in FPGA designs").
    pub crc_stages: u64,
    /// Fabric cycles the replay mux needs before it can switch, during
    /// which the last frame is re-transmitted (the freeze workaround).
    pub replay_switch_delay_frames: u64,
    /// Base protocol-handling latency beyond CRC, fabric cycles.
    pub base_cycles: u64,
}

impl MbiConfig {
    /// The optimized 2-stage-CRC MBI.
    pub fn optimized() -> Self {
        MbiConfig {
            crc_stages: 2,
            replay_switch_delay_frames: 4,
            base_cycles: 1,
        }
    }

    /// The naive 4-stage-CRC MBI.
    pub fn naive() -> Self {
        MbiConfig {
            crc_stages: 4,
            ..MbiConfig::optimized()
        }
    }

    /// Receive-side MBI latency (CRC check + seq/ACK bookkeeping).
    pub fn rx_cycles(&self) -> Cycles {
        Cycles(self.base_cycles + self.crc_stages)
    }

    /// Transmit-side MBI latency (CRC generation).
    pub fn tx_cycles(&self) -> Cycles {
        Cycles(self.crc_stages)
    }

    /// Receive latency as time.
    pub fn rx_latency(&self) -> SimTime {
        clocks::FPGA_FABRIC.cycles_to_time(self.rx_cycles())
    }

    /// Transmit latency as time.
    pub fn tx_latency(&self) -> SimTime {
        clocks::FPGA_FABRIC.cycles_to_time(self.tx_cycles())
    }

    /// Builds the link-endpoint configuration for this MBI (the
    /// ConTutto buffer role with its freeze workaround).
    pub fn endpoint_config(&self) -> LinkEndpointConfig {
        let mut cfg = LinkEndpointConfig::contutto_buffer();
        cfg.replay_switch_delay_frames = self.replay_switch_delay_frames;
        cfg
    }
}

impl Default for MbiConfig {
    fn default() -> Self {
        MbiConfig::optimized()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc_stage_reduction_saves_two_cycles_each_way() {
        let opt = MbiConfig::optimized();
        let naive = MbiConfig::naive();
        assert_eq!(naive.rx_cycles().count() - opt.rx_cycles().count(), 2);
        assert_eq!(naive.tx_cycles().count() - opt.tx_cycles().count(), 2);
    }

    #[test]
    fn latencies_in_time() {
        let opt = MbiConfig::optimized();
        assert_eq!(opt.rx_latency(), SimTime::from_ns(12));
        assert_eq!(opt.tx_latency(), SimTime::from_ns(8));
    }

    #[test]
    fn endpoint_config_carries_freeze() {
        let cfg = MbiConfig::optimized().endpoint_config();
        assert_eq!(cfg.replay_switch_delay_frames, 4);
    }
}
