//! Firmware / IPL: bringing the memory subsystem up.
//!
//! Paper §3.4: firmware must (i) drive the DMI training sequence —
//! through the indirect FSI→I²C path for ConTutto — with "repeated
//! retries of the training sequence without bringing down the entire
//! system"; (ii) detect presence and differentiate ConTutto from
//! standard CDIMMs, "allowing for a mixed configuration"; (iii) read
//! the SPD "critical for detecting and controlling the NVDIMMs"; and
//! (iv) fit everything into the memory map with the non-volatile
//! placement rules and the 4 GB size lying (see [`crate::memmap`]).
//!
//! Plug rules (paper §3.1): "a ConTutto card is larger than a CDIMM
//! and plugging a ConTutto in a DMI slot blocks the adjacent DMI
//! slot" and "can be plugged only in specific DMI slots" — modelled
//! as: ConTutto goes in even slots only, and the next slot must be
//! empty.

use contutto_centaur::{Centaur, CentaurConfig};
#[cfg(test)]
use contutto_core::card::PRESENCE_CONTUTTO;
use contutto_core::card::{ContuttoCard, PRESENCE_CDIMM};
use contutto_core::{ConTutto, ContuttoConfig, MemoryPopulation};
use contutto_dmi::training::{TrainerConfig, TrainingOutcome};
use contutto_dmi::DmiError;
use contutto_memdev::{MediaKind, MramGeneration, Spd};
use contutto_sim::SimTime;

use crate::channel::{ChannelConfig, DmiChannel};
use crate::fsp::{ServiceProcessor, Severity};
use crate::memmap::{ChannelMemory, MemoryMap};

/// Number of DMI slots on the modelled socket (paper §2.1: eight
/// channels per processor).
pub const NUM_SLOTS: usize = 8;

/// Maximum FRTL the POWER8 DMI master tolerates, in 2 GHz bus cycles.
/// 160 cycles (80 ns): the optimized ConTutto design (~68 ns measured
/// round trip) fits; the naive design with the clock-crossing FIFO and
/// 4-stage CRC (~100 ns) does not — the design story of §3.3(ii).
pub const P8_MAX_FRTL_BUS_CYCLES: u64 = 160;

/// Outer training retries (each may power-cycle only the FPGA).
pub const TRAINING_RETRIES: u32 = 3;

/// What is plugged into each DMI slot.
#[derive(Debug, Clone)]
pub enum SlotPopulation {
    /// Nothing.
    Empty,
    /// A standard Centaur CDIMM.
    Cdimm {
        /// Buffer configuration (latency knobs).
        config: CentaurConfig,
        /// DRAM behind the buffer.
        capacity: u64,
    },
    /// A ConTutto card (blocks the next slot).
    ConTutto {
        /// FPGA design variant.
        config: ContuttoConfig,
        /// DIMM population.
        population: MemoryPopulation,
    },
}

/// Boot-time failures.
#[derive(Debug)]
pub enum BootError {
    /// Slot layout violates the plug rules.
    InvalidPlug {
        /// Offending slot.
        slot: usize,
        /// Why.
        reason: &'static str,
    },
    /// The memory map could not be built (e.g. no DRAM).
    Map(crate::memmap::MapError),
    /// No channel trained successfully.
    NoUsableMemory,
}

impl std::fmt::Display for BootError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BootError::InvalidPlug { slot, reason } => {
                write!(f, "invalid plug in slot {slot}: {reason}")
            }
            BootError::Map(e) => write!(f, "memory map: {e}"),
            BootError::NoUsableMemory => write!(f, "no channel trained successfully"),
        }
    }
}

impl std::error::Error for BootError {}

/// A successfully booted channel.
pub struct BootedChannel {
    /// Slot index.
    pub slot: usize,
    /// The live channel (trained).
    pub channel: DmiChannel,
    /// Media kind behind it.
    pub kind: MediaKind,
    /// Capacity behind it.
    pub capacity: u64,
    /// Training outcome.
    pub training: TrainingOutcome,
}

impl std::fmt::Debug for BootedChannel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BootedChannel")
            .field("slot", &self.slot)
            .field("kind", &self.kind)
            .field("capacity", &self.capacity)
            .finish_non_exhaustive()
    }
}

/// The result of IPL.
pub struct BootReport {
    /// Channels that trained and are in the map.
    pub channels: Vec<BootedChannel>,
    /// The assembled memory map.
    pub memory_map: MemoryMap,
    /// Per-slot presence codes seen during detection.
    pub presence: Vec<Option<u8>>,
    /// SPDs read during detection.
    pub spds: Vec<Option<Spd>>,
    /// NVDIMM slots that were armed.
    pub nvdimms_armed: Vec<usize>,
}

impl std::fmt::Debug for BootReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BootReport")
            .field("channels", &self.channels.len())
            .field("nvdimms_armed", &self.nvdimms_armed)
            .finish_non_exhaustive()
    }
}

/// How firmware reacts to a runtime channel error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorAction {
    /// Machine check: poisoned (media-uncorrectable) data reached the
    /// host. The consuming context is terminated, the data discarded;
    /// the system stays up.
    MachineCheck,
    /// Link-level event the channel recovers from transparently
    /// (replay, retry ladder); logged for trend analysis.
    Recoverable,
    /// The channel is dead or unsafe; firmware deconfigures the slot.
    Deconfigure,
}

/// The firmware engine.
#[derive(Debug)]
pub struct Firmware {
    trainer_cfg: TrainerConfig,
}

impl Default for Firmware {
    fn default() -> Self {
        Firmware::new()
    }
}

impl Firmware {
    /// Firmware with the production FRTL limit and retry budget.
    pub fn new() -> Self {
        Firmware {
            trainer_cfg: TrainerConfig {
                max_frtl_bus_cycles: P8_MAX_FRTL_BUS_CYCLES,
                ..TrainerConfig::default()
            },
        }
    }

    /// Validates the plug rules.
    ///
    /// # Errors
    ///
    /// [`BootError::InvalidPlug`] naming the offending slot.
    pub fn validate_plug_rules(slots: &[SlotPopulation]) -> Result<(), BootError> {
        for (i, slot) in slots.iter().enumerate() {
            if let SlotPopulation::ConTutto { .. } = slot {
                if i % 2 != 0 {
                    return Err(BootError::InvalidPlug {
                        slot: i,
                        reason: "contutto fits only specific (even) dmi slots",
                    });
                }
                match slots.get(i + 1) {
                    Some(SlotPopulation::Empty) | None => {}
                    Some(_) => {
                        return Err(BootError::InvalidPlug {
                            slot: i + 1,
                            reason: "contutto blocks the adjacent slot",
                        })
                    }
                }
            }
        }
        Ok(())
    }

    /// Runs IPL over the slot population. Channels whose training
    /// fails permanently are logged to the FSP and left out of the
    /// map; the system still boots if any volatile memory trained.
    ///
    /// # Errors
    ///
    /// [`BootError::InvalidPlug`], [`BootError::Map`] or
    /// [`BootError::NoUsableMemory`].
    pub fn boot(
        &self,
        slots: Vec<SlotPopulation>,
        fsp: &mut ServiceProcessor,
        seed: u64,
    ) -> Result<BootReport, BootError> {
        self.boot_with_reserves(slots, fsp, seed, &[])
    }

    /// [`Self::boot`], but slots named in `reserves` are trained and
    /// kept powered without being placed in the memory map: hot spares
    /// a later failover can rebind regions onto. The paper's concurrent
    /// maintenance story (§3.2) depends on having somewhere to go.
    ///
    /// # Errors
    ///
    /// Everything [`Self::boot`] returns, plus
    /// [`BootError::InvalidPlug`] if a reserve index names an empty or
    /// out-of-range slot.
    pub fn boot_with_reserves(
        &self,
        slots: Vec<SlotPopulation>,
        fsp: &mut ServiceProcessor,
        seed: u64,
        reserves: &[usize],
    ) -> Result<BootReport, BootError> {
        Self::validate_plug_rules(&slots)?;
        for &r in reserves {
            match slots.get(r) {
                Some(SlotPopulation::Empty) | None => {
                    return Err(BootError::InvalidPlug {
                        slot: r,
                        reason: "reserve slot is empty or out of range",
                    })
                }
                Some(_) => {}
            }
        }
        let mut channels = Vec::new();
        let mut presence = vec![None; slots.len()];
        let mut spds = vec![None; slots.len()];
        let mut nvdimms_armed = Vec::new();
        let mut memories = Vec::new();

        for (slot, pop) in slots.into_iter().enumerate() {
            match pop {
                SlotPopulation::Empty => {}
                SlotPopulation::Cdimm { config, capacity } => {
                    presence[slot] = Some(PRESENCE_CDIMM);
                    spds[slot] = Some(Spd::dram(capacity));
                    let mut channel = DmiChannel::new(
                        ChannelConfig::centaur(),
                        Box::new(Centaur::new(config, capacity)),
                    );
                    match self.train_with_retries(&mut channel, slot, fsp, seed, false) {
                        Some(training) => {
                            if reserves.contains(&slot) {
                                fsp.log(SimTime::ZERO, slot, Severity::Info, "held in reserve");
                            } else {
                                memories.push(ChannelMemory {
                                    channel: slot,
                                    kind: MediaKind::Dram,
                                    capacity,
                                });
                            }
                            channels.push(BootedChannel {
                                slot,
                                channel,
                                kind: MediaKind::Dram,
                                capacity,
                                training,
                            });
                        }
                        None => fsp.log(
                            SimTime::ZERO,
                            slot,
                            Severity::Unrecovered,
                            "cdimm failed training",
                        ),
                    }
                }
                SlotPopulation::ConTutto { config, population } => {
                    // Presence + SPD come through the card's FSI slave,
                    // before the FPGA is even powered.
                    let spd = match population.kind {
                        contutto_core::MemoryKind::Ddr3Dram => Spd::dram(population.dimm_capacity),
                        contutto_core::MemoryKind::SttMram(g) => {
                            Spd::mram(population.dimm_capacity, g)
                        }
                        contutto_core::MemoryKind::NvdimmN => Spd::nvdimm(population.dimm_capacity),
                    };
                    let card = ContuttoCard::new(vec![Some(spd.clone()), Some(spd.clone())]);
                    presence[slot] = Some(card.presence_code());
                    spds[slot] = Some(spd.clone());
                    fsp.log(SimTime::ZERO, slot, Severity::Info, "contutto detected");

                    if spd.vendor_specific_save {
                        // DDR3 NVDIMM arming sequence (vendor specific).
                        nvdimms_armed.push(slot);
                        fsp.log(SimTime::ZERO, slot, Severity::Info, "nvdimm armed");
                    }

                    let kind = match population.kind {
                        contutto_core::MemoryKind::Ddr3Dram => MediaKind::Dram,
                        contutto_core::MemoryKind::SttMram(_) => MediaKind::SttMram,
                        contutto_core::MemoryKind::NvdimmN => MediaKind::NvdimmN,
                    };
                    let capacity = population.total_bytes();
                    let mut channel = DmiChannel::new(
                        ChannelConfig::contutto(),
                        Box::new(ConTutto::new(config, population)),
                    );
                    match self.train_with_retries(&mut channel, slot, fsp, seed, true) {
                        Some(training) => {
                            if reserves.contains(&slot) {
                                fsp.log(SimTime::ZERO, slot, Severity::Info, "held in reserve");
                            } else {
                                memories.push(ChannelMemory {
                                    channel: slot,
                                    kind,
                                    capacity,
                                });
                            }
                            channels.push(BootedChannel {
                                slot,
                                channel,
                                kind,
                                capacity,
                                training,
                            });
                        }
                        None => fsp.log(
                            SimTime::ZERO,
                            slot,
                            Severity::Unrecovered,
                            "contutto failed training; slot deconfigured",
                        ),
                    }
                }
            }
        }

        if channels.is_empty() {
            return Err(BootError::NoUsableMemory);
        }
        let memory_map = MemoryMap::build(&memories, 1 << 42).map_err(BootError::Map)?;
        Ok(BootReport {
            channels,
            memory_map,
            presence,
            spds,
            nvdimms_armed,
        })
    }

    /// Classifies a runtime channel error and logs it to the FSP.
    ///
    /// [`DmiError::Poisoned`] is the RAS path this exists for: the
    /// buffer delivered a line the media flagged uncorrectable, so the
    /// firmware raises a machine check — the poisoned data is never
    /// consumed, and only the faulting context dies, not the system.
    pub fn classify_runtime_error(
        now: SimTime,
        slot: usize,
        err: &DmiError,
        fsp: &mut ServiceProcessor,
    ) -> ErrorAction {
        match err {
            DmiError::Poisoned { addr } => {
                fsp.log(
                    now,
                    slot,
                    Severity::Unrecovered,
                    &format!("machine check: poisoned data at {addr:#x}"),
                );
                ErrorAction::MachineCheck
            }
            DmiError::Timeout { tag, .. } => {
                fsp.log(
                    now,
                    slot,
                    Severity::Unrecovered,
                    &format!("channel hang on tag {tag}; slot deconfigured"),
                );
                ErrorAction::Deconfigure
            }
            DmiError::TrainingFailed { .. } | DmiError::FrtlExceeded { .. } => {
                fsp.log(
                    now,
                    slot,
                    Severity::Unrecovered,
                    "retrain failed; slot deconfigured",
                );
                ErrorAction::Deconfigure
            }
            other => {
                fsp.log(now, slot, Severity::Recovered, &format!("{other}"));
                ErrorAction::Recoverable
            }
        }
    }

    fn train_with_retries(
        &self,
        channel: &mut DmiChannel,
        slot: usize,
        fsp: &mut ServiceProcessor,
        seed: u64,
        is_contutto: bool,
    ) -> Option<TrainingOutcome> {
        for attempt in 0..TRAINING_RETRIES {
            match channel.train(self.trainer_cfg.clone(), seed ^ u64::from(attempt)) {
                Ok(outcome) => {
                    if outcome.attempts > 1 {
                        fsp.log(
                            SimTime::ZERO,
                            slot,
                            Severity::Info,
                            &format!("training locked after {} tries", outcome.attempts),
                        );
                    }
                    return Some(outcome);
                }
                Err(DmiError::FrtlExceeded {
                    measured_bus_cycles,
                    max_bus_cycles,
                }) => {
                    // Retrying cannot fix a too-slow buffer.
                    fsp.log(
                        SimTime::ZERO,
                        slot,
                        Severity::Unrecovered,
                        &format!("frtl {measured_bus_cycles} > max {max_bus_cycles}"),
                    );
                    return None;
                }
                Err(_) if is_contutto => {
                    // Reset only the FPGA and retry — the system stays up
                    // (paper §3.4: "repeated retries of the training
                    // sequence without bringing down the entire system").
                    fsp.log(
                        SimTime::ZERO,
                        slot,
                        Severity::Info,
                        "training failed; fpga reset and retry",
                    );
                }
                Err(_) => {
                    fsp.log(SimTime::ZERO, slot, Severity::Info, "training retry");
                }
            }
        }
        None
    }
}

/// Convenience slot layouts used by the paper's experiments.
pub mod layouts {
    use super::*;

    /// All eight slots populated with CDIMMs (stock S824).
    pub fn all_cdimm(config: CentaurConfig, capacity_each: u64) -> Vec<SlotPopulation> {
        (0..NUM_SLOTS)
            .map(|_| SlotPopulation::Cdimm {
                config: config.clone(),
                capacity: capacity_each,
            })
            .collect()
    }

    /// One ConTutto + six CDIMMs (paper §3.1: a tested configuration).
    pub fn one_contutto_six_cdimm(
        contutto: ContuttoConfig,
        population: MemoryPopulation,
    ) -> Vec<SlotPopulation> {
        let mut slots = vec![
            SlotPopulation::ConTutto {
                config: contutto,
                population,
            },
            SlotPopulation::Empty, // blocked by the card
        ];
        for _ in 0..6 {
            slots.push(SlotPopulation::Cdimm {
                config: CentaurConfig::optimized(),
                capacity: 32 << 30,
            });
        }
        slots
    }

    /// Two ConTutto + four CDIMMs (paper §3.1: also tested).
    pub fn two_contutto_four_cdimm(
        contutto: ContuttoConfig,
        population: MemoryPopulation,
    ) -> Vec<SlotPopulation> {
        let mut slots = Vec::new();
        for _ in 0..2 {
            slots.push(SlotPopulation::ConTutto {
                config: contutto,
                population,
            });
            slots.push(SlotPopulation::Empty);
        }
        for _ in 0..4 {
            slots.push(SlotPopulation::Cdimm {
                config: CentaurConfig::optimized(),
                capacity: 32 << 30,
            });
        }
        slots
    }

    /// The §4.1 latency experiment: a single ConTutto with 8 GB DRAM,
    /// "the rest of the DMI slots deconfigured" — plus one minimal
    /// CDIMM so Linux has DRAM at address zero.
    pub fn single_contutto_for_latency(config: ContuttoConfig) -> Vec<SlotPopulation> {
        vec![
            SlotPopulation::Cdimm {
                config: CentaurConfig::optimized(),
                capacity: 4 << 30,
            },
            SlotPopulation::Empty,
            SlotPopulation::ConTutto {
                config,
                population: MemoryPopulation::dram_8gb(),
            },
            SlotPopulation::Empty,
        ]
    }

    /// A failover testbed: minimal CDIMM system memory at slot 0, a
    /// ConTutto victim at slot 2 and an identical ConTutto at slot 4
    /// to serve as hot spare or mirror.
    pub fn failover_pair(
        config: ContuttoConfig,
        population: MemoryPopulation,
    ) -> Vec<SlotPopulation> {
        vec![
            SlotPopulation::Cdimm {
                config: CentaurConfig::optimized(),
                capacity: 4 << 30,
            },
            SlotPopulation::Empty,
            SlotPopulation::ConTutto { config, population },
            SlotPopulation::Empty,
            SlotPopulation::ConTutto { config, population },
            SlotPopulation::Empty,
        ]
    }

    /// The §4.2 MRAM setup: two ConTutto cards with 2 × 256 MB MRAM
    /// each (1 GB total? the paper says "a total of 1 GB of STT-MRAM"
    /// across two cards) plus CDIMM system memory.
    pub fn mram_storage_system() -> Vec<SlotPopulation> {
        let mut slots = vec![
            SlotPopulation::Cdimm {
                config: CentaurConfig::optimized(),
                capacity: 32 << 30,
            },
            SlotPopulation::Empty,
        ];
        for _ in 0..2 {
            slots.push(SlotPopulation::ConTutto {
                config: ContuttoConfig::base(),
                population: MemoryPopulation::mram_512mb(MramGeneration::Pmtj),
            });
            slots.push(SlotPopulation::Empty);
        }
        slots
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fsp() -> ServiceProcessor {
        ServiceProcessor::new(3)
    }

    #[test]
    fn plug_rules_reject_odd_slot() {
        let slots = vec![
            SlotPopulation::Empty,
            SlotPopulation::ConTutto {
                config: ContuttoConfig::base(),
                population: MemoryPopulation::dram_8gb(),
            },
        ];
        assert!(matches!(
            Firmware::validate_plug_rules(&slots),
            Err(BootError::InvalidPlug { slot: 1, .. })
        ));
    }

    #[test]
    fn plug_rules_reject_blocked_neighbor() {
        let slots = vec![
            SlotPopulation::ConTutto {
                config: ContuttoConfig::base(),
                population: MemoryPopulation::dram_8gb(),
            },
            SlotPopulation::Cdimm {
                config: CentaurConfig::optimized(),
                capacity: 32 << 30,
            },
        ];
        assert!(matches!(
            Firmware::validate_plug_rules(&slots),
            Err(BootError::InvalidPlug { slot: 1, .. })
        ));
    }

    #[test]
    fn boot_mixed_configuration() {
        let mut fsp = fsp();
        let report = Firmware::new()
            .boot(
                layouts::one_contutto_six_cdimm(
                    ContuttoConfig::base(),
                    MemoryPopulation::dram_8gb(),
                ),
                &mut fsp,
                7,
            )
            .unwrap();
        assert_eq!(report.channels.len(), 7); // 1 contutto + 6 cdimm
        assert_eq!(report.presence[0], Some(PRESENCE_CONTUTTO));
        assert_eq!(report.presence[2], Some(PRESENCE_CDIMM));
        assert!(report.memory_map.dram_at_zero().is_some());
        assert!(report.nvdimms_armed.is_empty());
    }

    #[test]
    fn naive_contutto_fails_frtl_and_is_deconfigured() {
        let mut fsp = fsp();
        let slots = vec![
            SlotPopulation::Cdimm {
                config: CentaurConfig::optimized(),
                capacity: 32 << 30,
            },
            SlotPopulation::Empty,
            SlotPopulation::ConTutto {
                config: ContuttoConfig::naive(),
                population: MemoryPopulation::dram_8gb(),
            },
            SlotPopulation::Empty,
        ];
        let report = Firmware::new().boot(slots, &mut fsp, 7).unwrap();
        // Only the CDIMM survives.
        assert_eq!(report.channels.len(), 1);
        assert_eq!(report.channels[0].slot, 0);
        assert!(fsp
            .entries()
            .any(|e| e.message.contains("frtl") && e.channel == 2));
    }

    #[test]
    fn optimized_contutto_passes_frtl() {
        let mut fsp = fsp();
        let report = Firmware::new()
            .boot(
                layouts::single_contutto_for_latency(ContuttoConfig::base()),
                &mut fsp,
                3,
            )
            .unwrap();
        assert_eq!(report.channels.len(), 2);
        let contutto = report.channels.iter().find(|c| c.slot == 2).unwrap();
        assert!(contutto.training.frtl_bus_cycles.count() <= P8_MAX_FRTL_BUS_CYCLES);
    }

    #[test]
    fn mram_system_maps_nv_at_top_and_arms_nothing() {
        let mut fsp = fsp();
        let report = Firmware::new()
            .boot(layouts::mram_storage_system(), &mut fsp, 1)
            .unwrap();
        let nv = report.memory_map.nonvolatile_regions();
        assert_eq!(nv.len(), 2);
        for r in nv {
            assert!(r.is_undersized_media(), "512 MB lies inside a 4 GB window");
            assert_eq!(r.os_size, 512 << 20);
        }
        // MRAM needs no supercap arming.
        assert!(report.nvdimms_armed.is_empty());
    }

    #[test]
    fn nvdimm_system_arms_supercaps() {
        let mut fsp = fsp();
        let slots = vec![
            SlotPopulation::Cdimm {
                config: CentaurConfig::optimized(),
                capacity: 32 << 30,
            },
            SlotPopulation::Empty,
            SlotPopulation::ConTutto {
                config: ContuttoConfig::base(),
                population: MemoryPopulation::nvdimm_8gb(),
            },
            SlotPopulation::Empty,
        ];
        let report = Firmware::new().boot(slots, &mut fsp, 1).unwrap();
        assert_eq!(report.nvdimms_armed, vec![2]);
    }

    #[test]
    fn poisoned_read_is_a_machine_check_not_a_crash() {
        let mut fsp = fsp();
        let action = Firmware::classify_runtime_error(
            SimTime::from_us(5),
            2,
            &DmiError::Poisoned { addr: 0x8000 },
            &mut fsp,
        );
        assert_eq!(action, ErrorAction::MachineCheck);
        let entry = fsp.entries().last().expect("logged");
        assert_eq!(entry.channel, 2);
        assert_eq!(entry.severity, Severity::Unrecovered);
        assert!(entry.message.contains("machine check"), "{}", entry.message);
        assert!(entry.message.contains("0x8000"), "{}", entry.message);
    }

    #[test]
    fn runtime_error_classification_spans_the_ladder() {
        let mut fsp = fsp();
        let hang = Firmware::classify_runtime_error(
            SimTime::ZERO,
            0,
            &DmiError::Timeout {
                tag: 4,
                waited: SimTime::from_ms(1),
            },
            &mut fsp,
        );
        assert_eq!(hang, ErrorAction::Deconfigure);
        let crc = Firmware::classify_runtime_error(
            SimTime::ZERO,
            0,
            &DmiError::CrcMismatch { claimed_seq: 1 },
            &mut fsp,
        );
        assert_eq!(crc, ErrorAction::Recoverable);
    }

    #[test]
    fn boot_without_memory_fails() {
        let mut fsp = fsp();
        let err = Firmware::new().boot(vec![SlotPopulation::Empty], &mut fsp, 0);
        assert!(matches!(err, Err(BootError::NoUsableMemory)));
    }
}
