//! Channel failover policy and migration state.
//!
//! Paper §3.2: the FSP "disables hardware that generates too many
//! errors", and concurrent maintenance lets a buffer card be pulled
//! from a running system. This module holds what the system needs to
//! survive that: where to go ([`FailoverMode`]), what still has to
//! move ([`Migration`]), and what happened ([`FailoverStats`]).
//!
//! The mechanism lives in [`crate::system::Power8System`]; the
//! sideband copy path (FSI→I²C, §3.4) that evacuation reads ride is
//! implemented down in the memory devices.

use std::collections::BTreeSet;

use contutto_sim::snapshot::{Persist, RestoreError, SnapReader};
use contutto_sim::SimTime;

/// Sim-time charged per line moved by the background migrator. The
/// sideband path is indirect (FSI→I²C register pokes), orders of
/// magnitude slower than the DMI link — 2 µs/line keeps migration
/// visibly slower than demand traffic without making tests crawl.
pub const MIGRATION_LINE_COST: SimTime = SimTime::from_us(2);

/// Lines the background migrator moves per demand access ("scrub
/// style" catch-up: progress rides on foreground traffic).
pub const MIGRATION_BATCH: usize = 4;

/// Migration batch while the system is browned out: evacuation yields
/// almost all of its bandwidth to demand traffic, moving one line per
/// pump so the backlog still drains (brownout must never starve the
/// evacuation to a standstill — a dead buffer's data stays at risk
/// until it is off the card).
pub const BROWNOUT_MIGRATION_BATCH: usize = 1;

/// Emit a `MigrationProgress` trace event every this many lines.
pub const MIGRATION_PROGRESS_STRIDE: u64 = 8;

/// What the system does when the FSP deconfigures a channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailoverMode {
    /// No redundancy: accesses to a dead channel return typed errors.
    None,
    /// A trained hot-spare channel held out of the memory map; on
    /// failover the dead channel's lines are evacuated onto it and
    /// its regions rebound.
    Spare {
        /// Slot of the reserve channel.
        spare: usize,
    },
    /// Mirrored pair: every store to `primary` is fanned out to
    /// `mirror`; reads fail over per-access, and a deconfiguration
    /// rebinds with no migration needed (the data is already there).
    Mirrored {
        /// The channel the memory map points at.
        primary: usize,
        /// Its write-shadow.
        mirror: usize,
    },
}

/// An in-progress evacuation from a dead channel to its spare.
#[derive(Debug)]
pub struct Migration {
    /// Dead source slot.
    pub from: usize,
    /// Spare destination slot.
    pub to: usize,
    /// Channel-local line addresses still to copy.
    pub pending: BTreeSet<u64>,
    /// Lines copied so far (clean or poisoned).
    pub migrated: u64,
    /// Of those, lines that carried poison across.
    pub poison_migrated: u64,
}

impl Migration {
    /// Lines still waiting to move.
    pub fn backlog(&self) -> u64 {
        self.pending.len() as u64
    }
}

/// Counters for the `system.failover.*` metrics.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct FailoverStats {
    /// Completed failovers (rebinds).
    pub failovers: u64,
    /// Lines moved by the migrator (background + demand).
    pub lines_migrated: u64,
    /// Lines that migrated carrying poison.
    pub poison_migrated: u64,
    /// Lines pulled ahead of the frontier by a demand access.
    pub demand_migrations: u64,
    /// Reads served from the mirror after the primary failed.
    pub mirror_read_fallbacks: u64,
    /// Lines the sideband could not read at all (migrated as poison).
    pub lines_unreadable: u64,
}

impl Persist for FailoverMode {
    fn persist(&self, out: &mut Vec<u8>) {
        match self {
            FailoverMode::None => 0u8.persist(out),
            FailoverMode::Spare { spare } => {
                1u8.persist(out);
                spare.persist(out);
            }
            FailoverMode::Mirrored { primary, mirror } => {
                2u8.persist(out);
                primary.persist(out);
                mirror.persist(out);
            }
        }
    }
    fn restore(r: &mut SnapReader<'_>) -> Result<Self, RestoreError> {
        Ok(match r.u8()? {
            0 => FailoverMode::None,
            1 => FailoverMode::Spare {
                spare: usize::restore(r)?,
            },
            2 => FailoverMode::Mirrored {
                primary: usize::restore(r)?,
                mirror: usize::restore(r)?,
            },
            _ => {
                return Err(RestoreError::Malformed {
                    context: "failover mode discriminant",
                })
            }
        })
    }
}

impl Persist for Migration {
    fn persist(&self, out: &mut Vec<u8>) {
        self.from.persist(out);
        self.to.persist(out);
        self.pending.persist(out);
        self.migrated.persist(out);
        self.poison_migrated.persist(out);
    }
    fn restore(r: &mut SnapReader<'_>) -> Result<Self, RestoreError> {
        let from = usize::restore(r)?;
        let to = usize::restore(r)?;
        let pending = BTreeSet::restore(r)?;
        let migrated = r.u64()?;
        let poison_migrated = r.u64()?;
        Ok(Migration {
            from,
            to,
            pending,
            migrated,
            poison_migrated,
        })
    }
}

impl Persist for FailoverStats {
    fn persist(&self, out: &mut Vec<u8>) {
        self.failovers.persist(out);
        self.lines_migrated.persist(out);
        self.poison_migrated.persist(out);
        self.demand_migrations.persist(out);
        self.mirror_read_fallbacks.persist(out);
        self.lines_unreadable.persist(out);
    }
    fn restore(r: &mut SnapReader<'_>) -> Result<Self, RestoreError> {
        let failovers = r.u64()?;
        let lines_migrated = r.u64()?;
        let poison_migrated = r.u64()?;
        let demand_migrations = r.u64()?;
        let mirror_read_fallbacks = r.u64()?;
        let lines_unreadable = r.u64()?;
        Ok(FailoverStats {
            failovers,
            lines_migrated,
            poison_migrated,
            demand_migrations,
            mirror_read_fallbacks,
            lines_unreadable,
        })
    }
}
