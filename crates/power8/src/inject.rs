//! The unified fault-injection surface.
//!
//! Every fault the per-campaign harnesses inject by hand — link
//! bit-error windows, tag-hang blackouts, media flip storms, scrub
//! toggles, maintenance pulls, EPOW, surprise power cuts — is
//! expressible as one [`FaultAction`], and
//! [`Power8System::apply_fault_action`] routes it to the existing
//! injector for its layer. This is what lets a chaos plan (a
//! serialized, seed-generated list of actions) compose faults that no
//! hand-written campaign enumerates: a power cut mid-evacuation, a
//! scrub storm during a link retrain, noise on two channels at once.
//!
//! Actions are total: anything that cannot be applied against the
//! current layout (a slot with no channel, a buffer without media
//! hooks, a pull with no failover target) comes back as
//! [`FaultOutcome::Skipped`] with a reason — plan files are external
//! input and must never abort the process.

use contutto_dmi::{BitErrorInjector, MediaFaultSpec};
use contutto_sim::SimTime;

use crate::system::{Power8System, RebootReport};

/// One typed fault, applicable to any [`Power8System`] layout.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultAction {
    /// Bernoulli bit-error noise on a channel's wires. `down`/`up` are
    /// per-frame corruption probabilities (clamped to `[0, 1]`);
    /// `1.0` on both is a blackout — every frame dies, tags hang, and
    /// the recovery ladder (or failover) must dig the channel out.
    LinkNoise {
        /// Target slot.
        slot: usize,
        /// Downstream per-frame corruption probability.
        down: f64,
        /// Upstream per-frame corruption probability.
        up: f64,
        /// Seed for the noise streams (upstream is decorrelated).
        seed: u64,
    },
    /// Removes all injected noise from a channel's wires.
    LinkClear {
        /// Target slot.
        slot: usize,
    },
    /// Latency degradation: collapses the channel's tracked in-flight
    /// window to a single tag for `window` of channel time, modelling
    /// a link that still works but has gone slow (a retraining lane, a
    /// thermally throttled FPGA). The overload layer's metastable
    /// campaign uses this as its trigger: a slow — not dead — channel
    /// is what retry storms feed on.
    SlowChannel {
        /// Target slot.
        slot: usize,
        /// How long the degradation lasts, in channel time.
        window: SimTime,
    },
    /// A media fault burst on the DIMMs behind a slot: transient
    /// flips over a window starting now, concentrated in a hot range,
    /// plus permanently stuck cells.
    FlipStorm {
        /// Target slot.
        slot: usize,
        /// Seed for the burst's flip schedule.
        seed: u64,
        /// Transient flips to schedule.
        flips: u32,
        /// Window the flips land in, starting at the apply time.
        window: SimTime,
        /// First line-aligned byte of the hot range.
        hot_start: u64,
        /// Hot-range length in bytes.
        hot_len: u64,
        /// Stuck cells planted immediately.
        stuck: u32,
    },
    /// (Re)arms patrol scrub on a slot with the given interval.
    ScrubOn {
        /// Target slot.
        slot: usize,
        /// Scrub pass interval.
        interval: SimTime,
    },
    /// Disables patrol scrub on a slot.
    ScrubOff {
        /// Target slot.
        slot: usize,
    },
    /// Concurrent maintenance: pull the buffer card in `slot`.
    MaintenancePull {
        /// Slot being pulled.
        slot: usize,
    },
    /// Early-power-off warning: run the FSP flush cascade.
    Epow,
    /// Surprise mains cut (no EPOW), dark for `outage`, then reboot.
    PowerCut {
        /// How long the machine stays dark before power returns.
        outage: SimTime,
    },
    /// Test-only oracle bait: deposits garbage in a line over the
    /// sideband, bypassing the host's written-line bookkeeping and the
    /// poison marker — exactly the silent corruption the durability
    /// oracle exists to catch. Never emitted by the plan generator;
    /// constructed directly by shrinker/oracle tests and replayable
    /// from a reproducer file.
    Sabotage {
        /// Slot whose media is corrupted.
        slot: usize,
        /// Channel-local byte address of the line to clobber.
        addr: u64,
    },
}

/// What applying a [`FaultAction`] did.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultOutcome {
    /// The fault is armed/applied.
    Applied,
    /// The action included a power cut and the system rebooted.
    Rebooted(RebootReport),
    /// The machine could not come back from a power cut (too little
    /// memory retrained). Terminal for the run, but still typed.
    RebootFailed(String),
    /// The action was inapplicable to this layout; reason attached.
    Skipped(&'static str),
}

impl Power8System {
    /// Applies one typed fault at `now`, routing it to the injector
    /// that owns its layer. Inapplicable actions return
    /// [`FaultOutcome::Skipped`] rather than failing: a chaos plan is
    /// external input and must be safe against any layout.
    pub fn apply_fault_action(&mut self, now: SimTime, action: &FaultAction) -> FaultOutcome {
        match *action {
            FaultAction::LinkNoise {
                slot,
                down,
                up,
                seed,
            } => {
                let Some(ch) = self.channel_mut(slot) else {
                    return FaultOutcome::Skipped("no live channel in slot");
                };
                let noise = |p: f64, s: u64| {
                    let p = if p.is_finite() {
                        p.clamp(0.0, 1.0)
                    } else {
                        0.0
                    };
                    if p > 0.0 {
                        BitErrorInjector::bernoulli(p, s)
                    } else {
                        BitErrorInjector::never()
                    }
                };
                ch.channel.set_down_injector(noise(down, seed));
                ch.channel
                    .set_up_injector(noise(up, seed.wrapping_add(0x9E37_79B9)));
                FaultOutcome::Applied
            }
            FaultAction::LinkClear { slot } => {
                let Some(ch) = self.channel_mut(slot) else {
                    return FaultOutcome::Skipped("no live channel in slot");
                };
                ch.channel.set_down_injector(BitErrorInjector::never());
                ch.channel.set_up_injector(BitErrorInjector::never());
                FaultOutcome::Applied
            }
            FaultAction::SlowChannel { slot, window } => {
                let Some(ch) = self.channel_mut(slot) else {
                    return FaultOutcome::Skipped("no live channel in slot");
                };
                ch.channel.degrade_for(window.max(SimTime::from_ps(1)));
                FaultOutcome::Applied
            }
            FaultAction::FlipStorm {
                slot,
                seed,
                flips,
                window,
                hot_start,
                hot_len,
                stuck,
            } => {
                let Some(ch) = self.channel_mut(slot) else {
                    return FaultOutcome::Skipped("no live channel in slot");
                };
                let spec = MediaFaultSpec {
                    seed,
                    transient_flips: flips,
                    window,
                    hot_start,
                    hot_len: hot_len.max(1),
                    stuck_cells: stuck,
                };
                if ch.channel.buffer_mut().arm_media_faults(now, spec) {
                    FaultOutcome::Applied
                } else {
                    FaultOutcome::Skipped("buffer has no fault-capable media")
                }
            }
            FaultAction::ScrubOn { slot, interval } => {
                let Some(ch) = self.channel_mut(slot) else {
                    return FaultOutcome::Skipped("no live channel in slot");
                };
                if ch.channel.buffer_mut().set_scrub(now, Some(interval)) {
                    FaultOutcome::Applied
                } else {
                    FaultOutcome::Skipped("buffer has no scrub engine")
                }
            }
            FaultAction::ScrubOff { slot } => {
                let Some(ch) = self.channel_mut(slot) else {
                    return FaultOutcome::Skipped("no live channel in slot");
                };
                if ch.channel.buffer_mut().set_scrub(now, None) {
                    FaultOutcome::Applied
                } else {
                    FaultOutcome::Skipped("buffer has no scrub engine")
                }
            }
            FaultAction::MaintenancePull { slot } => match self.maintenance_pull(slot) {
                Ok(()) => FaultOutcome::Applied,
                Err(_) => FaultOutcome::Skipped("pull would orphan mapped memory"),
            },
            FaultAction::Epow => {
                let _ = self.epow();
                FaultOutcome::Applied
            }
            FaultAction::PowerCut { outage } => {
                let at = now.max(self.now());
                let quiet = self.power_cut(at);
                match self.reboot(quiet + outage) {
                    Ok(report) => FaultOutcome::Rebooted(report),
                    Err(e) => FaultOutcome::RebootFailed(e.to_string()),
                }
            }
            FaultAction::Sabotage { slot, addr } => {
                let Some(ch) = self.channel_mut(slot) else {
                    return FaultOutcome::Skipped("no live channel in slot");
                };
                // Garbage that no workload pattern produces, deposited
                // clean (poison = false): undetectable at read time.
                let garbage = [0xB6u8; 128];
                if ch
                    .channel
                    .buffer_mut()
                    .sideband_write_line(addr, &garbage, false)
                {
                    FaultOutcome::Applied
                } else {
                    FaultOutcome::Skipped("no sideband path or address out of range")
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::firmware::SlotPopulation;
    use contutto_centaur::CentaurConfig;
    use contutto_core::{ContuttoConfig, MemoryPopulation};
    use contutto_dmi::command::CacheLine;

    fn system() -> Power8System {
        Power8System::boot(
            vec![
                SlotPopulation::Cdimm {
                    config: CentaurConfig::optimized(),
                    capacity: 1 << 30,
                },
                SlotPopulation::Empty,
                SlotPopulation::ConTutto {
                    config: ContuttoConfig::base(),
                    population: MemoryPopulation::dram_8gb(),
                },
            ],
            7,
        )
        .expect("boot")
    }

    #[test]
    fn actions_route_to_their_layers_or_skip_loudly() {
        let mut sys = system();
        let now = sys.now();
        // Media hooks exist on the ConTutto slot, not the Centaur one.
        let storm = |slot| FaultAction::FlipStorm {
            slot,
            seed: 5,
            flips: 8,
            window: SimTime::from_us(50),
            hot_start: 0,
            hot_len: 4096,
            stuck: 0,
        };
        assert_eq!(
            sys.apply_fault_action(now, &storm(2)),
            FaultOutcome::Applied
        );
        assert!(matches!(
            sys.apply_fault_action(now, &storm(0)),
            FaultOutcome::Skipped(_)
        ));
        assert!(matches!(
            sys.apply_fault_action(now, &storm(6)),
            FaultOutcome::Skipped(_)
        ));
        assert_eq!(
            sys.apply_fault_action(
                now,
                &FaultAction::ScrubOn {
                    slot: 2,
                    interval: SimTime::from_us(10),
                }
            ),
            FaultOutcome::Applied
        );
        assert_eq!(
            sys.apply_fault_action(now, &FaultAction::ScrubOff { slot: 2 }),
            FaultOutcome::Applied
        );
        assert_eq!(
            sys.apply_fault_action(now, &FaultAction::Epow),
            FaultOutcome::Applied
        );
        // No failover target: the pull is refused, typed, non-fatal.
        assert!(matches!(
            sys.apply_fault_action(now, &FaultAction::MaintenancePull { slot: 2 }),
            FaultOutcome::Skipped(_)
        ));
    }

    #[test]
    fn link_noise_clamps_hostile_probabilities_and_clears() {
        let mut sys = system();
        let now = sys.now();
        for p in [f64::NAN, f64::INFINITY, -3.0, 42.0] {
            assert_eq!(
                sys.apply_fault_action(
                    now,
                    &FaultAction::LinkNoise {
                        slot: 2,
                        down: p,
                        up: p,
                        seed: 1,
                    }
                ),
                FaultOutcome::Applied,
                "p = {p} must clamp, not panic"
            );
        }
        assert_eq!(
            sys.apply_fault_action(now, &FaultAction::LinkClear { slot: 2 }),
            FaultOutcome::Applied
        );
        // The channel still serves traffic after a clear.
        sys.store_line(0, CacheLine::patterned(1)).expect("store");
        let (line, _) = sys.load_line(0).expect("load");
        assert_eq!(line, CacheLine::patterned(1));
    }

    #[test]
    fn slow_channel_degrades_live_slots_and_skips_dead_ones() {
        let mut sys = system();
        let now = sys.now();
        let slow = |slot| FaultAction::SlowChannel {
            slot,
            window: SimTime::from_us(30),
        };
        assert_eq!(sys.apply_fault_action(now, &slow(2)), FaultOutcome::Applied);
        assert!(matches!(
            sys.apply_fault_action(now, &slow(1)),
            FaultOutcome::Skipped(_)
        ));
        // Degrade the channel serving address 0 too: a degraded channel
        // still completes traffic (window = 1, not 0).
        assert_eq!(sys.apply_fault_action(now, &slow(0)), FaultOutcome::Applied);
        sys.store_line(0, CacheLine::patterned(3)).expect("store");
        let (line, _) = sys.load_line(0).expect("load");
        assert_eq!(line, CacheLine::patterned(3));
    }

    #[test]
    fn power_cut_action_reboots_and_reports() {
        let mut sys = system();
        let now = sys.now();
        let out = sys.apply_fault_action(
            now,
            &FaultAction::PowerCut {
                outage: SimTime::from_ms(1),
            },
        );
        let FaultOutcome::Rebooted(report) = out else {
            panic!("expected a reboot, got {out:?}");
        };
        assert!(report.ready_at > now);
        assert!(sys.powered());
    }

    #[test]
    fn sabotage_corrupts_without_a_trace() {
        let mut sys = system();
        let value = CacheLine::patterned(9);
        sys.store_line(0, value).expect("store");
        let (slot, local) = sys.route(0).expect("mapped");
        let now = sys.now();
        assert_eq!(
            sys.apply_fault_action(now, &FaultAction::Sabotage { slot, addr: local }),
            FaultOutcome::Applied
        );
        // The load succeeds cleanly — no poison, no error — with the
        // wrong bytes. Only the durability oracle can catch this.
        let (read, _) = sys.load_line(0).expect("clean load");
        assert_ne!(read, value, "the line silently changed");
    }

    #[test]
    fn hostile_sabotage_address_is_skipped_not_a_panic() {
        // A reproducer is external input: an absurd address must come
        // back as a typed skip, never abort the process.
        let mut sys = system();
        let now = sys.now();
        let (slot, _) = sys.route(0).expect("mapped");
        for addr in [u64::MAX, u64::MAX - 64, 1 << 60] {
            assert_eq!(
                sys.apply_fault_action(now, &FaultAction::Sabotage { slot, addr }),
                FaultOutcome::Skipped("no sideband path or address out of range"),
            );
        }
    }
}
