//! The Flexible Service Processor (FSP).
//!
//! Paper §3.2: "All IBM POWER systems contain a low level 'service
//! processor' ... The purpose of this service architecture is to
//! automatically derive the structure of the machine and configure
//! each feature card prior to boot. It also periodically checks the
//! correct operation of all the hardware, and recovers from errors
//! and system faults. The service processor maintains long-term logs
//! of faults and errors on each piece of hardware, and disables
//! hardware that generates too many errors."

use std::collections::HashMap;

use contutto_sim::SimTime;

/// Severity of a logged event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Informational (training retry, presence detect).
    Info,
    /// Recovered error (replay, corrected CRC).
    Recovered,
    /// Unrecovered error (training failure, FRTL violation).
    Unrecovered,
}

/// One FSP log entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogEntry {
    /// When it was logged.
    pub at: SimTime,
    /// Hardware unit (DMI channel index).
    pub channel: usize,
    /// Severity.
    pub severity: Severity,
    /// Human-readable description.
    pub message: String,
}

/// FSP-level errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FspError {
    /// The channel has been deconfigured and must not be used.
    ChannelDeconfigured {
        /// The dead channel.
        channel: usize,
    },
}

impl std::fmt::Display for FspError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FspError::ChannelDeconfigured { channel } => {
                write!(f, "channel {channel} is deconfigured")
            }
        }
    }
}

impl std::error::Error for FspError {}

/// The service processor: log store + error budgets + deconfiguration.
#[derive(Debug)]
pub struct ServiceProcessor {
    log: Vec<LogEntry>,
    unrecovered_counts: HashMap<usize, u32>,
    deconfigured: Vec<usize>,
    /// Unrecovered errors tolerated per channel before deconfiguration.
    error_budget: u32,
}

impl ServiceProcessor {
    /// Creates an FSP with the given per-channel error budget.
    pub fn new(error_budget: u32) -> Self {
        ServiceProcessor {
            log: Vec::new(),
            unrecovered_counts: HashMap::new(),
            deconfigured: Vec::new(),
            error_budget,
        }
    }

    /// Logs an event; unrecovered events count against the channel's
    /// budget and may deconfigure it.
    pub fn log(&mut self, at: SimTime, channel: usize, severity: Severity, message: &str) {
        self.log.push(LogEntry {
            at,
            channel,
            severity,
            message: message.to_string(),
        });
        if severity == Severity::Unrecovered {
            let count = self.unrecovered_counts.entry(channel).or_insert(0);
            *count += 1;
            if *count > self.error_budget && !self.deconfigured.contains(&channel) {
                self.deconfigured.push(channel);
                self.log.push(LogEntry {
                    at,
                    channel,
                    severity: Severity::Unrecovered,
                    message: "channel deconfigured (error budget exhausted)".to_string(),
                });
            }
        }
    }

    /// Checks a channel is usable.
    ///
    /// # Errors
    ///
    /// [`FspError::ChannelDeconfigured`] once the budget is blown.
    pub fn check_channel(&self, channel: usize) -> Result<(), FspError> {
        if self.deconfigured.contains(&channel) {
            Err(FspError::ChannelDeconfigured { channel })
        } else {
            Ok(())
        }
    }

    /// The full event log.
    pub fn entries(&self) -> &[LogEntry] {
        &self.log
    }

    /// Channels taken out of service.
    pub fn deconfigured_channels(&self) -> &[usize] {
        &self.deconfigured
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn info_events_never_deconfigure() {
        let mut fsp = ServiceProcessor::new(2);
        for _ in 0..100 {
            fsp.log(SimTime::ZERO, 0, Severity::Info, "training retry");
        }
        assert!(fsp.check_channel(0).is_ok());
        assert_eq!(fsp.entries().len(), 100);
    }

    #[test]
    fn budget_exhaustion_deconfigures() {
        let mut fsp = ServiceProcessor::new(2);
        for i in 0..3 {
            assert!(fsp.check_channel(4).is_ok(), "still alive at {i}");
            fsp.log(
                SimTime::from_us(i),
                4,
                Severity::Unrecovered,
                "frtl exceeded",
            );
        }
        assert_eq!(
            fsp.check_channel(4),
            Err(FspError::ChannelDeconfigured { channel: 4 })
        );
        assert_eq!(fsp.deconfigured_channels(), &[4]);
        // Other channels unaffected.
        assert!(fsp.check_channel(5).is_ok());
    }

    #[test]
    fn recovered_errors_are_logged_but_free() {
        let mut fsp = ServiceProcessor::new(0);
        fsp.log(SimTime::ZERO, 1, Severity::Recovered, "replay completed");
        assert!(fsp.check_channel(1).is_ok());
    }

    #[test]
    fn deconfiguration_is_logged() {
        let mut fsp = ServiceProcessor::new(0);
        fsp.log(SimTime::ZERO, 2, Severity::Unrecovered, "boom");
        let last = fsp.entries().last().unwrap();
        assert!(last.message.contains("deconfigured"));
    }
}
