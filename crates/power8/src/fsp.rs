//! The Flexible Service Processor (FSP).
//!
//! Paper §3.2: "All IBM POWER systems contain a low level 'service
//! processor' ... The purpose of this service architecture is to
//! automatically derive the structure of the machine and configure
//! each feature card prior to boot. It also periodically checks the
//! correct operation of all the hardware, and recovers from errors
//! and system faults. The service processor maintains long-term logs
//! of faults and errors on each piece of hardware, and disables
//! hardware that generates too many errors."

use std::collections::{HashMap, VecDeque};

use contutto_sim::snapshot::{persist_sorted_map, restore_map, Persist, RestoreError, SnapReader};
use contutto_sim::SimTime;

/// Severity of a logged event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Informational (training retry, presence detect).
    Info,
    /// Recovered error (replay, corrected CRC).
    Recovered,
    /// Unrecovered error (training failure, FRTL violation).
    Unrecovered,
}

/// One FSP log entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogEntry {
    /// When it was logged.
    pub at: SimTime,
    /// Hardware unit (DMI channel index).
    pub channel: usize,
    /// Severity.
    pub severity: Severity,
    /// Human-readable description.
    pub message: String,
}

/// FSP-level errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FspError {
    /// The channel has been deconfigured and must not be used.
    ChannelDeconfigured {
        /// The dead channel.
        channel: usize,
    },
}

impl std::fmt::Display for FspError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FspError::ChannelDeconfigured { channel } => {
                write!(f, "channel {channel} is deconfigured")
            }
        }
    }
}

impl std::error::Error for FspError {}

/// Default bound on the in-memory event log. A real FSP keeps
/// long-term logs on its own flash; our model keeps the most recent
/// window and counts what scrolled off.
pub const DEFAULT_LOG_CAPACITY: usize = 512;

/// The service processor: log store + error budgets + deconfiguration.
#[derive(Debug)]
pub struct ServiceProcessor {
    log: VecDeque<LogEntry>,
    log_capacity: usize,
    log_dropped: u64,
    unrecovered_counts: HashMap<usize, u32>,
    deconfigured: Vec<usize>,
    /// Unrecovered errors tolerated per channel before deconfiguration.
    error_budget: u32,
    /// Circuit-breaker state reports received from the system's
    /// overload layer (open/close transitions).
    breaker_reports: u64,
}

impl ServiceProcessor {
    /// Creates an FSP with the given per-channel error budget and the
    /// default log capacity.
    pub fn new(error_budget: u32) -> Self {
        ServiceProcessor::with_log_capacity(error_budget, DEFAULT_LOG_CAPACITY)
    }

    /// Creates an FSP with an explicit log capacity (entries beyond it
    /// evict the oldest and increment [`Self::log_dropped`]).
    ///
    /// # Panics
    ///
    /// Panics if `log_capacity` is zero.
    pub fn with_log_capacity(error_budget: u32, log_capacity: usize) -> Self {
        assert!(log_capacity > 0, "log capacity must be nonzero");
        ServiceProcessor {
            log: VecDeque::new(),
            log_capacity,
            log_dropped: 0,
            unrecovered_counts: HashMap::new(),
            deconfigured: Vec::new(),
            error_budget,
            breaker_reports: 0,
        }
    }

    fn push_entry(&mut self, entry: LogEntry) {
        if self.log.len() == self.log_capacity {
            self.log.pop_front();
            self.log_dropped += 1;
        }
        self.log.push_back(entry);
    }

    /// Logs an event; unrecovered events count against the channel's
    /// budget and may deconfigure it.
    pub fn log(&mut self, at: SimTime, channel: usize, severity: Severity, message: &str) {
        self.push_entry(LogEntry {
            at,
            channel,
            severity,
            message: message.to_string(),
        });
        if severity == Severity::Unrecovered {
            let count = self.unrecovered_counts.entry(channel).or_insert(0);
            *count += 1;
            if *count > self.error_budget && !self.deconfigured.contains(&channel) {
                self.deconfigured.push(channel);
                self.push_entry(LogEntry {
                    at,
                    channel,
                    severity: Severity::Unrecovered,
                    message: "channel deconfigured (error budget exhausted)".to_string(),
                });
            }
        }
    }

    /// Records a circuit-breaker transition reported by the overload
    /// layer. A breaker opening is evidence of persistent failure the
    /// FSP folds into its own picture of channel health: the event is
    /// logged ([`Severity::Recovered`] — the breaker *is* the recovery
    /// action, fast-failing load away from the sick channel) and
    /// counted, but does not by itself charge the unrecovered-error
    /// budget; the ladder-final errors that tripped the breaker already
    /// did.
    pub fn note_breaker(&mut self, at: SimTime, channel: usize, open: bool) {
        self.breaker_reports += 1;
        let message = if open {
            "circuit breaker opened (ladder-final error threshold)"
        } else {
            "circuit breaker closed (probe successes)"
        };
        self.log(at, channel, Severity::Recovered, message);
    }

    /// Breaker transitions reported so far.
    pub fn breaker_reports(&self) -> u64 {
        self.breaker_reports
    }

    /// Takes a channel out of service directly — the firmware's
    /// verdict on a hard fault (hang, final retrain failure) or an
    /// operator's concurrent-maintenance request, as opposed to the
    /// gradual error-budget path. Idempotent.
    pub fn deconfigure(&mut self, at: SimTime, channel: usize, reason: &str) {
        if self.deconfigured.contains(&channel) {
            return;
        }
        self.deconfigured.push(channel);
        self.push_entry(LogEntry {
            at,
            channel,
            severity: Severity::Unrecovered,
            message: format!("channel deconfigured ({reason})"),
        });
    }

    /// Checks a channel is usable.
    ///
    /// # Errors
    ///
    /// [`FspError::ChannelDeconfigured`] once the budget is blown.
    pub fn check_channel(&self, channel: usize) -> Result<(), FspError> {
        if self.is_deconfigured(channel) {
            Err(FspError::ChannelDeconfigured { channel })
        } else {
            Ok(())
        }
    }

    /// Whether a channel has been taken out of service.
    pub fn is_deconfigured(&self, channel: usize) -> bool {
        self.deconfigured.contains(&channel)
    }

    /// The retained event log, oldest first.
    pub fn entries(&self) -> impl Iterator<Item = &LogEntry> {
        self.log.iter()
    }

    /// Entries currently retained.
    pub fn log_len(&self) -> usize {
        self.log.len()
    }

    /// Entries evicted to stay within the capacity bound.
    pub fn log_dropped(&self) -> u64 {
        self.log_dropped
    }

    /// The configured log bound.
    pub fn log_capacity(&self) -> usize {
        self.log_capacity
    }

    /// Channels taken out of service, in deconfiguration order.
    pub fn deconfigured_channels(&self) -> &[usize] {
        &self.deconfigured
    }

    /// Serializes the FSP's full state: the retained log (entries are
    /// stored verbatim so restored logs render identically), drop
    /// counter, per-channel error budgets spent, deconfiguration list
    /// and breaker reports.
    pub fn snapshot_state(&self, out: &mut Vec<u8>) {
        (self.log_capacity as u64).persist(out);
        self.log_dropped.persist(out);
        self.error_budget.persist(out);
        self.breaker_reports.persist(out);
        (self.log.len() as u64).persist(out);
        for e in &self.log {
            e.at.persist(out);
            e.channel.persist(out);
            let sev: u8 = match e.severity {
                Severity::Info => 0,
                Severity::Recovered => 1,
                Severity::Unrecovered => 2,
            };
            sev.persist(out);
            e.message.persist(out);
        }
        persist_sorted_map(&self.unrecovered_counts, out);
        self.deconfigured.persist(out);
    }

    /// Overlays [`ServiceProcessor::snapshot_state`] bytes onto this
    /// FSP.
    ///
    /// # Errors
    ///
    /// Any [`RestoreError`] from a truncated or malformed payload; a
    /// log longer than its recorded capacity is rejected as malformed.
    pub fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), RestoreError> {
        let log_capacity = r.len()?;
        if log_capacity == 0 {
            return Err(RestoreError::Malformed {
                context: "fsp log capacity",
            });
        }
        let log_dropped = r.u64()?;
        let error_budget = r.u32()?;
        let breaker_reports = r.u64()?;
        let n = r.len()?;
        if n > log_capacity {
            return Err(RestoreError::Malformed {
                context: "fsp log holds more than its capacity",
            });
        }
        let mut log = VecDeque::with_capacity(n.min(4096));
        for _ in 0..n {
            let at = SimTime::restore(r)?;
            let channel = usize::restore(r)?;
            let severity = match r.u8()? {
                0 => Severity::Info,
                1 => Severity::Recovered,
                2 => Severity::Unrecovered,
                _ => {
                    return Err(RestoreError::Malformed {
                        context: "fsp severity discriminant",
                    })
                }
            };
            let message = r.string()?;
            log.push_back(LogEntry {
                at,
                channel,
                severity,
                message,
            });
        }
        let unrecovered_counts = restore_map(r)?;
        let deconfigured = Vec::restore(r)?;
        self.log = log;
        self.log_capacity = log_capacity;
        self.log_dropped = log_dropped;
        self.unrecovered_counts = unrecovered_counts;
        self.deconfigured = deconfigured;
        self.error_budget = error_budget;
        self.breaker_reports = breaker_reports;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn info_events_never_deconfigure() {
        let mut fsp = ServiceProcessor::new(2);
        for _ in 0..100 {
            fsp.log(SimTime::ZERO, 0, Severity::Info, "training retry");
        }
        assert!(fsp.check_channel(0).is_ok());
        assert_eq!(fsp.log_len(), 100);
    }

    #[test]
    fn budget_exhaustion_deconfigures() {
        let mut fsp = ServiceProcessor::new(2);
        for i in 0..3 {
            assert!(fsp.check_channel(4).is_ok(), "still alive at {i}");
            fsp.log(
                SimTime::from_us(i),
                4,
                Severity::Unrecovered,
                "frtl exceeded",
            );
        }
        assert_eq!(
            fsp.check_channel(4),
            Err(FspError::ChannelDeconfigured { channel: 4 })
        );
        assert!(fsp.is_deconfigured(4));
        assert_eq!(fsp.deconfigured_channels(), &[4]);
        // Other channels unaffected.
        assert!(fsp.check_channel(5).is_ok());
    }

    #[test]
    fn recovered_errors_are_logged_but_free() {
        let mut fsp = ServiceProcessor::new(0);
        fsp.log(SimTime::ZERO, 1, Severity::Recovered, "replay completed");
        assert!(fsp.check_channel(1).is_ok());
    }

    #[test]
    fn deconfiguration_is_logged() {
        let mut fsp = ServiceProcessor::new(0);
        fsp.log(SimTime::ZERO, 2, Severity::Unrecovered, "boom");
        let last = fsp.entries().last().unwrap();
        assert!(last.message.contains("deconfigured"));
    }

    #[test]
    fn explicit_deconfigure_is_immediate_and_idempotent() {
        let mut fsp = ServiceProcessor::new(100);
        fsp.deconfigure(SimTime::from_us(3), 6, "maintenance pull");
        assert!(fsp.is_deconfigured(6));
        assert_eq!(fsp.deconfigured_channels(), &[6]);
        let logged = fsp.log_len();
        fsp.deconfigure(SimTime::from_us(4), 6, "again");
        assert_eq!(fsp.deconfigured_channels(), &[6], "no duplicate entry");
        assert_eq!(fsp.log_len(), logged, "idempotent calls log nothing");
        let last = fsp.entries().last().unwrap();
        assert!(last.message.contains("maintenance pull"));
    }

    #[test]
    fn log_is_bounded_and_counts_drops() {
        let mut fsp = ServiceProcessor::with_log_capacity(1000, 8);
        for i in 0..20u64 {
            fsp.log(SimTime::from_us(i), 0, Severity::Info, &format!("e{i}"));
        }
        assert_eq!(fsp.log_len(), 8);
        assert_eq!(fsp.log_capacity(), 8);
        assert_eq!(fsp.log_dropped(), 12);
        // Oldest entries were the ones evicted.
        let first = fsp.entries().next().unwrap();
        assert_eq!(first.message, "e12");
    }
}
