//! # contutto-power8
//!
//! The processor side of the reproduction: everything between the
//! software issuing a load and the DMI pins.
//!
//! | module | role |
//! |---|---|
//! | [`channel`] | one DMI channel: host endpoint ↔ link ↔ buffer endpoint ↔ buffer chip, with the 32-tag command loop |
//! | [`caches`] | a compact L1/L2/L3 timing model in front of the channel |
//! | [`latency`] | the dependent-load latency probe used for Tables 2 & 3 |
//! | [`memmap`] | the memory map with the §3.4 placement rules (DRAM at 0, non-volatile at top, 4 GB minimum per DMI) |
//! | [`prefetch`] | the CPU-side stream prefetcher — why streaming workloads tolerate the FPGA's latency |
//! | [`firmware`] | IPL: presence detect, plug rules, training with retries, SPD, NVDIMM arming |
//! | [`fsp`] | the Flexible Service Processor: error logs, budgets, deconfiguration |
//! | [`inject`] | the unified fault surface: typed [`FaultAction`]s routed to the injector owning each layer |
//! | [`overload`] | overload-resilience policy: admission control, retry budgets, circuit breakers, hedging, brownout |
//! | [`system`] | a whole S824-class system: 8 DMI channels with mixed Centaur/ConTutto population |

pub mod caches;
pub mod channel;
pub mod failover;
pub mod firmware;
pub mod fsp;
pub mod inject;
pub mod latency;
pub mod memmap;
pub mod overload;
pub mod prefetch;
pub mod system;

pub use channel::{ChannelConfig, DmiChannel};
pub use failover::{FailoverMode, FailoverStats};
pub use firmware::{BootError, BootReport, Firmware, SlotPopulation};
pub use fsp::{FspError, ServiceProcessor};
pub use inject::{FaultAction, FaultOutcome};
pub use latency::{LatencyProbe, MeasurementLevel};
pub use memmap::{MemoryMap, MemoryRegion, RegionFlags, RouteError};
pub use overload::{
    AdmissionConfig, BreakerConfig, BreakerState, BrownoutConfig, CircuitBreaker, HedgeConfig,
    OverloadConfig, OverloadStats, RetryBudget, RetryBudgetConfig,
};
pub use prefetch::StreamingLoader;
pub use system::{
    DataLoss, EpowReport, Power8System, PowerConfig, PowerStats, RebootReport, SystemError,
};
