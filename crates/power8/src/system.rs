//! A whole POWER8 S824-class system.
//!
//! [`Power8System`] ties the firmware boot, the service processor, the
//! memory map and the live channels together, and routes software
//! loads/stores to the right channel by physical address.
//!
//! It also owns the channel-RAS ladder above the link (PR-2) and media
//! (PR-3) ladders: when the FSP deconfigures a channel — error budget
//! exhausted, retrain ladder's final failure, or a concurrent
//! maintenance pull — the system quiesces the dead channel, rebinds
//! its regions onto a failover target, and (in spare mode) evacuates
//! the written lines over the sideband path, poison travelling as
//! poison. Demand accesses during migration are pulled ahead of the
//! copy frontier; accesses with nowhere to go return typed errors,
//! never panics.

use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::rc::Rc;

use contutto_dmi::command::{CacheLine, CommandOp};
use contutto_dmi::training::TrainingOutcome;
use contutto_dmi::{DmiError, PowerRestoreOutcome};
use contutto_memdev::MediaKind;
use contutto_sim::snapshot::{Persist, RestoreError, SnapReader, SnapshotImage, SnapshotWriter};
use contutto_sim::{MetricsRegistry, SimTime, TraceEvent, Tracer};

use crate::channel::{CmdId, RetryPolicy};
use crate::failover::{
    FailoverMode, FailoverStats, Migration, MIGRATION_BATCH, MIGRATION_LINE_COST,
    MIGRATION_PROGRESS_STRIDE,
};
use crate::firmware::{
    BootError, BootReport, BootedChannel, ErrorAction, Firmware, SlotPopulation,
};
use crate::fsp::{FspError, ServiceProcessor, Severity};
use crate::memmap::{ChannelMemory, MemoryMap, RouteError};
use crate::overload::{BreakerState, CircuitBreaker, OverloadConfig, OverloadStats, RetryBudget};

/// Quiesce budget, in multiples of the channel's per-op timeout:
/// enough for in-flight commands to complete or time out before the
/// link is reset to reclaim whatever is left.
const QUIESCE_TIMEOUTS: u64 = 3;

/// How many times one pipelined request may be re-routed after a
/// timeout before its error is surfaced. One redirect covers the
/// common failover (primary → spare/mirror); the second covers a
/// remap that happened while the retry was in flight.
const MAX_REDIRECTS: u32 = 2;

/// Pump rounds with outstanding work but no finished request and no
/// clock progress before the no-progress watchdog gives up and fails
/// the work with [`SystemError::Stalled`] instead of livelocking.
const STALL_ROUNDS: u32 = 3;

/// Hold-up energy charged per written cache line pushed out of the
/// core caches in EPOW stage 1, in nanojoules.
pub const EPOW_CORE_FLUSH_COST_PER_LINE_NJ: u64 = 100;

/// Hold-up energy charged per channel to drain in-flight DMI tags in
/// EPOW stage 3, in nanojoules.
pub const EPOW_DRAIN_COST_PER_CHANNEL_NJ: u64 = 500;

/// Power-fail model configuration: how much stored energy backs the
/// EPOW flush cascade and the per-DIMM NVDIMM save.
///
/// `None` budgets model ideal (unbounded) energy — the default, and
/// what every test before this subsystem implicitly assumed.
#[derive(Debug, Clone, Default)]
pub struct PowerConfig {
    /// Bulk-capacitor hold-up energy available to the EPOW cascade
    /// (core flush, buffer flush, DMI drain), in nanojoules.
    pub holdup_budget_nj: Option<u64>,
    /// Per-DIMM supercap energy available to the NVDIMM-N save, in
    /// nanojoules. Applied to every NVDIMM in the system.
    pub nvdimm_supercap_nj: Option<u64>,
}

impl PowerConfig {
    /// Unbounded energy everywhere: every flush and save completes.
    pub fn ideal() -> Self {
        PowerConfig::default()
    }

    /// Finite energy on both rails.
    pub fn budgeted(holdup_nj: u64, supercap_nj: u64) -> Self {
        PowerConfig {
            holdup_budget_nj: Some(holdup_nj),
            nvdimm_supercap_nj: Some(supercap_nj),
        }
    }
}

/// Counters for the power-fail subsystem, surfaced as
/// `system.power.*` metrics.
#[derive(Debug, Clone, Default)]
pub struct PowerStats {
    /// EPOW assertions.
    pub epow_asserted: u64,
    /// Power cuts taken.
    pub cuts: u64,
    /// Reboots completed.
    pub reboots: u64,
    /// Written lines flushed out of core caches by EPOW stage 1.
    pub lines_flushed: u64,
    /// Hold-up energy spent by EPOW cascades, in nanojoules.
    pub holdup_spent_nj: u64,
    /// NVDIMM saves that ran out of supercap energy mid-save.
    pub saves_torn: u64,
    /// Media images restored intact at reboot.
    pub restores_clean: u64,
    /// Media restores that reported data loss at reboot.
    pub restores_failed: u64,
}

/// What one EPOW flush cascade accomplished before the power died.
#[derive(Debug, Clone)]
pub struct EpowReport {
    /// When the FSP asserted EPOW.
    pub asserted_at: SimTime,
    /// When the cascade finished (or gave out).
    pub done_at: SimTime,
    /// Stages fully completed (1 core caches, 2 buffer caches, 3 DMI
    /// drain, 4 NVDIMM arm confirm).
    pub stages_completed: u8,
    /// Whether all four stages ran to completion.
    pub completed: bool,
    /// Written lines flushed from core caches in stage 1.
    pub lines_flushed: u64,
    /// Hold-up energy this cascade consumed, in nanojoules.
    pub holdup_spent_nj: u64,
    /// NVDIMM slots whose supercap arming was confirmed in stage 4.
    pub armed_slots: Vec<usize>,
}

/// One slot's typed data-loss report from a reboot. Loss is always
/// reported — never silently absorbed into an all-zero region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DataLoss {
    /// The slot whose contents did not survive.
    pub slot: usize,
    /// How the restore failed (torn save, corrupt image, lost).
    pub outcome: PowerRestoreOutcome,
}

/// The result of a cold reboot after a power cut.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RebootReport {
    /// When power returned.
    pub at: SimTime,
    /// When every surviving channel was trained and serving again.
    pub ready_at: SimTime,
    /// Slots whose media contents restored intact.
    pub restored_slots: Vec<usize>,
    /// Slots that lost data, with the typed outcome.
    pub data_loss: Vec<DataLoss>,
    /// Slots whose link failed to retrain (deconfigured).
    pub retrain_failures: Vec<usize>,
}

/// Any error a software-visible access can surface: routing, FSP
/// deconfiguration, or the channel ladder underneath.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SystemError {
    /// The address hits no OS-visible region.
    Route(RouteError),
    /// The FSP has taken the owning channel out of service.
    Fsp(FspError),
    /// The channel itself failed (timeout, poison, tag exhaustion).
    Dmi(DmiError),
    /// The system is powered off; no software access can proceed.
    PoweredOff,
    /// The request's deadline expired before it was served; the work
    /// was shed (at submit, in queue, or at completion translation),
    /// never retried past the deadline.
    DeadlineExceeded,
    /// Admission control (bounded queue, deadline-aware queue-delay
    /// estimate, or an open circuit breaker) rejected the request
    /// before it was enqueued.
    Shed {
        /// The channel whose admission gate refused the request.
        slot: usize,
    },
    /// The no-progress watchdog fired: pump rounds stopped advancing
    /// the clock or finishing work while requests were outstanding.
    Stalled,
    /// The request id was never submitted, or its result was already
    /// collected.
    UnknownRequest,
}

impl std::fmt::Display for SystemError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SystemError::Route(e) => write!(f, "route: {e}"),
            SystemError::Fsp(e) => write!(f, "fsp: {e}"),
            SystemError::Dmi(e) => write!(f, "dmi: {e}"),
            SystemError::PoweredOff => write!(f, "system is powered off"),
            SystemError::DeadlineExceeded => write!(f, "deadline exceeded; request shed"),
            SystemError::Shed { slot } => {
                write!(f, "admission control shed the request for channel {slot}")
            }
            SystemError::Stalled => write!(f, "pump made no progress; request stalled"),
            SystemError::UnknownRequest => {
                write!(f, "request was never submitted or already collected")
            }
        }
    }
}

impl std::error::Error for SystemError {}

impl From<RouteError> for SystemError {
    fn from(e: RouteError) -> Self {
        SystemError::Route(e)
    }
}

impl From<FspError> for SystemError {
    fn from(e: FspError) -> Self {
        SystemError::Fsp(e)
    }
}

impl From<DmiError> for SystemError {
    fn from(e: DmiError) -> Self {
        SystemError::Dmi(e)
    }
}

/// Identifier of a pipelined memory request submitted with
/// [`Power8System::submit_load`] / [`Power8System::submit_store`].
/// Monotonic per system; never reused, even across failover redirects.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ReqId(u64);

impl ReqId {
    /// The raw monotonic counter value.
    pub fn raw(&self) -> u64 {
        self.0
    }
}

/// A finished pipelined memory request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemCompletion {
    /// The physical address the request targeted.
    pub phys: u64,
    /// Read data, for loads.
    pub data: Option<CacheLine>,
    /// When the owning channel delivered the completion.
    pub completed_at: SimTime,
}

/// A pipelined request in flight: where it currently routes, and how
/// many failover redirects it has already ridden.
#[derive(Debug, Clone)]
struct OutstandingReq {
    phys: u64,
    slot: usize,
    line_addr: u64,
    /// `Some` for stores (the data to land, mirrored on completion);
    /// `None` for loads.
    data: Option<CacheLine>,
    redirects: u32,
    /// Absolute deadline propagated from the submitter, if any.
    deadline: Option<SimTime>,
    /// Channel clock when the request was admitted (hedge aging).
    submitted_at: SimTime,
    /// Whether a hedge arm has been issued for this read.
    hedged: bool,
}

/// Counters for the pipelined submit/poll path, surfaced as
/// `system.mlp.*` metrics.
#[derive(Debug, Clone, Default)]
struct MlpStats {
    submitted: u64,
    completed: u64,
    redirects: u64,
    peak_outstanding: u64,
}

/// Observer metadata for the checkpoint subsystem, surfaced as
/// `system.snapshot.*` metrics.
///
/// Deliberately **not** persisted in the image: a restored system
/// starts its own count, so the restore-and-continue leg of a
/// determinism check differs from the straight run only in this
/// namespace — which the identity contract filters out.
#[derive(Debug, Clone, Default)]
struct SnapshotStats {
    /// Snapshots taken from this system.
    taken: u64,
    /// Total image bytes produced.
    bytes: u64,
    /// Successful restores into this system.
    restores: u64,
    /// Restores that failed validation (the target is then unspecified
    /// and must be discarded).
    restore_failures: u64,
}

/// A booted system.
pub struct Power8System {
    channels: Vec<BootedChannel>,
    memory_map: MemoryMap,
    fsp: ServiceProcessor,
    mode: FailoverMode,
    migration: Option<Migration>,
    /// Channel-local line addresses ever written per slot — the set a
    /// spare must receive for the system to have lost nothing.
    written: BTreeMap<usize, BTreeSet<u64>>,
    /// Lines that arrived on a slot already poisoned (migrated from a
    /// dying channel). Consuming one raises a machine check but is not
    /// fresh evidence against the hosting channel's hardware, so it
    /// must not charge that channel's error budget.
    inherited_poison: BTreeMap<usize, BTreeSet<u64>>,
    stats: FailoverStats,
    tracer: Tracer,
    power: PowerConfig,
    powered: bool,
    power_stats: PowerStats,
    /// NVDIMM slots whose supercap save is armed — the FSP's record,
    /// queried by EPOW stage 4 without touching the devices.
    nvdimm_armed: BTreeSet<usize>,
    next_req: u64,
    /// Pipelined requests in flight, keyed by request id.
    outstanding: BTreeMap<u64, OutstandingReq>,
    /// Maps a channel-level command back to its request:
    /// (slot, channel CmdId) → request id. Rebuilt per redirect.
    route_back: BTreeMap<(usize, CmdId), u64>,
    /// Finished pipelined requests awaiting [`Power8System::poll`].
    finished_sys: VecDeque<(ReqId, Result<MemCompletion, SystemError>)>,
    mlp_stats: MlpStats,
    /// The overload policy ([`OverloadConfig::off`] by default: the
    /// legacy service path, byte-identical to pre-overload runs).
    overload: OverloadConfig,
    /// The shared retry budget (ladder + client retries), when
    /// configured. Shared with every channel via `Rc`.
    retry_budget: Option<Rc<RefCell<RetryBudget>>>,
    /// Per-channel circuit breakers, when configured.
    breakers: BTreeMap<usize, CircuitBreaker>,
    /// Hedged reads in flight: request id → arms still outstanding.
    hedge_arms: BTreeMap<u64, u32>,
    ov_stats: OverloadStats,
    /// Whether brownout is currently engaged.
    brownout: bool,
    /// Scrub intervals saved while brownout stretches them.
    brownout_saved_scrub: BTreeMap<usize, SimTime>,
    /// Checkpoint observer counters (`system.snapshot.*`).
    snap_stats: SnapshotStats,
}

impl std::fmt::Debug for Power8System {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Power8System")
            .field("channels", &self.channels.len())
            .field("mode", &self.mode)
            .finish_non_exhaustive()
    }
}

impl Power8System {
    /// Boots a system from a slot layout with no failover redundancy.
    ///
    /// # Errors
    ///
    /// Propagates [`BootError`] from the firmware.
    pub fn boot(slots: Vec<SlotPopulation>, seed: u64) -> Result<Self, BootError> {
        Self::boot_with_failover(slots, seed, FailoverMode::None)
    }

    /// Boots with a failover policy: spare slots are trained but held
    /// out of the memory map; mirrored pairs shadow every store.
    ///
    /// # Errors
    ///
    /// Everything [`Self::boot`] returns, plus
    /// [`BootError::InvalidPlug`] if the failover target failed
    /// training or a mirror primary is not in the map.
    pub fn boot_with_failover(
        slots: Vec<SlotPopulation>,
        seed: u64,
        mode: FailoverMode,
    ) -> Result<Self, BootError> {
        let reserves: Vec<usize> = match mode {
            FailoverMode::None => Vec::new(),
            FailoverMode::Spare { spare } => vec![spare],
            FailoverMode::Mirrored { mirror, .. } => vec![mirror],
        };
        let mut fsp = ServiceProcessor::new(3);
        let report = Firmware::new().boot_with_reserves(slots, &mut fsp, seed, &reserves)?;
        let BootReport {
            channels,
            memory_map,
            nvdimms_armed,
            ..
        } = report;
        let mut sys = Power8System {
            channels,
            memory_map,
            fsp,
            mode,
            migration: None,
            written: BTreeMap::new(),
            inherited_poison: BTreeMap::new(),
            stats: FailoverStats::default(),
            tracer: Tracer::off(),
            power: PowerConfig::ideal(),
            powered: true,
            power_stats: PowerStats::default(),
            nvdimm_armed: BTreeSet::new(),
            next_req: 0,
            outstanding: BTreeMap::new(),
            route_back: BTreeMap::new(),
            finished_sys: VecDeque::new(),
            mlp_stats: MlpStats::default(),
            overload: OverloadConfig::off(),
            retry_budget: None,
            breakers: BTreeMap::new(),
            hedge_arms: BTreeMap::new(),
            ov_stats: OverloadStats::default(),
            brownout: false,
            brownout_saved_scrub: BTreeMap::new(),
            snap_stats: SnapshotStats::default(),
        };
        // The boot report's arming list is a promise; keep it by
        // actually arming the supercap save on each NVDIMM buffer.
        for slot in nvdimms_armed {
            let armed = sys
                .channel_mut(slot)
                .is_some_and(|c| c.channel.buffer_mut().set_save_armed(true));
            if armed {
                sys.nvdimm_armed.insert(slot);
            }
        }
        match mode {
            FailoverMode::None => {}
            FailoverMode::Spare { spare } => {
                if sys.channel_index(spare).is_none() {
                    return Err(BootError::InvalidPlug {
                        slot: spare,
                        reason: "failover spare failed training",
                    });
                }
            }
            FailoverMode::Mirrored { primary, mirror } => {
                if sys.channel_index(mirror).is_none() {
                    return Err(BootError::InvalidPlug {
                        slot: mirror,
                        reason: "mirror failed training",
                    });
                }
                if !sys.memory_map.channel_is_mapped(primary) {
                    return Err(BootError::InvalidPlug {
                        slot: primary,
                        reason: "mirror primary is not in the memory map",
                    });
                }
            }
        }
        Ok(sys)
    }

    /// The memory map.
    pub fn memory_map(&self) -> &MemoryMap {
        &self.memory_map
    }

    /// The service processor (logs, deconfig state).
    pub fn fsp(&self) -> &ServiceProcessor {
        &self.fsp
    }

    /// Mutable FSP access (injecting maintenance events, budgets).
    pub fn fsp_mut(&mut self) -> &mut ServiceProcessor {
        &mut self.fsp
    }

    /// The failover policy this system booted with.
    pub fn failover_mode(&self) -> FailoverMode {
        self.mode
    }

    /// Failover/migration counters.
    pub fn failover_stats(&self) -> &FailoverStats {
        &self.stats
    }

    /// Live channels.
    pub fn channels(&self) -> &[BootedChannel] {
        &self.channels
    }

    /// Mutable access to a channel by slot.
    pub fn channel_mut(&mut self, slot: usize) -> Option<&mut BootedChannel> {
        self.channels.iter_mut().find(|c| c.slot == slot)
    }

    fn channel_index(&self, slot: usize) -> Option<usize> {
        self.channels.iter().position(|c| c.slot == slot)
    }

    /// Shares one trace ring across every channel and the system's own
    /// failover events, so one fingerprint covers the whole machine.
    pub fn enable_tracing(&mut self, capacity: usize) -> Tracer {
        let tracer = Tracer::ring(capacity);
        for c in &mut self.channels {
            c.channel.attach_tracer(tracer.clone());
        }
        self.tracer = tracer.clone();
        tracer
    }

    /// The system's trace handle (disabled until
    /// [`Power8System::enable_tracing`] or a restore of a traced
    /// snapshot).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Applies one retry policy to every channel.
    pub fn set_retry_policy(&mut self, policy: RetryPolicy) {
        for c in &mut self.channels {
            c.channel.set_retry_policy(policy.clone());
        }
    }

    /// Installs the overload policy: a shared retry budget is built
    /// and distributed to every channel's ladder, per-channel circuit
    /// breakers are armed, and admission/hedging/brownout take effect
    /// on subsequent submissions. [`OverloadConfig::off`] restores the
    /// legacy (ungoverned) service path.
    pub fn set_overload_config(&mut self, cfg: OverloadConfig) {
        self.exit_brownout();
        self.breakers.clear();
        let budget = cfg
            .retry_budget
            .map(|b| Rc::new(RefCell::new(RetryBudget::new(b))));
        for c in &mut self.channels {
            c.channel.set_retry_budget(budget.clone());
        }
        self.retry_budget = budget;
        if let Some(bcfg) = cfg.breaker {
            let slots: Vec<usize> = self.channels.iter().map(|c| c.slot).collect();
            for slot in slots {
                self.breakers.insert(slot, CircuitBreaker::new(bcfg));
            }
        }
        self.overload = cfg;
    }

    /// The active overload policy.
    pub fn overload_config(&self) -> &OverloadConfig {
        &self.overload
    }

    /// System-level overload counters (`system.overload.*`).
    pub fn overload_stats(&self) -> &OverloadStats {
        &self.ov_stats
    }

    /// A client-level retry decision against the shared budget: spends
    /// one token when a budget is configured (always allowed when
    /// not). The traffic layer asks here before re-submitting, so
    /// client retries and the channel ladder drain one bucket.
    pub fn client_retry_allowed(&mut self) -> bool {
        match &self.retry_budget {
            None => true,
            Some(b) => b.borrow_mut().try_spend(),
        }
    }

    /// The circuit breaker state for a slot, when breakers are armed.
    pub fn breaker_state(&self, slot: usize) -> Option<BreakerState> {
        self.breakers.get(&slot).map(CircuitBreaker::state)
    }

    /// Whether brownout is currently engaged.
    pub fn brownout_active(&self) -> bool {
        self.brownout
    }

    /// Installs a power-fail energy model; a finite NVDIMM supercap
    /// budget is pushed down to every DIMM.
    pub fn configure_power(&mut self, cfg: PowerConfig) {
        if let Some(nj) = cfg.nvdimm_supercap_nj {
            for c in &mut self.channels {
                c.channel.buffer_mut().set_supercap_budget_nj(nj);
            }
        }
        self.power = cfg;
    }

    /// Arms or disarms the supercap save on every NVDIMM, updating the
    /// FSP's arming record. Returns the slots that hold an NVDIMM.
    pub fn set_nvdimm_armed(&mut self, armed: bool) -> Vec<usize> {
        let mut slots = Vec::new();
        for c in &mut self.channels {
            if c.channel.buffer_mut().set_save_armed(armed) {
                slots.push(c.slot);
                if armed {
                    self.nvdimm_armed.insert(c.slot);
                } else {
                    self.nvdimm_armed.remove(&c.slot);
                }
            }
        }
        slots
    }

    /// Whether mains power is up (software accesses are allowed).
    pub fn powered(&self) -> bool {
        self.powered
    }

    /// Power-fail counters.
    pub fn power_stats(&self) -> &PowerStats {
        &self.power_stats
    }

    /// Early-power-off warning: the FSP has detected the supply
    /// failing and runs the ordered flush cascade on stored hold-up
    /// energy — (1) core caches, (2) buffer-side caches (the MBS
    /// flush extension, paper §4.2), (3) in-flight DMI tags, (4)
    /// NVDIMM save-arm confirmation. Each stage charges the hold-up
    /// budget; running dry stops the cascade where it stands and the
    /// later stages simply never happen — exactly what an undersized
    /// bulk capacitor does.
    pub fn epow(&mut self) -> EpowReport {
        let asserted_at = self
            .channels
            .iter()
            .map(|c| c.channel.now())
            .max()
            .unwrap_or(SimTime::ZERO);
        self.tracer.record(TraceEvent::EpowAsserted);
        self.fsp.log(
            asserted_at,
            0,
            Severity::Info,
            "epow asserted; flush cascade started",
        );
        self.power_stats.epow_asserted += 1;

        let start = self.power.holdup_budget_nj.unwrap_or(u64::MAX);
        let mut energy = start;
        let mut stages_completed = 0u8;
        let lines_flushed: u64;
        let mut armed_slots = Vec::new();
        let mut exhausted_at = None;

        'cascade: {
            // Stage 1: push every written line out of the core caches.
            let before = energy;
            let total: u64 = self.written.values().map(|s| s.len() as u64).sum();
            let affordable = (energy / EPOW_CORE_FLUSH_COST_PER_LINE_NJ).min(total);
            energy = energy.saturating_sub(affordable * EPOW_CORE_FLUSH_COST_PER_LINE_NJ);
            lines_flushed = affordable;
            self.tracer.record(TraceEvent::EpowFlushStage {
                stage: 1,
                charged_nj: before - energy,
            });
            if affordable < total {
                exhausted_at = Some(1);
                break 'cascade;
            }
            stages_completed = 1;

            // Stage 2: buffer-side caches (MBS flush extension).
            let before = energy;
            for c in &mut self.channels {
                c.channel.epow_flush_buffer(&mut energy);
                if energy == 0 {
                    break;
                }
            }
            self.tracer.record(TraceEvent::EpowFlushStage {
                stage: 2,
                charged_nj: before - energy,
            });
            if energy == 0 {
                exhausted_at = Some(2);
                break 'cascade;
            }
            stages_completed = 2;

            // Stage 3: drain in-flight DMI tags.
            let before = energy;
            for c in &mut self.channels {
                if energy < EPOW_DRAIN_COST_PER_CHANNEL_NJ {
                    exhausted_at = Some(3);
                    break;
                }
                energy -= EPOW_DRAIN_COST_PER_CHANNEL_NJ;
                let budget = c.channel.retry_policy().op_timeout * QUIESCE_TIMEOUTS;
                let _ = c.channel.quiesce(budget);
            }
            self.tracer.record(TraceEvent::EpowFlushStage {
                stage: 3,
                charged_nj: before - energy,
            });
            if exhausted_at.is_some() {
                break 'cascade;
            }

            // Stage 4: confirm the NVDIMM saves are armed (free — a
            // register read over the sideband).
            armed_slots = self.nvdimm_armed.iter().copied().collect();
            for c in &self.channels {
                if c.kind == MediaKind::NvdimmN && !self.nvdimm_armed.contains(&c.slot) {
                    self.fsp.log(
                        asserted_at,
                        c.slot,
                        Severity::Unrecovered,
                        "epow: nvdimm save not armed; contents will not survive",
                    );
                }
            }
            self.tracer.record(TraceEvent::EpowFlushStage {
                stage: 4,
                charged_nj: 0,
            });
            stages_completed = 4;
        }

        if let Some(stage) = exhausted_at {
            self.tracer
                .record(TraceEvent::EpowHoldupExhausted { stage });
            // A system-level energy event, not evidence against any
            // channel's hardware: it must not charge an error budget.
            self.fsp.log(
                asserted_at,
                0,
                Severity::Info,
                &format!("epow hold-up energy exhausted in stage {stage}"),
            );
        }
        let spent = start - energy;
        self.power_stats.lines_flushed += lines_flushed;
        self.power_stats.holdup_spent_nj += spent;
        let done_at = self
            .channels
            .iter()
            .map(|c| c.channel.now())
            .max()
            .unwrap_or(asserted_at);
        EpowReport {
            asserted_at,
            done_at: done_at.max(asserted_at),
            stages_completed,
            completed: exhausted_at.is_none(),
            lines_flushed,
            holdup_spent_nj: spent,
            armed_slots,
        }
    }

    /// Mains power dies at `at`. Every piece of volatile state — DRAM
    /// contents, caches, replay buffers, in-flight tags, the host's
    /// own record of what it wrote — is discarded; armed NVDIMMs run
    /// their supercap save. Returns when the last save finished (the
    /// machine is dark from `at`; the save runs on stored energy).
    pub fn power_cut(&mut self, at: SimTime) -> SimTime {
        self.tracer.record(TraceEvent::PowerCut);
        self.fsp.log(at, 0, Severity::Info, "power cut");
        self.power_stats.cuts += 1;
        let mut quiet = at;
        for c in &mut self.channels {
            quiet = quiet.max(c.channel.power_cut(at));
        }
        self.written.clear();
        self.inherited_poison.clear();
        self.migration = None;
        // Pipelined requests in flight die with the rail: their ids
        // stay monotonic, but no completion will ever be delivered.
        self.outstanding.clear();
        self.route_back.clear();
        self.finished_sys.clear();
        self.hedge_arms.clear();
        // Brownout dies with the rail too — the stretched scrub
        // intervals it saved are gone along with the scrub engines.
        self.brownout = false;
        self.brownout_saved_scrub.clear();
        self.powered = false;
        quiet
    }

    /// Cold boot after a power cut: restore media images (typed —
    /// a torn or corrupt save raises a machine-check log and lands in
    /// the report's `data_loss`, never a silent zero-fill), retrain
    /// every link through the surviving firmware training state, and
    /// rebuild the memory map from the channels that came back.
    ///
    /// # Errors
    ///
    /// [`BootError::Map`] / [`BootError::NoUsableMemory`] if too few
    /// channels retrained to rebuild a bootable map.
    pub fn reboot(&mut self, at: SimTime) -> Result<RebootReport, BootError> {
        self.tracer.record(TraceEvent::PowerRestored);
        self.fsp
            .log(at, 0, Severity::Info, "power restored; rebooting");
        let mut ready_at = at;
        let mut restored_slots = Vec::new();
        let mut data_loss = Vec::new();
        for c in &mut self.channels {
            let (ready, outcome) = c.channel.power_restore_media(at);
            ready_at = ready_at.max(ready);
            match outcome {
                PowerRestoreOutcome::Volatile => {}
                PowerRestoreOutcome::Restored => {
                    self.power_stats.restores_clean += 1;
                    restored_slots.push(c.slot);
                    if c.kind == MediaKind::NvdimmN {
                        self.tracer
                            .record(TraceEvent::NvdimmRestored { slot: c.slot });
                        self.fsp
                            .log(ready, c.slot, Severity::Info, "nvdimm image restored");
                    }
                }
                loss => {
                    self.power_stats.restores_failed += 1;
                    if loss == PowerRestoreOutcome::TornSave {
                        self.power_stats.saves_torn += 1;
                    }
                    self.tracer
                        .record(TraceEvent::NvdimmRestoreFailed { slot: c.slot });
                    self.fsp.log(
                        ready,
                        c.slot,
                        Severity::Unrecovered,
                        &format!("machine check: media restore failed ({loss}); contents lost"),
                    );
                    data_loss.push(DataLoss {
                        slot: c.slot,
                        outcome: loss,
                    });
                }
            }
        }

        // Retrain every link. The trainer config and seed survive in
        // firmware NVRAM, so the same system retrains identically.
        let mut retrain_failures = Vec::new();
        for c in &mut self.channels {
            match c.channel.retrain() {
                Ok(_) => ready_at = ready_at.max(c.channel.now()),
                Err(e) => {
                    self.fsp.log(
                        at,
                        c.slot,
                        Severity::Unrecovered,
                        &format!("reboot retrain failed: {e}"),
                    );
                    self.fsp.deconfigure(at, c.slot, "reboot retrain failed");
                    retrain_failures.push(c.slot);
                }
            }
        }

        // Rebuild the memory map from the channels that were mapped
        // before the cut and came back up.
        let memories: Vec<ChannelMemory> = self
            .channels
            .iter()
            .filter(|c| {
                self.memory_map.channel_is_mapped(c.slot) && !self.fsp.is_deconfigured(c.slot)
            })
            .map(|c| ChannelMemory {
                channel: c.slot,
                kind: c.kind,
                capacity: c.capacity,
            })
            .collect();
        if memories.is_empty() {
            return Err(BootError::NoUsableMemory);
        }
        self.memory_map = MemoryMap::build(&memories, 1 << 42).map_err(BootError::Map)?;
        self.powered = true;
        self.power_stats.reboots += 1;
        Ok(RebootReport {
            at,
            ready_at,
            restored_slots,
            data_loss,
            retrain_failures,
        })
    }

    /// Aggregated system metrics: every channel's registry merged
    /// (counters accumulate across channels) plus `system.failover.*`
    /// and `system.fsp.*`.
    pub fn metrics(&self) -> MetricsRegistry {
        let mut reg = MetricsRegistry::new();
        for c in &self.channels {
            reg.merge(&c.channel.metrics());
        }
        reg.set_counter("system.failover.failovers", self.stats.failovers);
        reg.set_counter("system.failover.lines_migrated", self.stats.lines_migrated);
        reg.set_counter(
            "system.failover.poison_migrated",
            self.stats.poison_migrated,
        );
        reg.set_counter(
            "system.failover.demand_migrations",
            self.stats.demand_migrations,
        );
        reg.set_counter(
            "system.failover.mirror_read_fallbacks",
            self.stats.mirror_read_fallbacks,
        );
        reg.set_counter(
            "system.failover.lines_unreadable",
            self.stats.lines_unreadable,
        );
        reg.set_counter(
            "system.failover.migration_backlog",
            self.migration_backlog(),
        );
        reg.set_counter("system.mlp.submitted", self.mlp_stats.submitted);
        reg.set_counter("system.mlp.completed", self.mlp_stats.completed);
        reg.set_counter("system.mlp.redirects", self.mlp_stats.redirects);
        reg.set_counter(
            "system.mlp.peak_outstanding",
            self.mlp_stats.peak_outstanding,
        );
        reg.set_counter("system.mlp.outstanding", self.outstanding.len() as u64);
        reg.set_counter(
            "system.fsp.deconfigured_channels",
            self.fsp.deconfigured_channels().len() as u64,
        );
        reg.set_counter("system.fsp.log_entries", self.fsp.log_len() as u64);
        reg.set_counter("system.fsp.log_dropped", self.fsp.log_dropped());
        reg.set_counter("system.power.epow_asserted", self.power_stats.epow_asserted);
        reg.set_counter("system.power.cuts", self.power_stats.cuts);
        reg.set_counter("system.power.reboots", self.power_stats.reboots);
        reg.set_counter("system.power.lines_flushed", self.power_stats.lines_flushed);
        reg.set_counter(
            "system.power.holdup_spent_nj",
            self.power_stats.holdup_spent_nj,
        );
        reg.set_counter("system.power.saves_torn", self.power_stats.saves_torn);
        reg.set_counter(
            "system.power.restores_clean",
            self.power_stats.restores_clean,
        );
        reg.set_counter(
            "system.power.restores_failed",
            self.power_stats.restores_failed,
        );
        let o = &self.ov_stats;
        reg.set_counter("system.overload.shed_admission", o.shed_admission);
        reg.set_counter("system.overload.shed_deadline", o.shed_deadline);
        reg.set_counter("system.overload.shed_breaker", o.shed_breaker);
        reg.set_counter("system.overload.expired_at_submit", o.expired_at_submit);
        reg.set_counter("system.overload.deadline_expired", o.deadline_expired);
        reg.set_counter("system.overload.hedges_issued", o.hedges_issued);
        reg.set_counter("system.overload.hedges_won", o.hedges_won);
        reg.set_counter("system.overload.hedges_cancelled", o.hedges_cancelled);
        reg.set_counter("system.overload.brownout_entries", o.brownout_entries);
        reg.set_counter("system.overload.brownout_active", u64::from(self.brownout));
        reg.set_counter("system.overload.stalls", o.stalls);
        reg.set_counter(
            "system.overload.breaker_opens",
            self.breakers
                .values()
                .map(|b| u64::from(b.times_opened()))
                .sum(),
        );
        reg.set_counter(
            "system.overload.breakers_open",
            self.breakers
                .values()
                .filter(|b| b.state() != BreakerState::Closed)
                .count() as u64,
        );
        if let Some(b) = &self.retry_budget {
            let b = b.borrow();
            reg.set_counter("system.overload.retry_tokens", b.tokens());
            reg.set_counter("system.overload.retries_spent", b.spent());
            reg.set_counter("system.overload.retries_denied", b.denied());
        }
        reg.set_counter("system.fsp.breaker_reports", self.fsp.breaker_reports());
        reg.set_counter("system.snapshot.taken", self.snap_stats.taken);
        reg.set_counter("system.snapshot.bytes", self.snap_stats.bytes);
        reg.set_counter("system.snapshot.restores", self.snap_stats.restores);
        reg.set_counter(
            "system.snapshot.restore_failures",
            self.snap_stats.restore_failures,
        );
        reg
    }

    /// The slot serving a physical address, with the channel-local
    /// line address.
    pub fn route(&self, phys: u64) -> Option<(usize, u64)> {
        let (region_idx, offset) = self.memory_map.resolve(phys)?;
        let region = &self.memory_map.regions()[region_idx];
        Some((region.channel, offset))
    }

    /// Submits a pipelined load: routes `phys` through the memory map,
    /// enqueues a tracked read on the owning channel, and returns a
    /// [`ReqId`] immediately. Drive the system with
    /// [`Power8System::poll`] and collect the result there (or block
    /// on it with [`Power8System::wait_req`]). Up to the per-channel
    /// in-flight window ([`Power8System::set_mlp_window`]) of requests
    /// overlap on each channel.
    ///
    /// # Errors
    ///
    /// Immediate routing failures only: [`SystemError::PoweredOff`],
    /// [`SystemError::Route`] for unmapped addresses, and
    /// [`SystemError::Fsp`] when the owning channel is already
    /// deconfigured. Channel faults surface later, per completion.
    pub fn submit_load(&mut self, phys: u64) -> Result<ReqId, SystemError> {
        self.submit_req(phys, None, None)
    }

    /// [`Power8System::submit_load`] with a propagated absolute
    /// deadline: the request is shed with
    /// [`SystemError::DeadlineExceeded`] if already expired, shed with
    /// [`SystemError::Shed`] if admission control predicts the queue
    /// delay would blow it, and — once queued — dropped before issue
    /// (and never re-queued by the retry ladder) past the deadline. An
    /// answer that arrives after the deadline is delivered as the
    /// typed error, not as a late success.
    ///
    /// # Errors
    ///
    /// As [`Power8System::submit_load`], plus
    /// [`SystemError::DeadlineExceeded`] and [`SystemError::Shed`].
    pub fn submit_load_deadline(
        &mut self,
        phys: u64,
        deadline: Option<SimTime>,
    ) -> Result<ReqId, SystemError> {
        self.submit_req(phys, None, deadline)
    }

    /// Submits a pipelined store; otherwise as
    /// [`Power8System::submit_load`]. The host's written-line
    /// bookkeeping and the mirror fan-out happen when the completion
    /// is collected, preserving the blocking path's semantics.
    ///
    /// # Errors
    ///
    /// As for [`Power8System::submit_load`].
    pub fn submit_store(&mut self, phys: u64, data: CacheLine) -> Result<ReqId, SystemError> {
        self.submit_req(phys, Some(data), None)
    }

    /// [`Power8System::submit_store`] with a propagated deadline; see
    /// [`Power8System::submit_load_deadline`] for the shed semantics.
    ///
    /// # Errors
    ///
    /// As [`Power8System::submit_load_deadline`].
    pub fn submit_store_deadline(
        &mut self,
        phys: u64,
        data: CacheLine,
        deadline: Option<SimTime>,
    ) -> Result<ReqId, SystemError> {
        self.submit_req(phys, Some(data), deadline)
    }

    fn submit_req(
        &mut self,
        phys: u64,
        data: Option<CacheLine>,
        deadline: Option<SimTime>,
    ) -> Result<ReqId, SystemError> {
        if !self.powered {
            return Err(SystemError::PoweredOff);
        }
        self.update_brownout();
        // Each submission advances the background evacuation a batch,
        // so migration pacing stays proportional to demand traffic.
        self.pump_migration();
        let (slot, local) = self
            .route(phys)
            .ok_or(SystemError::Route(RouteError::Unmapped { phys }))?;
        self.fsp.check_channel(slot)?;
        let ch_now = self.now_of(slot);
        // Circuit breaker: fast-fail work aimed at a channel whose
        // ladder keeps losing, except for the half-open probe trickle.
        if let Some(br) = self.breakers.get_mut(&slot) {
            if !br.admit(ch_now) {
                self.ov_stats.shed_breaker += 1;
                return Err(SystemError::Shed { slot });
            }
        }
        // A dead-on-arrival deadline sheds before any queue state is
        // touched.
        if deadline.is_some_and(|d| ch_now >= d) {
            self.ov_stats.expired_at_submit += 1;
            return Err(SystemError::DeadlineExceeded);
        }
        // Admission control: a bounded queue, and — deadline known —
        // an estimate of whether queue delay alone would blow it.
        if let Some(adm) = self.overload.admission {
            let queued = self
                .channels
                .iter()
                .find(|c| c.slot == slot)
                .map_or(0, |c| c.channel.queued_commands());
            if queued >= adm.queue_limit {
                self.ov_stats.shed_admission += 1;
                return Err(SystemError::Shed { slot });
            }
            if let Some(d) = deadline {
                if ch_now + adm.service_estimate * (queued as u64 + 1) > d {
                    self.ov_stats.shed_deadline += 1;
                    return Err(SystemError::Shed { slot });
                }
            }
        }
        let line_addr = local & !127;
        match data {
            // A demand read during evacuation is pulled ahead of the
            // copy frontier so the spare serves current data.
            None => self.demand_pull(slot, line_addr),
            // A demand write supersedes any stale copy still queued
            // for this line — the migrator must not overwrite newer
            // data.
            Some(_) => {
                if let Some(mig) = self.migration.as_mut() {
                    if mig.to == slot && mig.pending.remove(&line_addr) {
                        mig.migrated += 1;
                    }
                }
            }
        }
        let op = match data {
            None => CommandOp::Read { addr: line_addr },
            Some(d) => CommandOp::Write {
                addr: line_addr,
                data: d,
            },
        };
        let cmd =
            {
                let ch = self.channel_mut(slot).ok_or(SystemError::Fsp(
                    FspError::ChannelDeconfigured { channel: slot },
                ))?;
                ch.channel.enqueue_command_deadline(op, deadline)
            };
        let id = self.next_req;
        self.next_req += 1;
        self.outstanding.insert(
            id,
            OutstandingReq {
                phys,
                slot,
                line_addr,
                data,
                redirects: 0,
                deadline,
                submitted_at: ch_now,
                hedged: false,
            },
        );
        self.route_back.insert((slot, cmd), id);
        self.mlp_stats.submitted += 1;
        let depth = self.outstanding.len() as u64;
        if depth > self.mlp_stats.peak_outstanding {
            self.mlp_stats.peak_outstanding = depth;
        }
        Ok(ReqId(id))
    }

    /// One batched pump round: advances the background migration, steps
    /// every channel that has tracked work by one frame slot (in slot
    /// order, deterministically), and returns every pipelined request
    /// that finished — in finish order, failover/poison/power semantics
    /// already applied per completion. Call in a loop to drive the
    /// system; an empty return just means nothing finished this round.
    pub fn poll(&mut self) -> Vec<(ReqId, Result<MemCompletion, SystemError>)> {
        if self.powered {
            self.pump_migration();
            self.pump_hedges();
            self.pump_channels();
        }
        self.finished_sys.drain(..).collect()
    }

    /// Runs [`Power8System::poll`] rounds until no pipelined request
    /// is outstanding, returning everything that finished. Stops early
    /// if the system powers off mid-drain, and — if `STALL_ROUNDS`
    /// consecutive rounds finish nothing and advance
    /// no clock — fails the remaining requests with
    /// [`SystemError::Stalled`] rather than livelocking on a wedged
    /// channel.
    pub fn drain(&mut self) -> Vec<(ReqId, Result<MemCompletion, SystemError>)> {
        let mut out = Vec::new();
        let mut stalled_rounds = 0u32;
        loop {
            let before = self.clock_sum();
            let finished = self.poll();
            let progressed = !finished.is_empty() || self.clock_sum() > before;
            out.extend(finished);
            if self.outstanding.is_empty() || !self.powered {
                break;
            }
            if progressed {
                stalled_rounds = 0;
            } else {
                stalled_rounds += 1;
                if stalled_rounds >= STALL_ROUNDS {
                    out.extend(self.fail_stalled());
                    break;
                }
            }
        }
        out
    }

    /// The no-progress watchdog's verdict: every outstanding request
    /// is failed with [`SystemError::Stalled`], its route-back entries
    /// and hedge state dropped, so a wedged channel can never livelock
    /// the pump. Typed and loud — never a hang.
    fn fail_stalled(&mut self) -> Vec<(ReqId, Result<MemCompletion, SystemError>)> {
        self.ov_stats.stalls += 1;
        let ids: Vec<u64> = self.outstanding.keys().copied().collect();
        let mut out = Vec::with_capacity(ids.len());
        for id in ids {
            self.route_back.retain(|_, v| *v != id);
            self.hedge_arms.remove(&id);
            self.outstanding.remove(&id);
            self.mlp_stats.completed += 1;
            out.push((ReqId(id), Err(SystemError::Stalled)));
        }
        out
    }

    /// Pipelined requests currently in flight.
    pub fn outstanding_reqs(&self) -> usize {
        self.outstanding.len()
    }

    /// Progress signal for the no-progress watchdogs: the sum of every
    /// channel clock. [`Power8System::now`] is the *max* across
    /// channels, which hides a behind-the-max channel catching up;
    /// the sum moves whenever any channel steps forward.
    fn clock_sum(&self) -> u128 {
        self.channels
            .iter()
            .map(|c| u128::from(c.channel.now().as_ps()))
            .sum()
    }

    /// The system clock: the furthest-ahead channel. Channels advance
    /// independently while they have work; the maximum is what an
    /// external observer (a traffic generator pacing arrivals) should
    /// treat as "now".
    pub fn now(&self) -> SimTime {
        self.channels
            .iter()
            .map(|c| c.channel.now())
            .max()
            .unwrap_or(SimTime::ZERO)
    }

    /// Advances every channel's clock to at least `t`, processing any
    /// in-flight frames on the way. Idle time between request arrivals
    /// passes here — an open-loop traffic generator uses it to let the
    /// system sit genuinely idle instead of back-to-back.
    pub fn advance_to(&mut self, t: SimTime) {
        for c in &mut self.channels {
            c.channel.run_until(t);
        }
    }

    /// Applies one tracked-command in-flight window to every channel
    /// (clamped to `1..=32`, the DMI tag space): the knob that turns
    /// memory-level parallelism up and down.
    pub fn set_mlp_window(&mut self, window: usize) {
        for c in &mut self.channels {
            c.channel.set_inflight_window(window);
        }
    }

    /// Blocks on one pipelined request: pump rounds run until `id`
    /// finishes. Other requests' results stay queued for
    /// [`Power8System::poll`].
    ///
    /// # Errors
    ///
    /// Whatever the request's ladder surfaced, plus
    /// [`SystemError::PoweredOff`] if the rail dropped while waiting,
    /// [`SystemError::UnknownRequest`] if `id` was never submitted or
    /// its result was already collected, and [`SystemError::Stalled`]
    /// if the pump stops making progress while the request is still
    /// outstanding (no-progress watchdog; never a livelock).
    pub fn wait_req(&mut self, id: ReqId) -> Result<MemCompletion, SystemError> {
        let mut stalled_rounds = 0u32;
        loop {
            if let Some(pos) = self.finished_sys.iter().position(|(r, _)| *r == id) {
                return self
                    .finished_sys
                    .remove(pos)
                    .expect("position just found")
                    .1;
            }
            if !self.powered {
                return Err(SystemError::PoweredOff);
            }
            if !self.outstanding.contains_key(&id.0) {
                return Err(SystemError::UnknownRequest);
            }
            let before_now = self.clock_sum();
            let before_finished = self.finished_sys.len();
            self.pump_migration();
            self.pump_hedges();
            self.pump_channels();
            if self.clock_sum() > before_now || self.finished_sys.len() > before_finished {
                stalled_rounds = 0;
            } else {
                stalled_rounds += 1;
                if stalled_rounds >= STALL_ROUNDS {
                    self.ov_stats.stalls += 1;
                    self.route_back.retain(|_, v| *v != id.0);
                    self.hedge_arms.remove(&id.0);
                    self.outstanding.remove(&id.0);
                    self.mlp_stats.completed += 1;
                    return Err(SystemError::Stalled);
                }
            }
        }
    }

    /// Steps every channel with tracked work one slot and collects
    /// finished channel commands into finished system requests. Does
    /// not advance the migration — callers own that pacing.
    fn pump_channels(&mut self) {
        for idx in 0..self.channels.len() {
            if self.channels[idx].channel.has_command_work() {
                self.channels[idx].channel.step();
            }
            self.collect_channel(idx);
        }
    }

    /// Drains one channel's finished tracked commands and translates
    /// them into request completions.
    fn collect_channel(&mut self, idx: usize) {
        loop {
            let slot = self.channels[idx].slot;
            let Some((cmd, result)) = self.channels[idx].channel.poll_command() else {
                return;
            };
            let Some(req_id) = self.route_back.remove(&(slot, cmd)) else {
                // A tracked command someone enqueued directly on the
                // channel, not through the system — or a cancelled
                // hedge loser whose route entry was dropped when its
                // sibling won: absorbed, never delivered twice.
                continue;
            };
            if self.hedge_arms.contains_key(&req_id) {
                self.collect_hedged(slot, req_id, result);
                continue;
            }
            self.translate_completion(req_id, result);
        }
    }

    /// Issues hedge reads: an outstanding read against the mirrored
    /// primary that has aged past the hedge threshold gets a duplicate
    /// read enqueued on the mirror. First completion wins; the loser's
    /// route-back entry is dropped by [`Self::collect_hedged`], so its
    /// completion is absorbed without a second delivery. Only reads
    /// hedge — the mirror holds a full shadow copy by construction, so
    /// the duplicate has no side effects to double-apply.
    fn pump_hedges(&mut self) {
        let Some(h) = self.overload.hedge else {
            return;
        };
        let FailoverMode::Mirrored { primary, mirror } = self.mode else {
            return;
        };
        if self.fsp.is_deconfigured(primary)
            || self.fsp.is_deconfigured(mirror)
            || self.channel_index(mirror).is_none()
        {
            return;
        }
        let mut budget = h.max_in_flight.saturating_sub(self.hedge_arms.len());
        if budget == 0 {
            return;
        }
        let now = self.now();
        let due: Vec<u64> = self
            .outstanding
            .iter()
            .filter(|(_, r)| {
                r.data.is_none()
                    && !r.hedged
                    && r.slot == primary
                    && now >= r.submitted_at + h.after
            })
            .map(|(&id, _)| id)
            .collect();
        for id in due {
            if budget == 0 {
                break;
            }
            let (line_addr, phys, deadline) = {
                let r = self.outstanding.get(&id).expect("id collected above");
                (r.line_addr, r.phys, r.deadline)
            };
            let Some(ch) = self.channel_mut(mirror) else {
                return;
            };
            let cmd = ch
                .channel
                .enqueue_command_deadline(CommandOp::Read { addr: line_addr }, deadline);
            self.route_back.insert((mirror, cmd), id);
            self.outstanding
                .get_mut(&id)
                .expect("id collected above")
                .hedged = true;
            self.hedge_arms.insert(id, 2);
            self.ov_stats.hedges_issued += 1;
            self.tracer.record(TraceEvent::HedgeIssued { addr: phys });
            budget -= 1;
        }
    }

    /// One arm of a hedged read finished. A clean completion wins the
    /// race: the request finishes once and the sibling's route entry
    /// is cancelled. A losing arm (error, poison, no data) charges its
    /// own channel's verdict and waits for the sibling — unless it was
    /// the last arm, in which case its error is surfaced.
    fn collect_hedged(
        &mut self,
        slot: usize,
        req_id: u64,
        result: Result<crate::channel::Completion, DmiError>,
    ) {
        let arms = self
            .hedge_arms
            .get_mut(&req_id)
            .expect("caller checked hedge_arms");
        *arms = arms.saturating_sub(1);
        let arms_left = *arms;
        let req = self
            .outstanding
            .get(&req_id)
            .cloned()
            .expect("hedged request is outstanding");
        match result {
            Ok(c) if !c.poisoned && c.data.is_some() => {
                self.hedge_arms.remove(&req_id);
                let stale: Vec<(usize, CmdId)> = self
                    .route_back
                    .iter()
                    .filter(|&(_, &id)| id == req_id)
                    .map(|(&k, _)| k)
                    .collect();
                for key in stale {
                    self.route_back.remove(&key);
                    self.ov_stats.hedges_cancelled += 1;
                }
                self.ov_stats.hedges_won += 1;
                self.breaker_success(slot);
                // Same completion-time deadline translation as the
                // unhedged path: a winning arm that is still late
                // surfaces the typed error.
                if req.deadline.is_some_and(|d| c.completed_at >= d) {
                    self.ov_stats.deadline_expired += 1;
                    self.finish_req(req_id, Err(SystemError::DeadlineExceeded));
                } else {
                    self.finish_req(
                        req_id,
                        Ok(MemCompletion {
                            phys: req.phys,
                            data: c.data,
                            completed_at: c.completed_at,
                        }),
                    );
                }
            }
            other => {
                let err = match other {
                    Ok(c) if c.poisoned => {
                        if let Some(ch) = self.channel_mut(slot) {
                            ch.channel.note_poison_delivered(req.line_addr);
                        }
                        DmiError::Poisoned {
                            addr: req.line_addr,
                        }
                    }
                    Ok(_) => DmiError::MalformedFrame("read completed without data"),
                    Err(e) => e,
                };
                // A deadline shed is not hardware evidence; everything
                // else charges the arm's own channel.
                let shed = matches!(err, DmiError::DeadlineExceeded { .. });
                if !shed {
                    self.apply_error_verdict(slot, req.line_addr, &err);
                    if self.fsp.is_deconfigured(slot) {
                        let _ = self.try_failover(slot);
                    }
                }
                if arms_left == 0 {
                    self.hedge_arms.remove(&req_id);
                    if shed {
                        self.ov_stats.deadline_expired += 1;
                        self.finish_req(req_id, Err(SystemError::DeadlineExceeded));
                    } else {
                        self.finish_req(req_id, Err(SystemError::Dmi(err)));
                    }
                }
            }
        }
    }

    /// Applies the blocking path's per-access semantics to one
    /// finished channel command: poison surfacing, written-line and
    /// inherited-poison bookkeeping, the mirror fan-out, and the error
    /// ladder (verdict → failover → mirror fallback → redirect).
    fn translate_completion(
        &mut self,
        req_id: u64,
        result: Result<crate::channel::Completion, DmiError>,
    ) {
        let req = self
            .outstanding
            .get(&req_id)
            .cloned()
            .expect("route_back entry implies an outstanding request");
        match result {
            // Deadline translation at completion: the channel answered,
            // but past the point anyone wants it. The hardware evidence
            // is still a success (breaker credit stays); the *client*
            // gets the typed error. A late store has genuinely landed,
            // so its bookkeeping and mirror fan-out still run —
            // reporting the ambiguous outcome without fanning out would
            // silently desync the mirror.
            Ok(c) => match req.data {
                None => {
                    if c.poisoned {
                        if let Some(ch) = self.channel_mut(req.slot) {
                            ch.channel.note_poison_delivered(req.line_addr);
                        }
                        self.finish_req_error(
                            req_id,
                            DmiError::Poisoned {
                                addr: req.line_addr,
                            },
                        );
                        return;
                    }
                    match c.data {
                        Some(data) => {
                            self.breaker_success(req.slot);
                            if req.deadline.is_some_and(|d| c.completed_at >= d) {
                                self.ov_stats.deadline_expired += 1;
                                self.finish_req(req_id, Err(SystemError::DeadlineExceeded));
                            } else {
                                self.finish_req(
                                    req_id,
                                    Ok(MemCompletion {
                                        phys: req.phys,
                                        data: Some(data),
                                        completed_at: c.completed_at,
                                    }),
                                );
                            }
                        }
                        None => self.finish_req(
                            req_id,
                            Err(SystemError::Dmi(DmiError::MalformedFrame(
                                "read completed without data",
                            ))),
                        ),
                    }
                }
                Some(data) => {
                    self.written
                        .entry(req.slot)
                        .or_default()
                        .insert(req.line_addr);
                    // A successful full-line demand write overwrites
                    // any rot the line inherited from an evacuation.
                    if let Some(lines) = self.inherited_poison.get_mut(&req.slot) {
                        lines.remove(&req.line_addr);
                    }
                    self.mirror_store(req.slot, req.line_addr, data);
                    self.breaker_success(req.slot);
                    if req.deadline.is_some_and(|d| c.completed_at >= d) {
                        self.ov_stats.deadline_expired += 1;
                        self.finish_req(req_id, Err(SystemError::DeadlineExceeded));
                    } else {
                        self.finish_req(
                            req_id,
                            Ok(MemCompletion {
                                phys: req.phys,
                                data: None,
                                completed_at: c.completed_at,
                            }),
                        );
                    }
                }
            },
            Err(err) => self.finish_req_error(req_id, err),
        }
    }

    /// The per-completion error ladder, ported from the old blocking
    /// helpers: classify the error against the owning channel's budget,
    /// fail over if the FSP pulled the channel, serve mirrored reads
    /// from the shadow copy, and re-route timed-out requests whose
    /// address now maps elsewhere — the route comparison (rather than a
    /// per-call flag) also redirects sibling requests that were already
    /// in flight when another request's timeout triggered the failover.
    fn finish_req_error(&mut self, req_id: u64, err: DmiError) {
        let req = self
            .outstanding
            .get(&req_id)
            .cloned()
            .expect("error for a request not outstanding");
        // A channel-level deadline shed is not hardware evidence: the
        // work was dropped, not failed. No verdict, no breaker charge,
        // no fallback or redirect (an expired request must never be
        // re-queued) — surface the typed system error directly.
        if matches!(err, DmiError::DeadlineExceeded { .. }) {
            self.ov_stats.deadline_expired += 1;
            self.finish_req(req_id, Err(SystemError::DeadlineExceeded));
            return;
        }
        let deadline_blown = req.deadline.is_some_and(|d| self.now_of(req.slot) >= d);
        self.apply_error_verdict(req.slot, req.line_addr, &err);
        if self.fsp.is_deconfigured(req.slot) {
            let _ = self.try_failover(req.slot);
        }
        // Recovery attempts (mirror fallback, redirect) are themselves
        // retries; a request past its deadline skips them and fails
        // fast — the verdict above still counted the hardware
        // evidence.
        if !deadline_blown {
            // Mirrored pairs fail reads over per-access: a poisoned or
            // timed-out primary read is served from the shadow copy.
            if req.data.is_none() {
                if let FailoverMode::Mirrored { primary, mirror } = self.mode {
                    if req.slot == primary
                        && matches!(err, DmiError::Poisoned { .. } | DmiError::Timeout { .. })
                        && !self.fsp.is_deconfigured(mirror)
                    {
                        let fallback = self
                            .channel_mut(mirror)
                            .and_then(|ch| ch.channel.read_line_blocking(req.line_addr).ok());
                        if let Some((line, at)) = fallback {
                            self.stats.mirror_read_fallbacks += 1;
                            self.tracer
                                .record(TraceEvent::MirrorReadFallback { addr: req.phys });
                            self.finish_req(
                                req_id,
                                Ok(MemCompletion {
                                    phys: req.phys,
                                    data: Some(line),
                                    completed_at: at,
                                }),
                            );
                            return;
                        }
                    }
                }
            }
            if matches!(err, DmiError::Timeout { .. }) && req.redirects < MAX_REDIRECTS {
                if let Some((new_slot, _)) = self.route(req.phys) {
                    if new_slot != req.slot {
                        self.redirect_req(req_id);
                        return;
                    }
                }
            }
        }
        if deadline_blown {
            self.ov_stats.deadline_expired += 1;
            self.finish_req(req_id, Err(SystemError::DeadlineExceeded));
        } else {
            self.finish_req(req_id, Err(SystemError::Dmi(err)));
        }
    }

    /// Re-routes an outstanding request through the memory map after a
    /// failover moved its address to a new slot.
    fn redirect_req(&mut self, req_id: u64) {
        let req = self
            .outstanding
            .get(&req_id)
            .cloned()
            .expect("redirect of a request not outstanding");
        let Some((slot, local)) = self.route(req.phys) else {
            self.finish_req(
                req_id,
                Err(SystemError::Route(RouteError::Unmapped { phys: req.phys })),
            );
            return;
        };
        if let Err(e) = self.fsp.check_channel(slot) {
            self.finish_req(req_id, Err(SystemError::Fsp(e)));
            return;
        }
        let line_addr = local & !127;
        match req.data {
            None => self.demand_pull(slot, line_addr),
            Some(_) => {
                if let Some(mig) = self.migration.as_mut() {
                    if mig.to == slot && mig.pending.remove(&line_addr) {
                        mig.migrated += 1;
                    }
                }
            }
        }
        let op = match req.data {
            None => CommandOp::Read { addr: line_addr },
            Some(d) => CommandOp::Write {
                addr: line_addr,
                data: d,
            },
        };
        let Some(ch) = self.channel_mut(slot) else {
            self.finish_req(
                req_id,
                Err(SystemError::Fsp(FspError::ChannelDeconfigured {
                    channel: slot,
                })),
            );
            return;
        };
        let cmd = ch.channel.enqueue_command_deadline(op, req.deadline);
        let entry = self
            .outstanding
            .get_mut(&req_id)
            .expect("checked outstanding above");
        entry.slot = slot;
        entry.line_addr = line_addr;
        entry.redirects += 1;
        self.route_back.insert((slot, cmd), req_id);
        self.mlp_stats.redirects += 1;
    }

    fn finish_req(&mut self, req_id: u64, result: Result<MemCompletion, SystemError>) {
        self.outstanding.remove(&req_id);
        self.mlp_stats.completed += 1;
        self.finished_sys.push_back((ReqId(req_id), result));
    }

    /// Software cache-line load at a physical address, through the
    /// owning channel. A thin shim over the pipelined path:
    /// [`Power8System::submit_load`] + [`Power8System::wait_req`].
    ///
    /// # Errors
    ///
    /// [`SystemError::Route`] for unmapped addresses,
    /// [`SystemError::Fsp`] when the owning channel is deconfigured
    /// with nowhere to fail over, [`SystemError::Dmi`] for channel
    /// faults that survived the recovery ladder.
    pub fn load_line(&mut self, phys: u64) -> Result<(CacheLine, SimTime), SystemError> {
        let id = self.submit_load(phys)?;
        let c = self.wait_req(id)?;
        let data = c.data.ok_or(SystemError::Dmi(DmiError::MalformedFrame(
            "read completed without data",
        )))?;
        Ok((data, c.completed_at))
    }

    /// Software cache-line store: shim over
    /// [`Power8System::submit_store`] + [`Power8System::wait_req`].
    ///
    /// # Errors
    ///
    /// Same ladder as [`Self::load_line`].
    pub fn store_line(&mut self, phys: u64, data: CacheLine) -> Result<SimTime, SystemError> {
        let id = self.submit_store(phys, data)?;
        let c = self.wait_req(id)?;
        Ok(c.completed_at)
    }

    /// Fans a successful primary store out to the mirror.
    fn mirror_store(&mut self, slot: usize, line_addr: u64, data: CacheLine) {
        let FailoverMode::Mirrored { primary, mirror } = self.mode else {
            return;
        };
        if slot != primary || self.fsp.is_deconfigured(mirror) {
            return;
        }
        let result = match self.channel_mut(mirror) {
            Some(ch) => ch.channel.write_line_blocking(line_addr, data),
            None => return,
        };
        match result {
            Ok(_) => {
                self.written.entry(mirror).or_default().insert(line_addr);
            }
            Err(err) => {
                // The mirror is degrading, not the primary: classify
                // against the mirror's budget; the pair keeps running
                // unmirrored once the FSP pulls it.
                self.apply_error_verdict(mirror, line_addr, &err);
            }
        }
    }

    /// Runs the firmware's error classification and applies its
    /// verdict. The blocking helpers only surface `Timeout` /
    /// `TrainingFailed` after the retry→retrain ladder is exhausted,
    /// so an [`ErrorAction::Deconfigure`] verdict takes the channel
    /// out of service immediately — it is the ladder's final answer,
    /// not a first symptom. Poison on a line that arrived already
    /// poisoned via evacuation is exempt: consuming it machine-checks
    /// the reader, but is not fresh evidence against the hosting
    /// channel's hardware, so it must not charge that channel's error
    /// budget.
    fn apply_error_verdict(&mut self, slot: usize, line_addr: u64, err: &DmiError) {
        if matches!(err, DmiError::Poisoned { .. })
            && self
                .inherited_poison
                .get(&slot)
                .is_some_and(|lines| lines.contains(&line_addr))
        {
            return;
        }
        self.breaker_failure(slot);
        let now = self.now_of(slot);
        if Firmware::classify_runtime_error(now, slot, err, &mut self.fsp)
            == ErrorAction::Deconfigure
        {
            self.fsp.deconfigure(now, slot, "recovery ladder exhausted");
        }
    }

    /// Feeds a successful completion to the slot's breaker; a
    /// half-open → closed transition is reported to the FSP and
    /// traced.
    fn breaker_success(&mut self, slot: usize) {
        let closed = self
            .breakers
            .get_mut(&slot)
            .is_some_and(CircuitBreaker::on_success);
        if closed {
            let now = self.now_of(slot);
            self.fsp.note_breaker(now, slot, false);
            self.tracer
                .record(TraceEvent::BreakerTransition { slot, open: false });
        }
    }

    /// Feeds a ladder-final failure to the slot's breaker. A trip is
    /// reported to the FSP, and once a breaker has opened
    /// `deconfigure_after_opens` times the FSP's verdict is that the
    /// channel is persistently failing: it is deconfigured outright
    /// (breaker state consumed as service-processor evidence).
    fn breaker_failure(&mut self, slot: usize) {
        let now = self.now_of(slot);
        let tripped = self
            .breakers
            .get_mut(&slot)
            .is_some_and(|br| br.on_failure(now));
        if !tripped {
            return;
        }
        self.fsp.note_breaker(now, slot, true);
        self.tracer
            .record(TraceEvent::BreakerTransition { slot, open: true });
        let opens = self
            .breakers
            .get(&slot)
            .map_or(0, CircuitBreaker::times_opened);
        if let Some(bcfg) = self.overload.breaker {
            if opens >= bcfg.deconfigure_after_opens && !self.fsp.is_deconfigured(slot) {
                self.fsp.deconfigure(now, slot, "circuit breaker exhausted");
            }
        }
    }

    /// Concurrent maintenance (paper §3.2): an operator pulls a buffer
    /// card from the running system. The FSP deconfigures the slot and
    /// the system fails over before the access stream resumes.
    ///
    /// # Errors
    ///
    /// [`SystemError::Fsp`] if the slot backs live regions and there is
    /// no failover target — the pull would orphan mapped memory.
    pub fn maintenance_pull(&mut self, slot: usize) -> Result<(), SystemError> {
        let at = self.now_of(slot);
        self.fsp.deconfigure(at, slot, "maintenance pull");
        if self.memory_map.channel_is_mapped(slot) && !self.try_failover(slot) {
            return Err(SystemError::Fsp(FspError::ChannelDeconfigured {
                channel: slot,
            }));
        }
        Ok(())
    }

    /// Quiesce → remap → (spare mode) start evacuation. Returns
    /// whether a target took over the dead slot's regions.
    fn try_failover(&mut self, slot: usize) -> bool {
        if self
            .migration
            .as_ref()
            .is_some_and(|m| m.from == slot || m.to == slot)
        {
            return false;
        }
        if !self.memory_map.channel_is_mapped(slot) {
            return false;
        }
        let target = match self.mode {
            FailoverMode::None => return false,
            FailoverMode::Spare { spare } => {
                if spare == slot
                    || self.fsp.is_deconfigured(spare)
                    || self.channel_index(spare).is_none()
                {
                    return false;
                }
                spare
            }
            FailoverMode::Mirrored { primary, mirror } => {
                if slot != primary
                    || self.fsp.is_deconfigured(mirror)
                    || self.channel_index(mirror).is_none()
                {
                    return false;
                }
                mirror
            }
        };
        // Quiesce: drain in-flight tags within a bounded budget; a
        // dead link reclaims them via reset instead.
        let clean = match self.channel_mut(slot) {
            Some(ch) => {
                let budget = ch.channel.retry_policy().op_timeout * QUIESCE_TIMEOUTS;
                ch.channel.quiesce(budget).unwrap_or(false)
            }
            None => false,
        };
        self.tracer
            .record(TraceEvent::ChannelQuiesced { slot, clean });
        let mirrored = matches!(self.mode, FailoverMode::Mirrored { .. });
        self.memory_map.rebind_channel(slot, target);
        self.tracer.record(TraceEvent::ChannelFailedOver {
            from: slot,
            to: target,
            mirrored,
        });
        self.stats.failovers += 1;
        if !mirrored {
            // Writes drained by the quiesce (or requeued by its link
            // reset) have not been through `translate_completion` yet:
            // their acks will be delivered after the remap, so their
            // lines must evacuate too — snapshotting `written` alone
            // would strand freshly acknowledged data on the dead
            // buffer.
            let in_flight: Vec<u64> = self
                .outstanding
                .values()
                .filter(|r| r.slot == slot && r.data.is_some())
                .map(|r| r.line_addr)
                .collect();
            self.written.entry(slot).or_default().extend(in_flight);
            // Evacuate everything software ever wrote through the dead
            // slot. The mirror already holds its copy by construction.
            let pending: BTreeSet<u64> = self.written.get(&slot).cloned().unwrap_or_default();
            let backlog = pending.len() as u64;
            self.migration = Some(Migration {
                from: slot,
                to: target,
                pending,
                migrated: 0,
                poison_migrated: 0,
            });
            self.tracer.record(TraceEvent::MigrationProgress {
                from: slot,
                to: target,
                migrated: 0,
                remaining: backlog,
            });
        }
        true
    }

    /// Background catch-up: each demand access moves up to
    /// [`MIGRATION_BATCH`] lines (scrub-style, like the PR-3 patrol).
    /// While browned out, the batch shrinks to the brownout batch so
    /// evacuation yields its bandwidth to demand traffic — but never
    /// to zero: a dead buffer's data stays at risk until it is off the
    /// card.
    fn pump_migration(&mut self) {
        let batch = if self.brownout {
            self.overload
                .brownout
                .map_or(MIGRATION_BATCH, |b| b.migration_batch.max(1))
        } else {
            MIGRATION_BATCH
        };
        for _ in 0..batch {
            if !self.migrate_next() {
                break;
            }
        }
    }

    /// The brownout hysteresis: total queued commands above the high
    /// watermark engage it (migration batch shrinks, patrol scrub
    /// intervals stretch); at or below the low watermark it releases
    /// and the saved scrub intervals are restored.
    fn update_brownout(&mut self) {
        let Some(bo) = self.overload.brownout else {
            return;
        };
        let queued: usize = self
            .channels
            .iter()
            .map(|c| c.channel.queued_commands())
            .sum();
        if !self.brownout && queued >= bo.queue_high {
            self.brownout = true;
            self.ov_stats.brownout_entries += 1;
            let slots: Vec<usize> = self.channels.iter().map(|c| c.slot).collect();
            for slot in slots {
                let Some(ch) = self.channel_mut(slot) else {
                    continue;
                };
                let Some(iv) = ch.channel.buffer_mut().scrub_interval() else {
                    continue;
                };
                let now = ch.channel.now();
                let stretched = iv * u64::from(bo.scrub_stretch.max(1));
                if ch.channel.buffer_mut().set_scrub(now, Some(stretched)) {
                    self.brownout_saved_scrub.insert(slot, iv);
                }
            }
        } else if self.brownout && queued <= bo.queue_low {
            self.exit_brownout();
        }
    }

    /// Releases brownout and restores every stretched scrub interval.
    fn exit_brownout(&mut self) {
        if !self.brownout {
            return;
        }
        self.brownout = false;
        let saved: Vec<(usize, SimTime)> = self
            .brownout_saved_scrub
            .iter()
            .map(|(&slot, &iv)| (slot, iv))
            .collect();
        self.brownout_saved_scrub.clear();
        for (slot, iv) in saved {
            if let Some(ch) = self.channel_mut(slot) {
                let now = ch.channel.now();
                let _ = ch.channel.buffer_mut().set_scrub(now, Some(iv));
            }
        }
    }

    /// Moves one pending line; returns false when nothing is left.
    fn migrate_next(&mut self) -> bool {
        let Some(mig) = self.migration.as_mut() else {
            return false;
        };
        let from = mig.from;
        let to = mig.to;
        let Some(line) = mig.pending.pop_first() else {
            let migrated = mig.migrated;
            self.migration = None;
            self.tracer.record(TraceEvent::MigrationProgress {
                from,
                to,
                migrated,
                remaining: 0,
            });
            return false;
        };
        let poisoned = self.copy_line(from, to, line);
        self.stats.lines_migrated += 1;
        if poisoned {
            self.stats.poison_migrated += 1;
        }
        if let Some(mig) = self.migration.as_mut() {
            mig.migrated += 1;
            if poisoned {
                mig.poison_migrated += 1;
            }
            if mig.migrated % MIGRATION_PROGRESS_STRIDE == 0 {
                let migrated = mig.migrated;
                let remaining = mig.backlog();
                self.tracer.record(TraceEvent::MigrationProgress {
                    from,
                    to,
                    migrated,
                    remaining,
                });
            }
        }
        true
    }

    /// Pulls one line ahead of the copy frontier because a demand
    /// access needs it on the spare right now.
    fn demand_pull(&mut self, slot: usize, line_addr: u64) {
        let Some(mig) = self.migration.as_mut() else {
            return;
        };
        if mig.to != slot || !mig.pending.remove(&line_addr) {
            return;
        }
        let from = mig.from;
        let poisoned = self.copy_line(from, slot, line_addr);
        self.stats.demand_migrations += 1;
        self.stats.lines_migrated += 1;
        if poisoned {
            self.stats.poison_migrated += 1;
        }
        if let Some(mig) = self.migration.as_mut() {
            mig.migrated += 1;
            if poisoned {
                mig.poison_migrated += 1;
            }
        }
    }

    /// Moves one line over the sideband path (FSI→I²C, paper §3.4 —
    /// alive even when the DMI link is not). Returns whether the line
    /// landed poisoned. Unreadable lines migrate as explicit poison:
    /// data is lost loudly, never silently.
    fn copy_line(&mut self, from: usize, to: usize, line: u64) -> bool {
        let read = match self.channel_mut(from) {
            Some(ch) => {
                let now = ch.channel.now();
                ch.channel.buffer_mut().sideband_read_line(now, line)
            }
            None => None,
        };
        let (data, poison) = match read {
            Some((data, poison)) => (data, poison),
            None => {
                self.stats.lines_unreadable += 1;
                ([0u8; 128], true)
            }
        };
        if let Some(ch) = self.channel_mut(to) {
            if ch
                .channel
                .buffer_mut()
                .sideband_write_line(line, &data, poison)
            {
                // Sideband transfers are slow: charge the spare's clock.
                let t = ch.channel.now() + MIGRATION_LINE_COST;
                ch.channel.run_until(t);
                self.written.entry(to).or_default().insert(line);
                if poison {
                    // Remember the rot arrived with the line, so
                    // consuming it never charges the spare's budget.
                    self.inherited_poison.entry(to).or_default().insert(line);
                } else if let Some(lines) = self.inherited_poison.get_mut(&to) {
                    lines.remove(&line);
                }
            } else {
                self.stats.lines_unreadable += 1;
            }
        }
        poison
    }

    /// Whether an evacuation is still running.
    pub fn failover_in_progress(&self) -> bool {
        self.migration.is_some()
    }

    /// Lines still waiting to reach the spare.
    pub fn migration_backlog(&self) -> u64 {
        self.migration.as_ref().map_or(0, Migration::backlog)
    }

    /// Runs the migrator to completion (maintenance windows do this
    /// before declaring the dead card safe to physically remove).
    pub fn complete_migration(&mut self) {
        while self.migrate_next() {}
    }

    fn now_of(&self, slot: usize) -> SimTime {
        self.channels
            .iter()
            .find(|c| c.slot == slot)
            .map_or(SimTime::ZERO, |c| c.channel.now())
    }

    /// The non-volatile channels (pmem driver targets).
    pub fn nonvolatile_slots(&self) -> Vec<usize> {
        self.channels
            .iter()
            .filter(|c| c.kind.is_nonvolatile())
            .map(|c| c.slot)
            .collect()
    }

    /// Total OS-visible memory.
    pub fn os_visible_bytes(&self) -> u64 {
        self.memory_map.regions().iter().map(|r| r.os_size).sum()
    }

    /// Periodic FSP health sweep (paper §3.2: the service processor
    /// "periodically checks the correct operation of all the
    /// hardware"): logs recovered link errors (CRC/replay) per
    /// channel since the last sweep.
    pub fn health_check(&mut self, at: SimTime) {
        let mut events = Vec::new();
        for c in &self.channels {
            let s = c.channel.host_stats();
            if s.crc_errors + s.seq_errors + s.replays_triggered > 0 {
                events.push((
                    c.slot,
                    format!(
                        "{} crc, {} seq errors; {} replays (recovered)",
                        s.crc_errors, s.seq_errors, s.replays_triggered
                    ),
                ));
            }
        }
        for (slot, msg) in events {
            self.fsp
                .log(at, slot, crate::fsp::Severity::Recovered, &msg);
        }
    }

    /// Media kind at a physical address.
    pub fn media_at(&self, phys: u64) -> Option<MediaKind> {
        let (region_idx, _) = self.memory_map.resolve(phys)?;
        Some(self.memory_map.regions()[region_idx].flags.kind)
    }
}

impl Persist for ReqId {
    fn persist(&self, out: &mut Vec<u8>) {
        self.0.persist(out);
    }
    fn restore(r: &mut SnapReader<'_>) -> Result<Self, RestoreError> {
        Ok(ReqId(r.u64()?))
    }
}

impl Persist for PowerConfig {
    fn persist(&self, out: &mut Vec<u8>) {
        self.holdup_budget_nj.persist(out);
        self.nvdimm_supercap_nj.persist(out);
    }
    fn restore(r: &mut SnapReader<'_>) -> Result<Self, RestoreError> {
        let holdup_budget_nj = Option::restore(r)?;
        let nvdimm_supercap_nj = Option::restore(r)?;
        Ok(PowerConfig {
            holdup_budget_nj,
            nvdimm_supercap_nj,
        })
    }
}

impl Persist for PowerStats {
    fn persist(&self, out: &mut Vec<u8>) {
        self.epow_asserted.persist(out);
        self.cuts.persist(out);
        self.reboots.persist(out);
        self.lines_flushed.persist(out);
        self.holdup_spent_nj.persist(out);
        self.saves_torn.persist(out);
        self.restores_clean.persist(out);
        self.restores_failed.persist(out);
    }
    fn restore(r: &mut SnapReader<'_>) -> Result<Self, RestoreError> {
        let epow_asserted = r.u64()?;
        let cuts = r.u64()?;
        let reboots = r.u64()?;
        let lines_flushed = r.u64()?;
        let holdup_spent_nj = r.u64()?;
        let saves_torn = r.u64()?;
        let restores_clean = r.u64()?;
        let restores_failed = r.u64()?;
        Ok(PowerStats {
            epow_asserted,
            cuts,
            reboots,
            lines_flushed,
            holdup_spent_nj,
            saves_torn,
            restores_clean,
            restores_failed,
        })
    }
}

impl Persist for MlpStats {
    fn persist(&self, out: &mut Vec<u8>) {
        self.submitted.persist(out);
        self.completed.persist(out);
        self.redirects.persist(out);
        self.peak_outstanding.persist(out);
    }
    fn restore(r: &mut SnapReader<'_>) -> Result<Self, RestoreError> {
        let submitted = r.u64()?;
        let completed = r.u64()?;
        let redirects = r.u64()?;
        let peak_outstanding = r.u64()?;
        Ok(MlpStats {
            submitted,
            completed,
            redirects,
            peak_outstanding,
        })
    }
}

impl Persist for OutstandingReq {
    fn persist(&self, out: &mut Vec<u8>) {
        self.phys.persist(out);
        self.slot.persist(out);
        self.line_addr.persist(out);
        self.data.persist(out);
        self.redirects.persist(out);
        self.deadline.persist(out);
        self.submitted_at.persist(out);
        self.hedged.persist(out);
    }
    fn restore(r: &mut SnapReader<'_>) -> Result<Self, RestoreError> {
        let phys = r.u64()?;
        let slot = usize::restore(r)?;
        let line_addr = r.u64()?;
        let data = Option::restore(r)?;
        let redirects = r.u32()?;
        let deadline = Option::restore(r)?;
        let submitted_at = SimTime::restore(r)?;
        let hedged = r.bool()?;
        Ok(OutstandingReq {
            phys,
            slot,
            line_addr,
            data,
            redirects,
            deadline,
            submitted_at,
            hedged,
        })
    }
}

impl Persist for MemCompletion {
    fn persist(&self, out: &mut Vec<u8>) {
        self.phys.persist(out);
        self.data.persist(out);
        self.completed_at.persist(out);
    }
    fn restore(r: &mut SnapReader<'_>) -> Result<Self, RestoreError> {
        let phys = r.u64()?;
        let data = Option::restore(r)?;
        let completed_at = SimTime::restore(r)?;
        Ok(MemCompletion {
            phys,
            data,
            completed_at,
        })
    }
}

impl Persist for SystemError {
    fn persist(&self, out: &mut Vec<u8>) {
        match self {
            SystemError::Route(RouteError::Unmapped { phys }) => {
                0u8.persist(out);
                phys.persist(out);
            }
            SystemError::Fsp(FspError::ChannelDeconfigured { channel }) => {
                1u8.persist(out);
                channel.persist(out);
            }
            SystemError::Dmi(e) => {
                2u8.persist(out);
                e.persist(out);
            }
            SystemError::PoweredOff => 3u8.persist(out),
            SystemError::DeadlineExceeded => 4u8.persist(out),
            SystemError::Shed { slot } => {
                5u8.persist(out);
                slot.persist(out);
            }
            SystemError::Stalled => 6u8.persist(out),
            SystemError::UnknownRequest => 7u8.persist(out),
        }
    }
    fn restore(r: &mut SnapReader<'_>) -> Result<Self, RestoreError> {
        Ok(match r.u8()? {
            0 => SystemError::Route(RouteError::Unmapped { phys: r.u64()? }),
            1 => SystemError::Fsp(FspError::ChannelDeconfigured {
                channel: usize::restore(r)?,
            }),
            2 => SystemError::Dmi(DmiError::restore(r)?),
            3 => SystemError::PoweredOff,
            4 => SystemError::DeadlineExceeded,
            5 => SystemError::Shed {
                slot: usize::restore(r)?,
            },
            6 => SystemError::Stalled,
            7 => SystemError::UnknownRequest,
            _ => {
                return Err(RestoreError::Malformed {
                    context: "system error discriminant",
                })
            }
        })
    }
}

impl Power8System {
    /// Serializes the whole machine — memory map, FSP, failover and
    /// power state, the pipelined request plumbing, overload governors,
    /// every channel (buffer, devices, link, tags, queues) and the
    /// trace ring — into one versioned, section-framed, CRC-sealed
    /// image.
    ///
    /// Construction parameters (slot layout, media kinds, capacities,
    /// failover mode, link speeds) are *not* persisted as state: the
    /// image records them only as cross-check material, and
    /// [`Power8System::restore`] demands a target booted from the same
    /// layout. Only `&mut self` for the `system.snapshot.*` observer
    /// counters; simulation state is untouched.
    pub fn snapshot(&mut self) -> Vec<u8> {
        let mut w = SnapshotWriter::new();
        w.section_with("system", |out| {
            (self.channels.len() as u64).persist(out);
            self.mode.persist(out);
            self.memory_map.persist(out);
            self.fsp.snapshot_state(out);
            self.migration.persist(out);
            self.written.persist(out);
            self.inherited_poison.persist(out);
            self.stats.persist(out);
            self.power.persist(out);
            self.powered.persist(out);
            self.power_stats.persist(out);
            self.nvdimm_armed.persist(out);
            self.next_req.persist(out);
            self.outstanding.persist(out);
            self.route_back.persist(out);
            (self.finished_sys.len() as u64).persist(out);
            for (id, res) in &self.finished_sys {
                id.persist(out);
                match res {
                    Ok(c) => {
                        0u8.persist(out);
                        c.persist(out);
                    }
                    Err(e) => {
                        1u8.persist(out);
                        e.persist(out);
                    }
                }
            }
            self.mlp_stats.persist(out);
            self.overload.persist(out);
            match &self.retry_budget {
                None => false.persist(out),
                Some(b) => {
                    true.persist(out);
                    b.borrow().snapshot_state(out);
                }
            }
            (self.breakers.len() as u64).persist(out);
            for (slot, b) in &self.breakers {
                slot.persist(out);
                b.snapshot_state(out);
            }
            self.hedge_arms.persist(out);
            self.ov_stats.persist(out);
            self.brownout.persist(out);
            self.brownout_saved_scrub.persist(out);
        });
        for c in &self.channels {
            w.section_with(&format!("channel.{}", c.slot), |out| {
                c.slot.persist(out);
                c.kind.persist(out);
                c.capacity.persist(out);
                c.training.persist(out);
                c.channel.snapshot_state(out);
            });
        }
        if self.tracer.is_enabled() {
            w.section_with("tracer", |out| self.tracer.snapshot_state(out));
        }
        let image = w.finish();
        self.snap_stats.taken += 1;
        self.snap_stats.bytes += image.len() as u64;
        image
    }

    /// Overlays a [`Power8System::snapshot`] image onto this system.
    ///
    /// The target must be freshly booted from the *same construction
    /// parameters* (slot layout, seed-independent topology, failover
    /// mode) as the snapshotted system; mismatches surface as
    /// [`RestoreError::TopologyMismatch`]. After a successful restore,
    /// continuing the run is fingerprint- and metrics-identical
    /// (modulo the `system.snapshot.*` observer namespace) to the run
    /// the snapshot was taken from.
    ///
    /// # Errors
    ///
    /// Every [`RestoreError`]: corrupt or truncated images fail the
    /// framing CRCs, unknown sections are rejected, and topology
    /// mismatches are typed. On error the target is left in an
    /// unspecified (partially restored) state and must be discarded —
    /// never resumed.
    pub fn restore(&mut self, image: &[u8]) -> Result<(), RestoreError> {
        match self.restore_inner(image) {
            Ok(()) => {
                self.snap_stats.restores += 1;
                Ok(())
            }
            Err(e) => {
                self.snap_stats.restore_failures += 1;
                Err(e)
            }
        }
    }

    fn restore_inner(&mut self, image: &[u8]) -> Result<(), RestoreError> {
        let img = SnapshotImage::parse(image)?;
        for name in img.names() {
            match name {
                "system" | "tracer" => {}
                _ => match name
                    .strip_prefix("channel.")
                    .and_then(|s| s.parse::<usize>().ok())
                {
                    Some(slot) => {
                        if self.channel_index(slot).is_none() {
                            return Err(RestoreError::TopologyMismatch {
                                context: "snapshot channel slot is not populated here",
                            });
                        }
                    }
                    None => {
                        return Err(RestoreError::UnknownSection {
                            section: name.to_owned(),
                        })
                    }
                },
            }
        }

        let mut r = img.section("system")?;
        let nchan = r.u64()? as usize;
        if nchan != self.channels.len() {
            return Err(RestoreError::TopologyMismatch {
                context: "channel count",
            });
        }
        let mode = FailoverMode::restore(&mut r)?;
        if mode != self.mode {
            return Err(RestoreError::TopologyMismatch {
                context: "failover mode",
            });
        }
        let memory_map = MemoryMap::restore(&mut r)?;
        self.fsp.restore_state(&mut r)?;
        let migration = Option::<Migration>::restore(&mut r)?;
        let written = BTreeMap::restore(&mut r)?;
        let inherited_poison = BTreeMap::restore(&mut r)?;
        let stats = FailoverStats::restore(&mut r)?;
        let power = PowerConfig::restore(&mut r)?;
        let powered = r.bool()?;
        let power_stats = PowerStats::restore(&mut r)?;
        let nvdimm_armed = BTreeSet::restore(&mut r)?;
        let next_req = r.u64()?;
        let outstanding = BTreeMap::<u64, OutstandingReq>::restore(&mut r)?;
        let route_back = BTreeMap::<(usize, CmdId), u64>::restore(&mut r)?;
        let nfin = r.len()?;
        if nfin > r.remaining() / 9 {
            return Err(RestoreError::Truncated {
                context: "finished system results",
            });
        }
        let mut finished_sys = VecDeque::with_capacity(nfin);
        for _ in 0..nfin {
            let id = ReqId::restore(&mut r)?;
            let res = match r.u8()? {
                0 => Ok(MemCompletion::restore(&mut r)?),
                1 => Err(SystemError::restore(&mut r)?),
                _ => {
                    return Err(RestoreError::Malformed {
                        context: "finished system result discriminant",
                    })
                }
            };
            finished_sys.push_back((id, res));
        }
        let mlp_stats = MlpStats::restore(&mut r)?;
        let overload = OverloadConfig::restore(&mut r)?;
        let budget = if r.bool()? {
            let Some(bcfg) = overload.retry_budget else {
                return Err(RestoreError::Malformed {
                    context: "retry budget state without a budget config",
                });
            };
            let mut b = RetryBudget::new(bcfg);
            b.restore_state(&mut r)?;
            Some(Rc::new(RefCell::new(b)))
        } else {
            None
        };
        let nb = r.len()?;
        if nb > r.remaining() / 9 {
            return Err(RestoreError::Truncated {
                context: "breaker table",
            });
        }
        let mut breakers = BTreeMap::new();
        for _ in 0..nb {
            let slot = usize::restore(&mut r)?;
            let Some(bcfg) = overload.breaker else {
                return Err(RestoreError::Malformed {
                    context: "breaker state without a breaker config",
                });
            };
            let mut b = CircuitBreaker::new(bcfg);
            b.restore_state(&mut r)?;
            if breakers.insert(slot, b).is_some() {
                return Err(RestoreError::Malformed {
                    context: "duplicate breaker slot",
                });
            }
        }
        let hedge_arms = BTreeMap::restore(&mut r)?;
        let ov_stats = OverloadStats::restore(&mut r)?;
        let brownout = r.bool()?;
        let brownout_saved_scrub = BTreeMap::restore(&mut r)?;
        if !r.is_empty() {
            return Err(RestoreError::Malformed {
                context: "trailing bytes in system section",
            });
        }

        // Tracer wiring has to exist before the channels restore so
        // every clone shares the overlaid ring; the ring *contents*
        // are overlaid last, after all state is in place. A snapshot
        // taken untraced restores to an untraced system — continuing
        // with a live tracer would diverge from the straight run.
        let has_tracer = img.names().any(|n| n == "tracer");
        if has_tracer && !self.tracer.is_enabled() {
            self.enable_tracing(1); // real capacity overlaid below
        } else if !has_tracer && self.tracer.is_enabled() {
            for c in &mut self.channels {
                c.channel.attach_tracer(Tracer::off());
            }
            self.tracer = Tracer::off();
        }

        for i in 0..self.channels.len() {
            let slot = self.channels[i].slot;
            let mut cr = img.section(&format!("channel.{slot}"))?;
            let s = usize::restore(&mut cr)?;
            if s != slot {
                return Err(RestoreError::TopologyMismatch {
                    context: "channel section slot",
                });
            }
            let kind = MediaKind::restore(&mut cr)?;
            if kind != self.channels[i].kind {
                return Err(RestoreError::TopologyMismatch {
                    context: "channel media kind",
                });
            }
            let capacity = cr.u64()?;
            if capacity != self.channels[i].capacity {
                return Err(RestoreError::TopologyMismatch {
                    context: "channel capacity",
                });
            }
            let training = TrainingOutcome::restore(&mut cr)?;
            self.channels[i].channel.restore_state(&mut cr)?;
            if !cr.is_empty() {
                return Err(RestoreError::Malformed {
                    context: "trailing bytes in channel section",
                });
            }
            self.channels[i].training = training;
        }

        self.memory_map = memory_map;
        self.migration = migration;
        self.written = written;
        self.inherited_poison = inherited_poison;
        self.stats = stats;
        self.power = power;
        self.powered = powered;
        self.power_stats = power_stats;
        self.nvdimm_armed = nvdimm_armed;
        self.next_req = next_req;
        self.outstanding = outstanding;
        self.route_back = route_back;
        self.finished_sys = finished_sys;
        self.mlp_stats = mlp_stats;
        self.overload = overload;
        for c in &mut self.channels {
            c.channel.set_retry_budget(budget.clone());
        }
        self.retry_budget = budget;
        self.breakers = breakers;
        self.hedge_arms = hedge_arms;
        self.ov_stats = ov_stats;
        self.brownout = brownout;
        self.brownout_saved_scrub = brownout_saved_scrub;

        if has_tracer {
            let mut tr = img.section("tracer")?;
            self.tracer.restore_state(&mut tr)?;
            if !tr.is_empty() {
                return Err(RestoreError::Malformed {
                    context: "trailing bytes in tracer section",
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::firmware::layouts;
    use contutto_core::{ContuttoConfig, MemoryKind, MemoryPopulation};

    /// A small NVDIMM population so save/restore sweeps stay fast.
    fn nvdimm_small() -> MemoryPopulation {
        MemoryPopulation {
            kind: MemoryKind::NvdimmN,
            dimm_capacity: 512 << 10,
            dimms: 2,
        }
    }

    #[test]
    fn boots_mixed_system_and_routes_loads() {
        let mut sys = Power8System::boot(
            layouts::one_contutto_six_cdimm(ContuttoConfig::base(), MemoryPopulation::dram_8gb()),
            7,
        )
        .unwrap();
        // Store then load in low DRAM (a CDIMM channel).
        let line = CacheLine::patterned(3);
        sys.store_line(0x100_0000, line).unwrap();
        let (back, _) = sys.load_line(0x100_0000).unwrap();
        assert_eq!(back, line);
        assert!(sys.os_visible_bytes() > 8 << 30);
    }

    #[test]
    fn mram_region_routes_to_contutto_slot() {
        let mut sys = Power8System::boot(layouts::mram_storage_system(), 5).unwrap();
        let nv_slots = sys.nonvolatile_slots();
        assert_eq!(nv_slots.len(), 2);
        let nv_region_base = sys.memory_map().nonvolatile_regions()[0].base;
        assert_eq!(sys.media_at(nv_region_base), Some(MediaKind::SttMram));
        // Persist a line into MRAM.
        let line = CacheLine::patterned(9);
        sys.store_line(nv_region_base, line).unwrap();
        let (back, _) = sys.load_line(nv_region_base).unwrap();
        assert_eq!(back, line);
        let (slot, _) = sys.route(nv_region_base).unwrap();
        assert!(nv_slots.contains(&slot));
    }

    #[test]
    fn contutto_channel_is_measurably_slower_in_system() {
        let mut sys = Power8System::boot(
            layouts::single_contutto_for_latency(ContuttoConfig::base()),
            3,
        )
        .unwrap();
        // Warm both regions.
        let dram_lo = 0u64;
        let contutto_region = sys
            .memory_map()
            .regions()
            .iter()
            .find(|r| r.channel == 2)
            .unwrap()
            .base;
        sys.load_line(dram_lo).unwrap();
        sys.load_line(contutto_region).unwrap();

        let t0 = sys.channel_mut(0).unwrap().channel.now();
        sys.load_line(dram_lo).unwrap();
        let cdimm_lat = sys.channel_mut(0).unwrap().channel.now() - t0;

        let t0 = sys.channel_mut(2).unwrap().channel.now();
        sys.load_line(contutto_region).unwrap();
        let contutto_lat = sys.channel_mut(2).unwrap().channel.now() - t0;
        assert!(contutto_lat > cdimm_lat * 3);
    }

    #[test]
    fn health_check_logs_recovered_errors() {
        use crate::channel::{ChannelConfig, DmiChannel};
        use contutto_centaur::{Centaur, CentaurConfig};
        use contutto_dmi::link::BitErrorInjector;
        // Build a system, then swap in a noisy channel to generate
        // recovered errors the sweep should pick up.
        let mut sys = Power8System::boot(
            layouts::one_contutto_six_cdimm(ContuttoConfig::base(), MemoryPopulation::dram_8gb()),
            7,
        )
        .unwrap();
        sys.health_check(SimTime::from_ms(1));
        assert!(
            !sys.fsp()
                .entries()
                .any(|e| e.severity == crate::fsp::Severity::Recovered),
            "clean system logs no recovered errors"
        );
        // Make channel 2 noisy and exercise it.
        let mut cfg = ChannelConfig::centaur();
        cfg.down_errors = BitErrorInjector::bernoulli(0.05, 5);
        let noisy = DmiChannel::new(
            cfg,
            Box::new(Centaur::new(CentaurConfig::optimized(), 32 << 30)),
        );
        sys.channel_mut(2).unwrap().channel = noisy;
        for i in 0..10 {
            sys.load_line((8u64 << 30) + i * 128).unwrap();
        }
        sys.health_check(SimTime::from_ms(2));
        let recovered: Vec<_> = sys
            .fsp()
            .entries()
            .filter(|e| e.severity == crate::fsp::Severity::Recovered)
            .collect();
        assert!(!recovered.is_empty(), "noisy channel shows in the sweep");
        assert!(recovered[0].message.contains("recovered"));
        // Recovered errors never deconfigure.
        assert!(sys.fsp().deconfigured_channels().is_empty());
    }

    #[test]
    fn unmapped_media_query_is_none() {
        let sys = Power8System::boot(
            layouts::one_contutto_six_cdimm(ContuttoConfig::base(), MemoryPopulation::dram_8gb()),
            7,
        )
        .unwrap();
        assert_eq!(sys.media_at(1 << 45), None);
    }

    #[test]
    fn unmapped_access_returns_typed_error_not_panic() {
        let mut sys = Power8System::boot(
            layouts::one_contutto_six_cdimm(ContuttoConfig::base(), MemoryPopulation::dram_8gb()),
            7,
        )
        .unwrap();
        let phys = 1u64 << 45;
        assert_eq!(
            sys.load_line(phys),
            Err(SystemError::Route(RouteError::Unmapped { phys }))
        );
        assert_eq!(
            sys.store_line(phys, CacheLine::patterned(1)),
            Err(SystemError::Route(RouteError::Unmapped { phys }))
        );
    }

    #[test]
    fn deconfigured_channel_access_returns_typed_error() {
        let mut sys = Power8System::boot(
            layouts::one_contutto_six_cdimm(ContuttoConfig::base(), MemoryPopulation::dram_8gb()),
            7,
        )
        .unwrap();
        let (slot, _) = sys.route(0).unwrap();
        sys.fsp_mut().deconfigure(SimTime::ZERO, slot, "test");
        assert_eq!(
            sys.load_line(0),
            Err(SystemError::Fsp(FspError::ChannelDeconfigured {
                channel: slot
            }))
        );
        assert_eq!(
            sys.store_line(0, CacheLine::patterned(2)),
            Err(SystemError::Fsp(FspError::ChannelDeconfigured {
                channel: slot
            }))
        );
    }

    #[test]
    fn maintenance_pull_without_target_is_typed_error() {
        let mut sys = Power8System::boot(
            layouts::one_contutto_six_cdimm(ContuttoConfig::base(), MemoryPopulation::dram_8gb()),
            7,
        )
        .unwrap();
        let (slot, _) = sys.route(0).unwrap();
        // No failover mode: the pull is refused (typed), and the slot
        // stays deconfigured.
        assert!(matches!(
            sys.maintenance_pull(slot),
            Err(SystemError::Fsp(FspError::ChannelDeconfigured { .. }))
        ));
        assert!(sys.fsp().is_deconfigured(slot));
    }

    #[test]
    fn store_in_flight_at_maintenance_pull_survives_evacuation() {
        // Found by the chaos campaign: a pipelined store whose
        // completion the quiesce drained but nobody had polled yet was
        // acked *after* the remap, while the evacuation snapshot —
        // taken from `written`, which only updates at completion
        // translation — missed its line. The ack was then a lie: the
        // data stayed on the deconfigured victim and the spare served
        // zeros (or a stale copy) for a store software saw succeed.
        let mut sys = Power8System::boot_with_failover(
            layouts::failover_pair(ContuttoConfig::base(), MemoryPopulation::dram_8gb()),
            13,
            FailoverMode::Spare { spare: 4 },
        )
        .unwrap();
        let base = sys
            .memory_map()
            .regions()
            .iter()
            .find(|r| r.channel == 2)
            .unwrap()
            .base;
        let line = CacheLine::patterned(77);
        let id = sys.submit_store(base, line).unwrap();
        // Pull the card with the store still in flight — no poll in
        // between, so `written` has never heard of the line.
        sys.maintenance_pull(2).unwrap();
        let acked = sys
            .drain()
            .into_iter()
            .any(|(rid, r)| rid == id && r.is_ok());
        sys.complete_migration();
        let read = sys.load_line(base);
        match read {
            Ok((back, _)) => assert_eq!(
                back, line,
                "spare serves wrong bytes for a store software saw acked: {acked}"
            ),
            // A typed loss would also honour the contract — but only
            // if the store was never acknowledged as durable.
            Err(e) => assert!(!acked, "store acked, then lost as {e:?}"),
        }
    }

    #[test]
    fn inherited_poison_never_charges_the_spare() {
        let mut sys = Power8System::boot_with_failover(
            layouts::failover_pair(ContuttoConfig::base(), MemoryPopulation::dram_8gb()),
            11,
            FailoverMode::Spare { spare: 4 },
        )
        .unwrap();
        let base = sys
            .memory_map()
            .regions()
            .iter()
            .find(|r| r.channel == 2)
            .unwrap()
            .base;
        let line = CacheLine::patterned(21);
        sys.store_line(base, line).unwrap();
        // Rot the line in place on the victim, then pull the card: the
        // evacuation must carry the poison marker across.
        let ch = sys.channel_mut(2).unwrap();
        let now = ch.channel.now();
        let (bytes, poisoned) = ch.channel.buffer_mut().sideband_read_line(now, 0).unwrap();
        assert!(!poisoned);
        assert!(ch.channel.buffer_mut().sideband_write_line(0, &bytes, true));
        sys.maintenance_pull(2).unwrap();
        sys.complete_migration();
        assert_eq!(sys.failover_stats().poison_migrated, 1);
        // Consuming inherited rot machine-checks the reader every
        // time, but is not evidence against the spare's hardware: with
        // a budget of 3, eight reads must not deconfigure slot 4.
        for _ in 0..8 {
            assert!(matches!(
                sys.load_line(base),
                Err(SystemError::Dmi(DmiError::Poisoned { .. }))
            ));
        }
        assert!(
            !sys.fsp().is_deconfigured(4),
            "inherited poison charged the spare's error budget"
        );
        // Fresh demand data overwrites the rot.
        let fresh = CacheLine::patterned(22);
        sys.store_line(base, fresh).unwrap();
        let (back, _) = sys.load_line(base).unwrap();
        assert_eq!(back, fresh);
    }

    #[test]
    fn epow_cut_reboot_preserves_nvdimm_and_discards_dram() {
        let mut sys = Power8System::boot(
            layouts::one_contutto_six_cdimm(ContuttoConfig::base(), nvdimm_small()),
            7,
        )
        .unwrap();
        let nv_base = sys.memory_map().nonvolatile_regions()[0].base;
        for i in 0..8u64 {
            sys.store_line(nv_base + i * 128, CacheLine::patterned(i + 1))
                .unwrap();
        }
        let dram_addr = 0x10_0000u64;
        sys.store_line(dram_addr, CacheLine::patterned(0xAA))
            .unwrap();

        let epow = sys.epow();
        assert!(epow.completed, "ideal budget runs all four stages");
        assert_eq!(epow.stages_completed, 4);
        assert_eq!(epow.armed_slots, vec![0]);
        assert_eq!(epow.lines_flushed, 9);

        let quiet = sys.power_cut(epow.done_at + SimTime::from_us(1));
        assert!(quiet > epow.done_at, "the supercap save takes real time");
        assert!(!sys.powered());
        assert_eq!(sys.load_line(nv_base), Err(SystemError::PoweredOff));
        assert_eq!(
            sys.store_line(nv_base, CacheLine::patterned(9)),
            Err(SystemError::PoweredOff)
        );

        let report = sys.reboot(quiet + SimTime::from_ms(50)).unwrap();
        assert!(report.data_loss.is_empty(), "{:?}", report.data_loss);
        assert!(report.retrain_failures.is_empty());
        assert_eq!(report.restored_slots, vec![0]);
        assert!(sys.powered());
        for i in 0..8u64 {
            let (back, _) = sys.load_line(nv_base + i * 128).unwrap();
            assert_eq!(back, CacheLine::patterned(i + 1), "nv line {i}");
        }
        // DRAM is volatile: it comes back zeroed, never stale.
        let (back, _) = sys.load_line(dram_addr).unwrap();
        assert_eq!(back, CacheLine::default());
        let m = sys.metrics();
        assert_eq!(m.counter("system.power.cuts"), 1);
        assert_eq!(m.counter("system.power.reboots"), 1);
        assert_eq!(m.counter("system.power.restores_failed"), 0);
    }

    #[test]
    fn starved_supercap_is_a_typed_torn_save_never_silent() {
        let mut sys = Power8System::boot(
            layouts::one_contutto_six_cdimm(ContuttoConfig::base(), nvdimm_small()),
            11,
        )
        .unwrap();
        sys.configure_power(PowerConfig {
            holdup_budget_nj: None,
            // Four pages of energy against a 128-page DIMM: the save
            // tears partway through.
            nvdimm_supercap_nj: Some(contutto_memdev::SAVE_COST_PER_PAGE_NJ * 4),
        });
        let nv_base = sys.memory_map().nonvolatile_regions()[0].base;
        let line = CacheLine::patterned(42);
        sys.store_line(nv_base, line).unwrap();

        let epow = sys.epow();
        let quiet = sys.power_cut(epow.done_at + SimTime::from_us(1));
        let report = sys.reboot(quiet + SimTime::from_ms(50)).unwrap();
        assert_eq!(
            report.data_loss,
            vec![DataLoss {
                slot: 0,
                outcome: PowerRestoreOutcome::TornSave
            }]
        );
        assert_eq!(sys.power_stats().saves_torn, 1);
        assert!(sys
            .fsp()
            .entries()
            .any(|e| e.message.contains("machine check") && e.message.contains("torn")));
        // The torn image is discarded, not partially served: reads
        // come back empty.
        let (back, _) = sys.load_line(nv_base).unwrap();
        assert_eq!(back, CacheLine::default());
    }

    #[test]
    fn starved_holdup_stops_the_epow_cascade_where_it_stands() {
        let mut sys = Power8System::boot(
            layouts::one_contutto_six_cdimm(ContuttoConfig::base(), nvdimm_small()),
            3,
        )
        .unwrap();
        sys.configure_power(PowerConfig {
            holdup_budget_nj: Some(EPOW_CORE_FLUSH_COST_PER_LINE_NJ * 2),
            nvdimm_supercap_nj: None,
        });
        for i in 0..8u64 {
            sys.store_line(0x10_0000 + i * 128, CacheLine::patterned(i))
                .unwrap();
        }
        let epow = sys.epow();
        assert!(!epow.completed);
        assert_eq!(epow.stages_completed, 0, "died mid-stage-1");
        assert_eq!(epow.lines_flushed, 2, "only what the budget affords");
        assert!(sys
            .fsp()
            .entries()
            .any(|e| e.message.contains("exhausted in stage 1")));
    }

    #[test]
    fn disarmed_nvdimm_loss_is_reported_not_silent() {
        let mut sys = Power8System::boot(
            layouts::one_contutto_six_cdimm(ContuttoConfig::base(), nvdimm_small()),
            5,
        )
        .unwrap();
        assert_eq!(sys.set_nvdimm_armed(false), vec![0]);
        let nv_base = sys.memory_map().nonvolatile_regions()[0].base;
        sys.store_line(nv_base, CacheLine::patterned(7)).unwrap();

        let epow = sys.epow();
        assert!(epow.armed_slots.is_empty());
        assert!(sys.fsp().entries().any(|e| e.message.contains("not armed")));
        let quiet = sys.power_cut(epow.done_at + SimTime::from_us(1));
        let report = sys.reboot(quiet + SimTime::from_ms(50)).unwrap();
        assert_eq!(report.data_loss.len(), 1);
        assert_eq!(report.data_loss[0].slot, 0);
        assert!(report.data_loss[0].outcome.is_data_loss());
        let (back, _) = sys.load_line(nv_base).unwrap();
        assert_eq!(back, CacheLine::default());
    }

    /// Rendered metrics minus the `system.snapshot.*` observer
    /// namespace, which by design differs between a straight run and a
    /// restored run.
    fn metrics_sans_snapshot(sys: &Power8System) -> String {
        sys.metrics()
            .render()
            .lines()
            .filter(|l| !l.contains("system.snapshot."))
            .collect::<Vec<_>>()
            .join("\n")
    }

    #[test]
    fn snapshot_restore_continue_matches_straight_run() {
        let boot = || {
            Power8System::boot(
                layouts::one_contutto_six_cdimm(ContuttoConfig::base(), nvdimm_small()),
                11,
            )
            .unwrap()
        };
        let mut straight = boot();
        straight.enable_tracing(256);
        // Prefix: mixed stores and pipelined loads, leaving requests
        // in flight at the cut so the MLP plumbing has to survive.
        for i in 0..6u64 {
            straight
                .store_line(0x10_0000 + i * 128, CacheLine::patterned(i))
                .unwrap();
        }
        let mut pending = Vec::new();
        for i in 0..4u64 {
            pending.push(straight.submit_load(0x10_0000 + i * 128).unwrap());
        }
        let image = straight.snapshot();

        // Straight leg: drain and keep going.
        let straight_results: Vec<_> = pending
            .iter()
            .map(|&id| straight.wait_req(id).unwrap())
            .collect();
        for i in 0..4u64 {
            straight
                .store_line(0x20_0000 + i * 128, CacheLine::patterned(100 + i))
                .unwrap();
        }
        let straight_fp = straight.tracer.fingerprint();
        let straight_metrics = metrics_sans_snapshot(&straight);

        // Restored leg: fresh boot, overlay, same suffix.
        let mut resumed = boot();
        resumed.restore(&image).unwrap();
        assert!(resumed.tracer.is_enabled(), "tracer section restored");
        let resumed_results: Vec<_> = pending
            .iter()
            .map(|&id| resumed.wait_req(id).unwrap())
            .collect();
        for i in 0..4u64 {
            resumed
                .store_line(0x20_0000 + i * 128, CacheLine::patterned(100 + i))
                .unwrap();
        }
        assert_eq!(straight_results, resumed_results);
        assert_eq!(straight_fp, resumed.tracer.fingerprint());
        assert_eq!(straight_metrics, metrics_sans_snapshot(&resumed));
        assert_eq!(resumed.metrics().counter("system.snapshot.restores"), 1);
    }

    #[test]
    fn restore_rejects_wrong_topology() {
        let mut small = Power8System::boot(
            layouts::all_cdimm(contutto_centaur::CentaurConfig::optimized(), 1 << 30),
            3,
        )
        .unwrap();
        let image = small.snapshot();
        let mut other = Power8System::boot(
            layouts::one_contutto_six_cdimm(ContuttoConfig::base(), nvdimm_small()),
            3,
        )
        .unwrap();
        let err = other.restore(&image).unwrap_err();
        assert!(
            matches!(err, RestoreError::TopologyMismatch { .. }),
            "got {err:?}"
        );
        assert_eq!(
            other.metrics().counter("system.snapshot.restore_failures"),
            1
        );
    }

    #[test]
    fn restore_rejects_unknown_section() {
        let mut sys = Power8System::boot(
            layouts::one_contutto_six_cdimm(ContuttoConfig::base(), nvdimm_small()),
            9,
        )
        .unwrap();
        let image = sys.snapshot();
        let img = SnapshotImage::parse(&image).unwrap();
        let mut w = SnapshotWriter::new();
        for name in img.names() {
            let mut r = img.section(name).unwrap();
            let payload = r.take(r.remaining()).unwrap().to_vec();
            w.section(name, payload);
        }
        w.section("mystery", vec![1, 2, 3]);
        let err = sys.restore(&w.finish()).unwrap_err();
        assert!(
            matches!(err, RestoreError::UnknownSection { ref section } if section == "mystery"),
            "got {err:?}"
        );
    }
}
