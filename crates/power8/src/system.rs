//! A whole POWER8 S824-class system.
//!
//! [`Power8System`] ties the firmware boot, the service processor, the
//! memory map and the live channels together, and routes software
//! loads/stores to the right channel by physical address.

use contutto_dmi::command::CacheLine;
use contutto_dmi::DmiError;
use contutto_memdev::MediaKind;
use contutto_sim::SimTime;

use crate::firmware::{BootError, BootReport, BootedChannel, Firmware, SlotPopulation};
use crate::fsp::ServiceProcessor;
use crate::memmap::MemoryMap;

/// A booted system.
pub struct Power8System {
    channels: Vec<BootedChannel>,
    memory_map: MemoryMap,
    fsp: ServiceProcessor,
}

impl std::fmt::Debug for Power8System {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Power8System")
            .field("channels", &self.channels.len())
            .finish_non_exhaustive()
    }
}

impl Power8System {
    /// Boots a system from a slot layout.
    ///
    /// # Errors
    ///
    /// Propagates [`BootError`] from the firmware.
    pub fn boot(slots: Vec<SlotPopulation>, seed: u64) -> Result<Self, BootError> {
        let mut fsp = ServiceProcessor::new(3);
        let report = Firmware::new().boot(slots, &mut fsp, seed)?;
        let BootReport {
            channels,
            memory_map,
            ..
        } = report;
        Ok(Power8System {
            channels,
            memory_map,
            fsp,
        })
    }

    /// The memory map.
    pub fn memory_map(&self) -> &MemoryMap {
        &self.memory_map
    }

    /// The service processor (logs, deconfig state).
    pub fn fsp(&self) -> &ServiceProcessor {
        &self.fsp
    }

    /// Live channels.
    pub fn channels(&self) -> &[BootedChannel] {
        &self.channels
    }

    /// Mutable access to a channel by slot.
    pub fn channel_mut(&mut self, slot: usize) -> Option<&mut BootedChannel> {
        self.channels.iter_mut().find(|c| c.slot == slot)
    }

    /// The slot serving a physical address, with the channel-local
    /// line address.
    pub fn route(&self, phys: u64) -> Option<(usize, u64)> {
        let (region_idx, offset) = self.memory_map.resolve(phys)?;
        let region = &self.memory_map.regions()[region_idx];
        Some((region.channel, offset))
    }

    /// Software cache-line load at a physical address, through the
    /// owning channel.
    ///
    /// # Errors
    ///
    /// [`DmiError::MalformedFrame`] is never returned here; tag
    /// exhaustion propagates. Addresses outside the map panic (the OS
    /// would machine-check).
    ///
    /// # Panics
    ///
    /// Panics on unmapped addresses or a hung channel.
    pub fn load_line(&mut self, phys: u64) -> Result<(CacheLine, SimTime), DmiError> {
        let (slot, local) = self.route(phys).expect("unmapped address");
        let ch = self
            .channel_mut(slot)
            .expect("memory map references live channels");
        ch.channel.read_line_blocking(local & !127)
    }

    /// Software cache-line store.
    ///
    /// # Errors
    ///
    /// Propagates tag exhaustion.
    ///
    /// # Panics
    ///
    /// Panics on unmapped addresses or a hung channel.
    pub fn store_line(&mut self, phys: u64, data: CacheLine) -> Result<SimTime, DmiError> {
        let (slot, local) = self.route(phys).expect("unmapped address");
        let ch = self
            .channel_mut(slot)
            .expect("memory map references live channels");
        ch.channel.write_line_blocking(local & !127, data)
    }

    /// The non-volatile channels (pmem driver targets).
    pub fn nonvolatile_slots(&self) -> Vec<usize> {
        self.channels
            .iter()
            .filter(|c| c.kind.is_nonvolatile())
            .map(|c| c.slot)
            .collect()
    }

    /// Total OS-visible memory.
    pub fn os_visible_bytes(&self) -> u64 {
        self.memory_map.regions().iter().map(|r| r.os_size).sum()
    }

    /// Periodic FSP health sweep (paper §3.2: the service processor
    /// "periodically checks the correct operation of all the
    /// hardware"): logs recovered link errors (CRC/replay) per
    /// channel since the last sweep.
    pub fn health_check(&mut self, at: SimTime) {
        let mut events = Vec::new();
        for c in &self.channels {
            let s = c.channel.host_stats();
            if s.crc_errors + s.seq_errors + s.replays_triggered > 0 {
                events.push((
                    c.slot,
                    format!(
                        "{} crc, {} seq errors; {} replays (recovered)",
                        s.crc_errors, s.seq_errors, s.replays_triggered
                    ),
                ));
            }
        }
        for (slot, msg) in events {
            self.fsp
                .log(at, slot, crate::fsp::Severity::Recovered, &msg);
        }
    }

    /// Media kind at a physical address.
    pub fn media_at(&self, phys: u64) -> Option<MediaKind> {
        let (region_idx, _) = self.memory_map.resolve(phys)?;
        Some(self.memory_map.regions()[region_idx].flags.kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::firmware::layouts;
    use contutto_core::{ContuttoConfig, MemoryPopulation};

    #[test]
    fn boots_mixed_system_and_routes_loads() {
        let mut sys = Power8System::boot(
            layouts::one_contutto_six_cdimm(ContuttoConfig::base(), MemoryPopulation::dram_8gb()),
            7,
        )
        .unwrap();
        // Store then load in low DRAM (a CDIMM channel).
        let line = CacheLine::patterned(3);
        sys.store_line(0x100_0000, line).unwrap();
        let (back, _) = sys.load_line(0x100_0000).unwrap();
        assert_eq!(back, line);
        assert!(sys.os_visible_bytes() > 8 << 30);
    }

    #[test]
    fn mram_region_routes_to_contutto_slot() {
        let mut sys = Power8System::boot(layouts::mram_storage_system(), 5).unwrap();
        let nv_slots = sys.nonvolatile_slots();
        assert_eq!(nv_slots.len(), 2);
        let nv_region_base = sys.memory_map().nonvolatile_regions()[0].base;
        assert_eq!(sys.media_at(nv_region_base), Some(MediaKind::SttMram));
        // Persist a line into MRAM.
        let line = CacheLine::patterned(9);
        sys.store_line(nv_region_base, line).unwrap();
        let (back, _) = sys.load_line(nv_region_base).unwrap();
        assert_eq!(back, line);
        let (slot, _) = sys.route(nv_region_base).unwrap();
        assert!(nv_slots.contains(&slot));
    }

    #[test]
    fn contutto_channel_is_measurably_slower_in_system() {
        let mut sys = Power8System::boot(
            layouts::single_contutto_for_latency(ContuttoConfig::base()),
            3,
        )
        .unwrap();
        // Warm both regions.
        let dram_lo = 0u64;
        let contutto_region = sys
            .memory_map()
            .regions()
            .iter()
            .find(|r| r.channel == 2)
            .unwrap()
            .base;
        sys.load_line(dram_lo).unwrap();
        sys.load_line(contutto_region).unwrap();

        let t0 = sys.channel_mut(0).unwrap().channel.now();
        sys.load_line(dram_lo).unwrap();
        let cdimm_lat = sys.channel_mut(0).unwrap().channel.now() - t0;

        let t0 = sys.channel_mut(2).unwrap().channel.now();
        sys.load_line(contutto_region).unwrap();
        let contutto_lat = sys.channel_mut(2).unwrap().channel.now() - t0;
        assert!(contutto_lat > cdimm_lat * 3);
    }

    #[test]
    fn health_check_logs_recovered_errors() {
        use crate::channel::{ChannelConfig, DmiChannel};
        use contutto_centaur::{Centaur, CentaurConfig};
        use contutto_dmi::link::BitErrorInjector;
        // Build a system, then swap in a noisy channel to generate
        // recovered errors the sweep should pick up.
        let mut sys = Power8System::boot(
            layouts::one_contutto_six_cdimm(ContuttoConfig::base(), MemoryPopulation::dram_8gb()),
            7,
        )
        .unwrap();
        sys.health_check(SimTime::from_ms(1));
        assert!(
            !sys.fsp()
                .entries()
                .iter()
                .any(|e| e.severity == crate::fsp::Severity::Recovered),
            "clean system logs no recovered errors"
        );
        // Make channel 2 noisy and exercise it.
        let mut cfg = ChannelConfig::centaur();
        cfg.down_errors = BitErrorInjector::bernoulli(0.05, 5);
        let noisy = DmiChannel::new(
            cfg,
            Box::new(Centaur::new(CentaurConfig::optimized(), 32 << 30)),
        );
        sys.channel_mut(2).unwrap().channel = noisy;
        for i in 0..10 {
            sys.load_line((8u64 << 30) + i * 128).unwrap();
        }
        sys.health_check(SimTime::from_ms(2));
        let recovered: Vec<_> = sys
            .fsp()
            .entries()
            .iter()
            .filter(|e| e.severity == crate::fsp::Severity::Recovered)
            .collect();
        assert!(!recovered.is_empty(), "noisy channel shows in the sweep");
        assert!(recovered[0].message.contains("recovered"));
        // Recovered errors never deconfigure.
        assert!(sys.fsp().deconfigured_channels().is_empty());
    }

    #[test]
    fn unmapped_media_query_is_none() {
        let sys = Power8System::boot(
            layouts::one_contutto_six_cdimm(ContuttoConfig::base(), MemoryPopulation::dram_8gb()),
            7,
        )
        .unwrap();
        assert_eq!(sys.media_at(1 << 45), None);
    }
}
