//! One DMI memory channel, end to end.
//!
//! [`DmiChannel`] assembles the host-side link endpoint, the two wire
//! segments, the buffer-side endpoint and a buffer chip model (Centaur
//! or ConTutto) into a steppable simulation. It implements the
//! command loop of paper §2.3: commands acquire one of 32 tags, write
//! data follows in beats, read data and done notifications are paired
//! back by tag, and a tag frees only when its done arrives — so a
//! slow buffer visibly throttles the processor, exactly the effect
//! the paper warns about.
//!
//! Commands flow through a **non-blocking submit/poll path**: software
//! enqueues tagged commands with [`DmiChannel::enqueue_command`], the
//! channel keeps up to a configurable window of them in flight at
//! once, and finished commands are collected with
//! [`DmiChannel::poll_command`]. The degradation ladder
//! ([`RetryPolicy`]) is **per tag**, advanced by [`DmiChannel::step`]:
//! each in-flight command carries its own deadline, attempt count and
//! retrain budget, so one hung tag times out, backs off and retries
//! while its neighbours keep completing. Escalation to a full link
//! retrain ([`DmiChannel::retrain`]) reclaims *every* in-flight tag
//! and requeues the innocent bystanders; a command that exhausts its
//! ladder surfaces a typed [`DmiError::Timeout`]. Tags abandoned by
//! timed-out commands are quarantined and reclaimed instead of leaked.
//! The blocking helpers are thin shims over this path.

use std::collections::{BTreeMap, VecDeque};

use contutto_dmi::buffer::{DmiBuffer, PowerRestoreOutcome};
use contutto_dmi::command::{CacheLine, CommandOp, Tag, TagPool, NUM_TAGS};
use contutto_dmi::frame::{
    line_to_downstream_beats, CommandHeader, DownstreamFrame, DownstreamPayload, LineAssembler,
    UpstreamFrame, UpstreamPayload,
};
use contutto_dmi::link::{BitErrorInjector, LinkSegment, LinkSpeed};
use contutto_dmi::protocol::{LinkEndpoint, LinkEndpointConfig};
use contutto_dmi::training::{measure_frtl, LinkTrainer, TrainerConfig, TrainingOutcome};
use contutto_dmi::DmiError;
use contutto_sim::snapshot::{Persist, RestoreError, SnapReader};
use contutto_sim::{Frequency, LatencyStats, MetricsRegistry, SimTime, TraceEvent, Tracer};

type HostEndpoint = LinkEndpoint<DownstreamFrame, UpstreamFrame>;
type BufferEndpoint = LinkEndpoint<UpstreamFrame, DownstreamFrame>;

/// Wire propagation latency of each channel direction.
pub const WIRE_PROPAGATION: SimTime = SimTime::from_ns(1);

/// Sim time a retrain waits with no commands pending so that buffer
/// responses to aborted commands arrive (and are absorbed as stale)
/// before tags can be reused. Covers the slowest buffer turnaround.
const RETRAIN_SETTLE: SimTime = SimTime::from_us(4);

/// The degradation ladder for blocking channel operations.
///
/// Each attempt waits `op_timeout` of sim time for the command to
/// complete. A timed-out attempt abandons its tag (quarantining it for
/// reclamation), backs off — doubling each retry — and resubmits. When
/// `max_attempts` are exhausted, the channel escalates to a full link
/// retrain (paper §3.4: firmware retrains the link without bringing
/// the system down) and starts a fresh attempt budget; after
/// `max_retrains` escalations the hang is surfaced as
/// [`DmiError::Timeout`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Per-attempt completion deadline in sim time.
    pub op_timeout: SimTime,
    /// Blocking attempts per training epoch (≥ 1).
    pub max_attempts: u32,
    /// Backoff before the second attempt; doubles every retry.
    pub base_backoff: SimTime,
    /// Full link retrains before the error is surfaced.
    pub max_retrains: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            op_timeout: SimTime::from_ms(1),
            max_attempts: 3,
            base_backoff: SimTime::from_us(4),
            max_retrains: 1,
        }
    }
}

/// Channel construction parameters.
#[derive(Debug, Clone)]
pub struct ChannelConfig {
    /// Link speed (8 Gb/s for ConTutto, 9.6 Gb/s for Centaur).
    pub speed: LinkSpeed,
    /// Error injection on the downstream wire.
    pub down_errors: BitErrorInjector,
    /// Error injection on the upstream wire.
    pub up_errors: BitErrorInjector,
    /// Buffer-side endpoint configuration (freeze workaround etc.).
    pub buffer_endpoint: LinkEndpointConfig,
}

impl ChannelConfig {
    /// Clean Centaur channel at 9.6 Gb/s.
    pub fn centaur() -> Self {
        ChannelConfig {
            speed: LinkSpeed::Gbps9_6,
            down_errors: BitErrorInjector::never(),
            up_errors: BitErrorInjector::never(),
            buffer_endpoint: LinkEndpointConfig::centaur_buffer(),
        }
    }

    /// Clean ConTutto channel at 8 Gb/s with the freeze workaround.
    pub fn contutto() -> Self {
        ChannelConfig {
            speed: LinkSpeed::Gbps8,
            down_errors: BitErrorInjector::never(),
            up_errors: BitErrorInjector::never(),
            buffer_endpoint: LinkEndpointConfig::contutto_buffer(),
        }
    }
}

/// Identifier of a tracked command on the submit/poll path.
///
/// Monotonic per channel and never reused — a command keeps its id
/// across retries, backoffs and retrains, even though each attempt
/// rides a different link tag.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CmdId(u64);

impl CmdId {
    /// The raw monotonic counter value.
    pub fn raw(&self) -> u64 {
        self.0
    }
}

/// A tracked command waiting on the software issue queue — either
/// freshly enqueued or parked for a retry backoff.
#[derive(Debug, Clone)]
struct QueuedCmd {
    op: CommandOp,
    /// When the command first entered the queue (ladder accounting).
    enqueued: SimTime,
    /// Attempt number the next issue will be (1-based).
    attempt: u32,
    /// Retrain escalations already spent on this command.
    retrains_used: u32,
    /// Absolute request deadline, if the submitter set one. An expired
    /// command is dropped instead of issued, and an expired retry is
    /// never re-queued.
    abs_deadline: Option<SimTime>,
}

/// Ladder state carried by an in-flight tracked command: its identity,
/// the op to resubmit on retry, and the per-attempt deadline that
/// `step()` checks every slot.
#[derive(Debug, Clone)]
struct TrackedPending {
    id: CmdId,
    op: CommandOp,
    enqueued: SimTime,
    attempt: u32,
    retrains_used: u32,
    deadline: SimTime,
    /// Absolute request deadline (see [`QueuedCmd::abs_deadline`]).
    abs_deadline: Option<SimTime>,
}

#[derive(Debug)]
struct Pending {
    issued: SimTime,
    addr: u64,
    assembler: Option<LineAssembler>,
    data: Option<CacheLine>,
    poisoned: bool,
    /// Present when this tag carries a tracked command; raw
    /// [`DmiChannel::submit`] tags have no ladder state.
    tracked: Option<TrackedPending>,
}

/// A completed command: tag, completion time, read data if any, and
/// the issue time (for latency accounting).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Completion {
    /// The command's tag (already released back to the pool).
    pub tag: Tag,
    /// When the done notification reached the host.
    pub completed_at: SimTime,
    /// When the command was submitted.
    pub issued_at: SimTime,
    /// Read data, for reads.
    pub data: Option<CacheLine>,
    /// Host address the command targeted (0 for flushes).
    pub addr: u64,
    /// True when any read-data beat carried the poison bit: the media
    /// flagged an uncorrectable error and `data` must not be consumed.
    pub poisoned: bool,
}

/// A full DMI channel with a plugged buffer chip.
///
/// # Example
///
/// ```
/// use contutto_power8::channel::{ChannelConfig, DmiChannel};
/// use contutto_centaur::{Centaur, CentaurConfig};
/// use contutto_dmi::CacheLine;
///
/// let mut ch = DmiChannel::new(
///     ChannelConfig::centaur(),
///     Box::new(Centaur::new(CentaurConfig::optimized(), 8 << 30)),
/// );
/// let line = CacheLine::patterned(1);
/// ch.write_line_blocking(0x1000, line)?;
/// let (back, when) = ch.read_line_blocking(0x1000)?;
/// assert_eq!(back, line);
/// assert!(when.as_ns() > 0);
/// # Ok::<(), contutto_dmi::DmiError>(())
/// ```
pub struct DmiChannel {
    host: HostEndpoint,
    buffer_ep: BufferEndpoint,
    down: LinkSegment,
    up: LinkSegment,
    buffer: Box<dyn DmiBuffer>,
    now: SimTime,
    slot: SimTime,
    tags: TagPool,
    pending: BTreeMap<Tag, Pending>,
    completions: VecDeque<Completion>,
    /// Tags abandoned by timed-out waiters, keyed to when they were
    /// parked. Held out of the pool until a late response proves them
    /// safe, a retrain flushes link state, or the quarantine ages out.
    quarantine: BTreeMap<Tag, SimTime>,
    /// Software issue queue for tracked commands, ordered by
    /// (not-before time, command id): retries park here through their
    /// backoff; fresh commands are keyed at their enqueue time.
    queue: BTreeMap<(SimTime, CmdId), QueuedCmd>,
    /// Results of finished tracked commands, indexed by id so targeted
    /// waiters never rescan a deque.
    finished: BTreeMap<CmdId, Result<Completion, DmiError>>,
    /// Finish order for fair [`DmiChannel::poll_command`] draining.
    finished_order: VecDeque<CmdId>,
    next_cmd: u64,
    /// Max tracked commands in flight at once (1..=NUM_TAGS).
    window: usize,
    /// No tracked command issues before this time — set across a link
    /// reset so the settle window is not polluted by fresh traffic.
    issue_hold: SimTime,
    retry: RetryPolicy,
    trained: Option<TrainingOutcome>,
    trainer_cfg: TrainerConfig,
    train_seed: u64,
    buffer_endpoint_cfg: LinkEndpointConfig,
    tracer: Tracer,
    command_latency: LatencyStats,
    tags_reclaimed: u64,
    retries_scheduled: u64,
    link_retrains: u64,
    stale_responses: u64,
    poisoned_reads: u64,
    rmw_aborts: u64,
    /// Shared retry budget: when set, every ladder backoff retry spends
    /// a token and every tracked success refills one. A denied spend
    /// skips the retry rung — the ladder falls through to retrain /
    /// the typed error instead of amplifying load.
    retry_budget: Option<std::rc::Rc<std::cell::RefCell<crate::overload::RetryBudget>>>,
    retries_denied: u64,
    /// Commands dropped (queued or timed out) because their absolute
    /// request deadline had already expired.
    deadline_drops: u64,
    /// A latency-degrade fault window: the in-flight window is clamped
    /// to 1 until this instant, then restored.
    degraded_until: Option<SimTime>,
    degraded_saved_window: usize,
    degrade_windows: u64,
}

impl std::fmt::Debug for DmiChannel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DmiChannel")
            .field("buffer", &self.buffer.name())
            .field("now", &self.now)
            .field("in_flight", &self.pending.len())
            .finish_non_exhaustive()
    }
}

impl DmiChannel {
    /// Builds a channel around a buffer chip.
    ///
    /// # Panics
    ///
    /// Panics if the endpoint configuration is invalid; use
    /// [`DmiChannel::try_new`] for a typed [`DmiError::Config`].
    pub fn new(cfg: ChannelConfig, buffer: Box<dyn DmiBuffer>) -> Self {
        Self::try_new(cfg, buffer).expect("valid channel config")
    }

    /// Builds a channel, validating the endpoint configurations first.
    ///
    /// # Errors
    ///
    /// Propagates [`DmiError::Config`] from
    /// [`LinkEndpointConfig::validate`].
    pub fn try_new(cfg: ChannelConfig, buffer: Box<dyn DmiBuffer>) -> Result<Self, DmiError> {
        let host = LinkEndpoint::try_new(LinkEndpointConfig::host())?;
        let buffer_ep = LinkEndpoint::try_new(cfg.buffer_endpoint.clone())?;
        Ok(DmiChannel {
            host,
            buffer_ep,
            down: LinkSegment::new(cfg.speed, WIRE_PROPAGATION, cfg.down_errors.clone()),
            up: LinkSegment::new(cfg.speed, WIRE_PROPAGATION, cfg.up_errors.clone()),
            buffer,
            now: SimTime::ZERO,
            slot: cfg.speed.frame_time(),
            tags: TagPool::new(),
            pending: BTreeMap::new(),
            completions: VecDeque::new(),
            quarantine: BTreeMap::new(),
            queue: BTreeMap::new(),
            finished: BTreeMap::new(),
            finished_order: VecDeque::new(),
            next_cmd: 0,
            window: NUM_TAGS,
            issue_hold: SimTime::ZERO,
            retry: RetryPolicy::default(),
            trained: None,
            trainer_cfg: TrainerConfig::default(),
            train_seed: 0,
            buffer_endpoint_cfg: cfg.buffer_endpoint,
            tracer: Tracer::off(),
            command_latency: LatencyStats::new(),
            tags_reclaimed: 0,
            retries_scheduled: 0,
            link_retrains: 0,
            stale_responses: 0,
            poisoned_reads: 0,
            rmw_aborts: 0,
            retry_budget: None,
            retries_denied: 0,
            deadline_drops: 0,
            degraded_until: None,
            degraded_saved_window: NUM_TAGS,
            degrade_windows: 0,
        })
    }

    /// Turns on structured tracing with a ring of `capacity` events and
    /// connects every layer of the channel (both link endpoints, the
    /// tag pool and the buffer model) to it. Returns a handle to the
    /// shared tracer; the channel advances its clock every slot.
    pub fn enable_tracing(&mut self, capacity: usize) -> Tracer {
        let tracer = Tracer::ring(capacity);
        self.attach_tracer(tracer.clone());
        tracer
    }

    /// Attaches an existing (shared) tracer: system-level tracing
    /// records every channel into one ring with one fingerprint.
    pub fn attach_tracer(&mut self, tracer: Tracer) {
        tracer.advance(self.now);
        self.host.attach_tracer(tracer.clone());
        self.buffer_ep.attach_tracer(tracer.clone());
        self.tags.attach_tracer(tracer.clone());
        self.buffer.attach_tracer(tracer.clone());
        self.tracer = tracer;
    }

    /// The channel's tracer (disabled unless
    /// [`DmiChannel::enable_tracing`] was called).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Snapshots every layer's counters into one hierarchical
    /// [`MetricsRegistry`]: `dmi.host.*` / `dmi.buffer.*` (protocol
    /// endpoints), `link.down.*` / `link.up.*` (wire segments),
    /// `channel.*` (tags and command latency), and whatever the plugged
    /// buffer model contributes under `buffer.*`.
    pub fn metrics(&self) -> MetricsRegistry {
        let mut reg = MetricsRegistry::new();
        for (prefix, stats) in [
            ("dmi.host", self.host.stats()),
            ("dmi.buffer", self.buffer_ep.stats()),
        ] {
            reg.set_counter(&format!("{prefix}.frames_tx"), stats.frames_tx);
            reg.set_counter(&format!("{prefix}.frames_rx_ok"), stats.frames_rx_ok);
            reg.set_counter(&format!("{prefix}.crc_errors"), stats.crc_errors);
            reg.set_counter(&format!("{prefix}.seq_errors"), stats.seq_errors);
            reg.set_counter(
                &format!("{prefix}.duplicates_dropped"),
                stats.duplicates_dropped,
            );
            reg.set_counter(
                &format!("{prefix}.replays_triggered"),
                stats.replays_triggered,
            );
            reg.set_counter(&format!("{prefix}.frames_replayed"), stats.frames_replayed);
        }
        for (prefix, seg) in [("link.down", &self.down), ("link.up", &self.up)] {
            reg.set_counter(&format!("{prefix}.frames_sent"), seg.frames_sent());
            reg.set_counter(
                &format!("{prefix}.frames_corrupted"),
                seg.frames_corrupted(),
            );
        }
        reg.set_counter("channel.tags_in_flight", self.tags.in_flight() as u64);
        reg.set_counter("channel.commands_completed", self.command_latency.count());
        reg.set_counter("channel.tags_reclaimed", self.tags_reclaimed);
        reg.set_counter("channel.tags_quarantined", self.quarantine.len() as u64);
        reg.set_counter("channel.retries_scheduled", self.retries_scheduled);
        reg.set_counter("channel.link_retrains", self.link_retrains);
        reg.set_counter("channel.stale_responses", self.stale_responses);
        reg.set_counter("channel.poisoned_reads", self.poisoned_reads);
        reg.set_counter("channel.inflight", self.tracked_in_flight() as u64);
        reg.set_counter("channel.window", self.window as u64);
        reg.set_counter("channel.cmds_queued", self.queue.len() as u64);
        reg.set_counter("channel.rmw_aborts", self.rmw_aborts);
        reg.set_counter("channel.retries_denied", self.retries_denied);
        reg.set_counter("channel.deadline_drops", self.deadline_drops);
        reg.set_counter("channel.degrade_windows", self.degrade_windows);
        reg.set_latency("channel.command_latency", &self.command_latency);
        self.buffer.register_metrics("buffer", &mut reg);
        reg
    }

    /// The plugged buffer's name.
    pub fn buffer_name(&self) -> &str {
        self.buffer.name()
    }

    /// Access to the buffer model (telemetry, knob control).
    pub fn buffer_mut(&mut self) -> &mut dyn DmiBuffer {
        self.buffer.as_mut()
    }

    /// Current channel time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The training outcome, once trained.
    pub fn training(&self) -> Option<TrainingOutcome> {
        self.trained
    }

    /// Free command tags right now.
    pub fn tags_available(&self) -> usize {
        self.tags.available()
    }

    /// The active degradation-ladder policy.
    pub fn retry_policy(&self) -> &RetryPolicy {
        &self.retry
    }

    /// Replaces the degradation-ladder policy for blocking operations.
    pub fn set_retry_policy(&mut self, policy: RetryPolicy) {
        self.retry = policy;
    }

    /// Tags reclaimed outside the normal done path so far (late stale
    /// responses, retrain flushes, quarantine aging).
    pub fn tags_reclaimed(&self) -> u64 {
        self.tags_reclaimed
    }

    /// Retries the degradation ladder has scheduled so far.
    pub fn retries_scheduled(&self) -> u64 {
        self.retries_scheduled
    }

    /// Full link retrains performed so far.
    pub fn link_retrains(&self) -> u64 {
        self.link_retrains
    }

    /// Responses absorbed for tags with no command pending (late
    /// stragglers from timed-out or retrain-aborted commands).
    pub fn stale_responses(&self) -> u64 {
        self.stale_responses
    }

    /// Tags currently parked in quarantine (not yet reusable).
    pub fn quarantined_tags(&self) -> usize {
        self.quarantine.len()
    }

    /// Reads surfaced as [`DmiError::Poisoned`] so far (media ECC
    /// uncorrectable errors delivered end to end).
    pub fn poisoned_reads(&self) -> u64 {
        self.poisoned_reads
    }

    /// Records a poison delivery against this channel's counters and
    /// trace. Called by whoever turns a poisoned completion into a
    /// surfaced error (the blocking shim here, or the system's poll
    /// path), so the count stays consistent across both paths.
    pub(crate) fn note_poison_delivered(&mut self, addr: u64) {
        self.poisoned_reads += 1;
        self.tracer.record(TraceEvent::PoisonDelivered { addr });
    }

    /// RMW commands abandoned mid-flight with [`DmiError::RmwAborted`]
    /// (never retried — the merge may already have been applied).
    pub fn rmw_aborts(&self) -> u64 {
        self.rmw_aborts
    }

    /// Tracked commands currently in flight on link tags.
    pub fn tracked_in_flight(&self) -> usize {
        self.pending
            .values()
            .filter(|p| p.tracked.is_some())
            .count()
    }

    /// Tracked commands waiting on the software issue queue.
    pub fn queued_commands(&self) -> usize {
        self.queue.len()
    }

    /// True while tracked commands still need [`DmiChannel::step`] to
    /// make progress (queued or in flight).
    pub fn has_command_work(&self) -> bool {
        !self.queue.is_empty() || self.pending.values().any(|p| p.tracked.is_some())
    }

    /// The in-flight window for tracked commands.
    pub fn inflight_window(&self) -> usize {
        self.window
    }

    /// Sets the max tracked commands in flight at once, clamped to
    /// `1..=32` (the DMI tag space). Commands beyond the window wait
    /// on the issue queue.
    pub fn set_inflight_window(&mut self, window: usize) {
        self.window = window.clamp(1, NUM_TAGS);
        // An explicit window change supersedes a degrade restore.
        self.degraded_until = None;
    }

    /// Applies a latency-degrade fault window: the in-flight window is
    /// clamped to 1 for `window` of sim time, serializing every
    /// command, then restored. Overlapping degrades extend the window.
    pub fn degrade_for(&mut self, window: SimTime) {
        if self.degraded_until.is_none() {
            self.degraded_saved_window = self.window;
            self.degrade_windows += 1;
        }
        let until = self.now + window;
        self.degraded_until = Some(self.degraded_until.map_or(until, |u| u.max(until)));
        self.window = 1;
    }

    /// Whether a latency-degrade window is currently active.
    pub fn degraded(&self) -> bool {
        self.degraded_until.is_some()
    }

    /// Attaches the shared retry budget that gates the backoff-retry
    /// rung of the ladder (and is refilled by tracked successes).
    pub fn set_retry_budget(
        &mut self,
        budget: Option<std::rc::Rc<std::cell::RefCell<crate::overload::RetryBudget>>>,
    ) {
        self.retry_budget = budget;
    }

    /// Ladder retries denied by the shared retry budget so far.
    pub fn retries_denied(&self) -> u64 {
        self.retries_denied
    }

    /// Commands dropped because their request deadline expired (shed
    /// before issue, or a retry that was never re-queued).
    pub fn deadline_drops(&self) -> u64 {
        self.deadline_drops
    }

    /// Swaps the downstream wire's error injector mid-run (fault
    /// windows in campaigns and tests).
    pub fn set_down_injector(&mut self, injector: BitErrorInjector) {
        self.down.set_injector(injector);
    }

    /// Swaps the upstream wire's error injector mid-run.
    pub fn set_up_injector(&mut self, injector: BitErrorInjector) {
        self.up.set_injector(injector);
    }

    /// Host-side link statistics.
    pub fn host_stats(&self) -> &contutto_dmi::protocol::LinkStats {
        self.host.stats()
    }

    /// Trains the link: measures FRTL with real probe frames against
    /// this buffer's turnaround and runs the alignment sequence.
    ///
    /// # Errors
    ///
    /// Propagates [`DmiError::FrtlExceeded`] /
    /// [`DmiError::TrainingFailed`] from the trainer.
    pub fn train(&mut self, cfg: TrainerConfig, seed: u64) -> Result<TrainingOutcome, DmiError> {
        // FRTL probes ride a scratch pair of segments with the same
        // wire parameters (training happens before functional traffic).
        let mut down = LinkSegment::new(
            self.down.speed(),
            WIRE_PROPAGATION,
            BitErrorInjector::never(),
        );
        let mut up = LinkSegment::new(self.up.speed(), WIRE_PROPAGATION, BitErrorInjector::never());
        let (frtl, _cycles) = measure_frtl(
            &mut down,
            &mut up,
            self.buffer.frtl_turnaround(),
            Frequency::from_ghz(2),
        );
        let mut trainer = LinkTrainer::new(cfg.clone(), seed);
        let outcome = trainer.train(frtl)?;
        // Set the replay timeout from the measured FRTL (paper §2.3).
        let timeout_frames = frtl.as_ps().div_ceil(self.slot.as_ps()) + 4;
        self.host.set_ack_timeout(timeout_frames)?;
        self.buffer_ep.set_ack_timeout(timeout_frames)?;
        // Remember the parameters so an escalated retrain can re-run
        // the same sequence deterministically.
        self.trainer_cfg = cfg;
        self.train_seed = seed;
        self.trained = Some(outcome);
        Ok(outcome)
    }

    /// Tears the link layer down and retrains it: both endpoints are
    /// rebuilt (sequence spaces, replay buffers and ACK state reset),
    /// the wires are drained, and every outstanding or quarantined
    /// command is aborted with its tag reclaimed. The buffer model's
    /// memory contents are untouched — like the paper's firmware
    /// retrain that power-cycles only the FPGA (§3.4). After the tag
    /// flush the channel idles for a settle window so responses to
    /// aborted commands are absorbed as stale before tags are reused.
    ///
    /// # Errors
    ///
    /// Propagates [`DmiError::TrainingFailed`] /
    /// [`DmiError::FrtlExceeded`] from the trainer; tags are reclaimed
    /// even when the retrain itself fails.
    pub fn retrain(&mut self) -> Result<TrainingOutcome, DmiError> {
        self.link_retrains += 1;
        self.tracer.record(TraceEvent::LinkRetrain {
            count: self.link_retrains,
        });
        self.reset_link()?;
        // Derive a fresh (still deterministic) trainer seed per retrain
        // so a flaky trainer does not replay an identical attempt
        // sequence forever.
        let cfg = self.trainer_cfg.clone();
        let seed = self.train_seed.wrapping_add(self.link_retrains);
        self.train(cfg, seed)
    }

    /// Drains the channel ahead of a failover: runs the simulation
    /// until every in-flight tag completes or ages out of quarantine
    /// and the tracked issue queue is empty, up to `budget` from now.
    /// If tags are still outstanding after that (a dead link never
    /// completes anything), the link is reset to reclaim them — any
    /// tracked commands caught by the reset are requeued (or, for RMW,
    /// aborted) and will run their ladders against whatever buffer the
    /// channel serves next. Returns `true` when the drain was clean —
    /// no reset was needed.
    ///
    /// # Errors
    ///
    /// Propagates endpoint-rebuild failures from the link reset.
    pub fn quiesce(&mut self, budget: SimTime) -> Result<bool, DmiError> {
        let deadline = self.now + budget;
        while (!self.pending.is_empty() || !self.quarantine.is_empty() || !self.queue.is_empty())
            && self.now < deadline
        {
            self.step();
        }
        let clean = self.pending.is_empty() && self.quarantine.is_empty() && self.queue.is_empty();
        if !clean {
            self.reset_link()?;
        }
        Ok(clean)
    }

    /// Resets the link layer without retraining: drains both wires,
    /// rebuilds both endpoints (sequence spaces, replay buffers and
    /// ACK state) and aborts every pending or quarantined command,
    /// reclaiming its tag. Replay buffers are dropped too — an
    /// abandoned command must never be delivered by a later replay,
    /// where its stale response could alias a reused tag.
    fn reset_link(&mut self) -> Result<(), DmiError> {
        // Drain in-flight garbage off both wires.
        let horizon = self.now + WIRE_PROPAGATION + self.slot * 2;
        while self.down.receive(horizon).is_some() {}
        while self.up.receive(horizon).is_some() {}
        // Fresh endpoints; the wires (and their injector state) persist.
        self.host = LinkEndpoint::try_new(LinkEndpointConfig::host())?;
        self.buffer_ep = LinkEndpoint::try_new(self.buffer_endpoint_cfg.clone())?;
        if self.tracer.is_enabled() {
            self.host.attach_tracer(self.tracer.clone());
            self.buffer_ep.attach_tracer(self.tracer.clone());
        }
        // Tracked commands caught in flight are innocent bystanders of
        // the reset: requeue them (RMWs excepted — their merge may
        // already have landed, so they abort with a typed error) before
        // their tags are reclaimed. Hold the issue gate through the
        // settle window so requeued commands cannot reuse a tag while
        // stale responses are still arriving.
        self.requeue_bystanders();
        let hold = self.now + RETRAIN_SETTLE;
        self.issue_hold = self.issue_hold.max(hold);
        // Abort outstanding commands: across the link reset no response
        // can complete them, so their tags go straight back to the pool.
        let aborted: Vec<Tag> = self.pending.keys().copied().collect();
        for tag in aborted {
            self.pending.remove(&tag);
            if self.tags.reclaim(tag) {
                self.tags_reclaimed += 1;
            }
        }
        let parked: Vec<Tag> = self.quarantine.keys().copied().collect();
        for tag in parked {
            self.quarantine.remove(&tag);
            if self.tags.reclaim(tag) {
                self.tags_reclaimed += 1;
            }
        }
        // Settle: with nothing pending, the buffer model's responses to
        // aborted commands arrive now and are counted as stale instead
        // of completing a future command that reuses the tag.
        let settle = self.now + RETRAIN_SETTLE;
        self.run_until(settle);
        Ok(())
    }

    /// Advances the channel clock across an interval in which nothing
    /// runs (a power outage): no frames move, no timers fire — time
    /// simply passes.
    pub(crate) fn fast_forward(&mut self, t: SimTime) {
        if t > self.now {
            self.now = t;
            self.tracer.advance(t);
        }
    }

    /// EPOW flush on the plugged buffer: drives its buffered writes to
    /// media on hold-up power (charged against `energy_nj`) and syncs
    /// the channel clock to the flush completion. The link itself
    /// keeps running — EPOW precedes the cut.
    pub fn epow_flush_buffer(&mut self, energy_nj: &mut u64) -> SimTime {
        let done = self.buffer.epow_flush(self.now, energy_nj);
        self.fast_forward(done);
        done
    }

    /// The power rail drops at `at` (clamped forward to the channel's
    /// clock): every in-flight frame, pending command, completion,
    /// quarantined tag and both endpoints' replay state is volatile
    /// and dies instantly — nothing is retried, nothing settles, the
    /// training is gone. The buffer's own power-cut path runs (an
    /// armed NVDIMM keeps saving on supercap); media-backed state
    /// persists. Returns when the buffer is electrically quiet.
    pub fn power_cut(&mut self, at: SimTime) -> SimTime {
        self.fast_forward(at);
        // Frames in flight on the wires are simply lost.
        let horizon = self.now + WIRE_PROPAGATION + self.slot * 2;
        while self.down.receive(horizon).is_some() {}
        while self.up.receive(horizon).is_some() {}
        // Endpoint state (sequence spaces, replay buffers, ACKs) is
        // SRAM: rebuilt from the same validated configs.
        self.host =
            LinkEndpoint::try_new(LinkEndpointConfig::host()).expect("host config is static");
        self.buffer_ep = LinkEndpoint::try_new(self.buffer_endpoint_cfg.clone())
            .expect("buffer endpoint config validated at construction");
        self.tags = TagPool::new();
        if self.tracer.is_enabled() {
            self.host.attach_tracer(self.tracer.clone());
            self.buffer_ep.attach_tracer(self.tracer.clone());
            self.tags.attach_tracer(self.tracer.clone());
        }
        self.pending.clear();
        self.completions.clear();
        self.quarantine.clear();
        // The software issue queue and finished-command index are
        // processor-side SRAM: gone with the rail. CmdIds stay
        // monotonic so stale ids can never alias post-restore work.
        self.queue.clear();
        self.finished.clear();
        self.finished_order.clear();
        self.issue_hold = SimTime::ZERO;
        self.trained = None;
        let quiet = self.buffer.power_cut(self.now);
        quiet.max(self.now)
    }

    /// Power returns at `now`: brings the buffer's media back
    /// (NVDIMM image restore, supercap recharge) and syncs the channel
    /// clock. The link is still untrained — the caller must
    /// [`DmiChannel::retrain`] before traffic flows.
    pub fn power_restore_media(&mut self, now: SimTime) -> (SimTime, PowerRestoreOutcome) {
        self.fast_forward(now);
        let (ready, outcome) = self.buffer.power_restore(self.now);
        self.fast_forward(ready);
        (ready, outcome)
    }

    /// Submits a command; returns its tag.
    ///
    /// This is the raw, untracked path: the caller owns the tag's
    /// lifecycle and collects its [`Completion`] from
    /// [`DmiChannel::next_completion`] / [`DmiChannel::take_completions`].
    /// No recovery ladder runs for it. Most callers want
    /// [`DmiChannel::enqueue_command`] instead.
    ///
    /// # Errors
    ///
    /// [`DmiError::NoFreeTag`] when all 32 tags are outstanding — the
    /// caller must drain completions first (tag throttling).
    pub fn submit(&mut self, op: CommandOp) -> Result<Tag, DmiError> {
        self.submit_inner(op, None)
    }

    fn submit_inner(
        &mut self,
        op: CommandOp,
        tracked: Option<TrackedPending>,
    ) -> Result<Tag, DmiError> {
        let tag = self.tags.acquire()?;
        let header = CommandHeader::from_op(&op);
        self.host
            .enqueue(DownstreamPayload::Command { tag, header });
        let (assembler, write_data) = match &op {
            CommandOp::Read { .. } => (Some(LineAssembler::upstream()), None),
            CommandOp::Write { data, .. } | CommandOp::Rmw { data, .. } => (None, Some(*data)),
            CommandOp::Flush => (None, None),
        };
        let addr = match &op {
            CommandOp::Read { addr }
            | CommandOp::Write { addr, .. }
            | CommandOp::Rmw { addr, .. } => *addr,
            CommandOp::Flush => 0,
        };
        if let Some(data) = write_data {
            for beat in line_to_downstream_beats(tag, &data) {
                self.host.enqueue(beat);
            }
        }
        self.pending.insert(
            tag,
            Pending {
                issued: self.now,
                addr,
                assembler,
                data: None,
                poisoned: false,
                tracked,
            },
        );
        Ok(tag)
    }

    /// Enqueues a tracked command on the software issue queue and
    /// returns its [`CmdId`]. The command issues onto a link tag as
    /// soon as the in-flight window and tag pool allow; `step()` then
    /// drives its per-tag recovery ladder (timeout → backoff retry →
    /// retrain escalation → typed error). Collect its result with
    /// [`DmiChannel::poll_command`] or [`DmiChannel::wait_for_command`].
    ///
    /// RMW commands are accepted but **never retried**: a timed-out or
    /// reset-aborted RMW finishes with [`DmiError::RmwAborted`],
    /// because the buffer may already have applied the merge and only
    /// the done notification was lost.
    pub fn enqueue_command(&mut self, op: CommandOp) -> CmdId {
        self.enqueue_command_deadline(op, None)
    }

    /// As [`DmiChannel::enqueue_command`], with an absolute request
    /// deadline: an expired command is dropped before issue (finishing
    /// with [`DmiError::Timeout`]) and an expired retry is never
    /// re-queued — the ladder fails fast instead of resubmitting work
    /// nobody is waiting for.
    pub fn enqueue_command_deadline(
        &mut self,
        op: CommandOp,
        abs_deadline: Option<SimTime>,
    ) -> CmdId {
        let id = CmdId(self.next_cmd);
        self.next_cmd += 1;
        self.queue.insert(
            (self.now, id),
            QueuedCmd {
                op,
                enqueued: self.now,
                attempt: 1,
                retrains_used: 0,
                abs_deadline,
            },
        );
        id
    }

    /// Pops the oldest finished tracked command, if any. Commands
    /// already claimed by a targeted [`DmiChannel::wait_for_command`]
    /// are skipped. This only drains results — call
    /// [`DmiChannel::step`] to make progress.
    pub fn poll_command(&mut self) -> Option<(CmdId, Result<Completion, DmiError>)> {
        while let Some(id) = self.finished_order.pop_front() {
            if let Some(result) = self.finished.remove(&id) {
                return Some((id, result));
            }
        }
        None
    }

    /// Steps the channel until tracked command `id` finishes, then
    /// returns its result. Other commands' results stay indexed for
    /// their own collectors.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not queued, in flight, or finished (it was
    /// never enqueued, or its result was already collected).
    ///
    /// # Errors
    ///
    /// Whatever the command's ladder surfaced: [`DmiError::Timeout`],
    /// [`DmiError::RmwAborted`], or a training error from a failed
    /// retrain escalation.
    pub fn wait_for_command(&mut self, id: CmdId) -> Result<Completion, DmiError> {
        loop {
            if let Some(result) = self.finished.remove(&id) {
                return result;
            }
            assert!(
                self.queue.keys().any(|&(_, q)| q == id)
                    || self
                        .pending
                        .values()
                        .any(|p| p.tracked.as_ref().is_some_and(|t| t.id == id)),
                "wait_for_command: command {id:?} is not queued, in flight, or finished"
            );
            self.step();
        }
    }

    /// Issues queued tracked commands up to the in-flight window. Runs
    /// at the top of every step so a command enqueued at `now`
    /// transmits its first frame in the same slot.
    fn issue_ready(&mut self) {
        if self.now < self.issue_hold {
            return;
        }
        while self.tracked_in_flight() < self.window && self.tags.available() > 0 {
            let Some((&key, _)) = self.queue.iter().next() else {
                break;
            };
            let (not_before, id) = key;
            if not_before > self.now {
                break;
            }
            let qc = self.queue.remove(&key).expect("key just found");
            // An already-expired command is shed here, before it ever
            // takes a tag or touches the wire.
            if qc.abs_deadline.is_some_and(|d| self.now >= d) {
                self.deadline_drops += 1;
                let waited = self.now - qc.enqueued;
                self.finish(id, Err(DmiError::DeadlineExceeded { waited }));
                continue;
            }
            let tracked = TrackedPending {
                id,
                op: qc.op.clone(),
                enqueued: qc.enqueued,
                attempt: qc.attempt,
                retrains_used: qc.retrains_used,
                deadline: self.now + self.retry.op_timeout,
                abs_deadline: qc.abs_deadline,
            };
            if let Err(e) = self.submit_inner(qc.op, Some(tracked)) {
                self.finish(id, Err(e));
            }
        }
    }

    /// Advances the per-tag ladders: any tracked command past its
    /// per-attempt deadline times out here. One `find` per expiry
    /// keeps the borrow local; the pending map holds ≤ 32 entries.
    fn check_deadlines(&mut self) {
        while let Some(tag) = self
            .pending
            .iter()
            .find(|(_, p)| p.tracked.as_ref().is_some_and(|t| self.now > t.deadline))
            .map(|(&tag, _)| tag)
        {
            self.on_tracked_timeout(tag);
        }
    }

    /// One rung of the per-tag degradation ladder: the attempt's tag
    /// is quarantined, then the command either aborts (RMW), parks for
    /// a backoff retry, escalates to a retrain, or exhausts the ladder
    /// and surfaces [`DmiError::Timeout`].
    fn on_tracked_timeout(&mut self, tag: Tag) {
        let mut pending = self.pending.remove(&tag).expect("caller found tag pending");
        let t = pending.tracked.take().expect("caller checked tracked");
        self.tracer
            .record(TraceEvent::TagTimeout { tag: tag.raw() });
        self.quarantine.insert(tag, self.now);
        if let CommandOp::Rmw { addr, .. } = t.op {
            // Never retry an RMW: the merge may already have landed
            // and only the done was lost, so a resubmission could
            // apply it twice. Abort with the typed error instead.
            self.rmw_aborts += 1;
            self.finish(t.id, Err(DmiError::RmwAborted { addr }));
            return;
        }
        // An expired request never re-queues: its submitter's deadline
        // has passed, so another attempt only adds load to a system
        // that is already behind. Fail fast with the typed error.
        if t.abs_deadline.is_some_and(|d| self.now >= d) {
            self.deadline_drops += 1;
            let waited = self.now - t.enqueued;
            self.finish(t.id, Err(DmiError::DeadlineExceeded { waited }));
            return;
        }
        // The backoff-retry rung is gated by the shared retry budget:
        // under overload the bucket drains and the ladder falls through
        // to retrain / the typed error instead of multiplying traffic.
        let retry_allowed = t.attempt < self.retry.max_attempts && {
            match &self.retry_budget {
                None => true,
                Some(budget) => {
                    let ok = budget.borrow_mut().try_spend();
                    if !ok {
                        self.retries_denied += 1;
                    }
                    ok
                }
            }
        };
        if retry_allowed {
            let backoff = self.retry.base_backoff * (1u64 << (t.attempt - 1));
            self.retries_scheduled += 1;
            self.tracer.record(TraceEvent::RetryScheduled {
                tag: tag.raw(),
                attempt: t.attempt,
                backoff_ps: backoff.as_ps(),
            });
            self.queue.insert(
                (self.now + backoff, t.id),
                QueuedCmd {
                    op: t.op,
                    enqueued: t.enqueued,
                    attempt: t.attempt + 1,
                    retrains_used: t.retrains_used,
                    abs_deadline: t.abs_deadline,
                },
            );
        } else if t.retrains_used < self.retry.max_retrains {
            self.escalate_retrain(t);
        } else {
            // Ladder exhausted. Reset the link so the abandoned
            // attempts cannot be delivered by a later replay (a stale
            // response must never alias a reused tag once the fault
            // clears), then surface the typed error. Tracked
            // bystanders are requeued by the reset itself.
            let waited = self.now - t.enqueued;
            let result = match self.reset_link() {
                Ok(()) => Err(DmiError::Timeout {
                    tag: tag.raw(),
                    waited,
                }),
                Err(e) => Err(e),
            };
            self.finish(t.id, result);
        }
    }

    /// Escalates a timed-out command to a full link retrain: the
    /// command restarts its ladder with a fresh attempt budget, every
    /// tracked bystander is requeued by the reset, and a failed
    /// retrain is charged to the escalating command alone.
    fn escalate_retrain(&mut self, t: TrackedPending) {
        let key = (self.now, t.id);
        let id = t.id;
        self.queue.insert(
            key,
            QueuedCmd {
                op: t.op,
                enqueued: t.enqueued,
                attempt: 1,
                retrains_used: t.retrains_used + 1,
                abs_deadline: t.abs_deadline,
            },
        );
        if let Err(e) = self.retrain() {
            self.queue.remove(&key);
            self.finish(id, Err(e));
        }
    }

    /// Takes the ladder state out of every tracked in-flight command
    /// ahead of a link reset and requeues it (attempt budget intact —
    /// bystanders are not penalized for someone else's hang). RMW
    /// bystanders abort with [`DmiError::RmwAborted`] instead: their
    /// merge may already have been applied.
    fn requeue_bystanders(&mut self) {
        let mut requeue = Vec::new();
        let mut abort = Vec::new();
        for p in self.pending.values_mut() {
            if let Some(t) = p.tracked.take() {
                if let CommandOp::Rmw { addr, .. } = t.op {
                    abort.push((t.id, addr));
                } else {
                    requeue.push(t);
                }
            }
        }
        for t in requeue {
            self.queue.insert(
                (self.now, t.id),
                QueuedCmd {
                    op: t.op,
                    enqueued: t.enqueued,
                    attempt: t.attempt,
                    retrains_used: t.retrains_used,
                    abs_deadline: t.abs_deadline,
                },
            );
        }
        for (id, addr) in abort {
            self.rmw_aborts += 1;
            self.finish(id, Err(DmiError::RmwAborted { addr }));
        }
    }

    fn finish(&mut self, id: CmdId, result: Result<Completion, DmiError>) {
        self.finished.insert(id, result);
        self.finished_order.push_back(id);
    }

    /// Advances the channel by one frame slot.
    pub fn step(&mut self) {
        let now = self.now;
        // All trace events this slot are stamped with the slot time.
        self.tracer.advance(now);
        // Issue queued tracked commands into the window first, so they
        // transmit this very slot.
        self.issue_ready();
        // Host transmits this slot's downstream frame.
        self.down.transmit(now, self.host.tick_tx());
        // Buffer receives any arrived downstream frames.
        while let Some(bytes) = self.down.receive(now) {
            if let Some(payload) = self.buffer_ep.on_receive(&bytes) {
                self.buffer.push_downstream(now, payload);
            }
        }
        // Buffer offers the upstream arbiter one slot.
        if let Some(payload) = self.buffer.pull_upstream(now) {
            self.buffer_ep.enqueue(payload);
        }
        self.up.transmit(now, self.buffer_ep.tick_tx());
        // Host receives any arrived upstream frames.
        while let Some(bytes) = self.up.receive(now) {
            if let Some(payload) = self.host.on_receive(&bytes) {
                self.handle_response(now, payload);
            }
        }
        self.now += self.slot;
        if let Some(until) = self.degraded_until {
            if self.now >= until {
                self.window = self.degraded_saved_window;
                self.degraded_until = None;
            }
        }
        self.check_deadlines();
        if !self.quarantine.is_empty() {
            self.age_quarantine();
        }
    }

    /// Quarantined tags whose late response never materialized within
    /// two op-timeouts are declared dead and returned to the pool: by
    /// then any response still in flight would long since have been
    /// delivered or lost, so reuse is unambiguous. Allocation-free —
    /// this runs on the hot path while any tag is quarantined.
    fn age_quarantine(&mut self) {
        let ttl = self.retry.op_timeout * 2;
        let now = self.now;
        let tags = &mut self.tags;
        let reclaimed = &mut self.tags_reclaimed;
        self.quarantine.retain(|&tag, &mut parked| {
            if now - parked > ttl {
                if tags.reclaim(tag) {
                    *reclaimed += 1;
                }
                false
            } else {
                true
            }
        });
    }

    fn handle_response(&mut self, now: SimTime, payload: UpstreamPayload) {
        match payload {
            UpstreamPayload::Idle | UpstreamPayload::Control(_) => {}
            UpstreamPayload::ReadData {
                tag,
                beat,
                data,
                poison,
            } => {
                // Beats for a tag with no pending command (or one that
                // is not a read) are late stragglers from a command
                // whose waiter gave up: absorb, never die.
                let Some(pending) = self.pending.get_mut(&tag) else {
                    self.stale_responses += 1;
                    return;
                };
                // A data beat for a pending command that is not a read
                // is a stale straggler aliasing a reused tag: absorb it
                // *before* latching its poison bit, or garbage could
                // falsely poison a write or flush completion.
                if pending.assembler.is_none() {
                    self.stale_responses += 1;
                    return;
                }
                pending.poisoned |= poison;
                let assembler = pending.assembler.as_mut().expect("checked above");
                match assembler.try_add_beat(beat, &data) {
                    Ok(true) => {
                        let asm = pending.assembler.take().expect("assembler checked above");
                        pending.data = Some(asm.into_line());
                    }
                    Ok(false) => {}
                    // A beat with an impossible index or size slipped
                    // past frame decode: absorb it like any other
                    // garbage response instead of corrupting the line.
                    Err(_) => {
                        self.stale_responses += 1;
                    }
                }
            }
            UpstreamPayload::Done { first, second } => {
                self.complete(now, first);
                if let Some(t) = second {
                    self.complete(now, t);
                }
            }
        }
    }

    fn complete(&mut self, now: SimTime, tag: Tag) {
        let Some(mut pending) = self.pending.remove(&tag) else {
            // A late done for a command whose waiter already gave up:
            // the buffer is alive after all, so a quarantined tag is
            // proven drained and safe to reuse. Dones for
            // retrain-aborted (already reclaimed) tags are absorbed
            // the same way.
            if self.quarantine.remove(&tag).is_some() && self.tags.reclaim(tag) {
                self.tags_reclaimed += 1;
            }
            self.stale_responses += 1;
            return;
        };
        if self.tags.release(tag).is_err() {
            // Duplicate done: the first one already freed the tag.
            self.stale_responses += 1;
            return;
        }
        self.command_latency.record(now - pending.issued);
        let tracked = pending.tracked.take();
        // Tracked successes refill the shared retry budget: the bucket
        // grows as a fixed ratio of the success rate.
        if tracked.is_some() {
            if let Some(budget) = &self.retry_budget {
                budget.borrow_mut().on_success();
            }
        }
        let completion = Completion {
            tag,
            completed_at: now,
            issued_at: pending.issued,
            data: pending.data,
            addr: pending.addr,
            poisoned: pending.poisoned,
        };
        match tracked {
            Some(t) => self.finish(t.id, Ok(completion)),
            None => self.completions.push_back(completion),
        }
    }

    /// Runs until time `t`.
    pub fn run_until(&mut self, t: SimTime) {
        while self.now < t {
            self.step();
        }
    }

    /// Runs until a completion is available or `deadline` passes. The
    /// deadline is inclusive: a completion arriving exactly at the
    /// deadline tick is still delivered.
    pub fn next_completion(&mut self, deadline: SimTime) -> Option<Completion> {
        loop {
            if let Some(c) = self.completions.pop_front() {
                return Some(c);
            }
            if self.now > deadline {
                return None;
            }
            self.step();
        }
    }

    /// Drains any already-collected completions.
    pub fn take_completions(&mut self) -> Vec<Completion> {
        self.completions.drain(..).collect()
    }

    /// Convenience: enqueue a read on the tracked path and block until
    /// its data returns, with the full per-tag recovery ladder (retry
    /// → backoff → retrain) behind it. A thin shim over
    /// [`DmiChannel::enqueue_command`] / [`DmiChannel::wait_for_command`];
    /// results for other tracked commands stay indexed for their own
    /// collectors.
    ///
    /// # Errors
    ///
    /// * [`DmiError::Timeout`] when the ladder is exhausted and the
    ///   buffer still has not answered (the tag is quarantined for
    ///   reclamation, never leaked).
    /// * [`DmiError::Poisoned`] when the buffer flagged the line with
    ///   an uncorrectable media error: the data is withheld so it can
    ///   never be consumed silently.
    /// * Training errors if an escalated retrain fails.
    pub fn read_line_blocking(&mut self, addr: u64) -> Result<(CacheLine, SimTime), DmiError> {
        let id = self.enqueue_command(CommandOp::Read { addr });
        let c = self.wait_for_command(id)?;
        if c.poisoned {
            self.note_poison_delivered(addr);
            return Err(DmiError::Poisoned { addr });
        }
        let data = c
            .data
            .ok_or(DmiError::MalformedFrame("read completed without data"))?;
        Ok((data, c.completed_at))
    }

    /// Convenience: enqueue a write on the tracked path and block
    /// until durable, with the same recovery ladder as
    /// [`DmiChannel::read_line_blocking`]. Retried writes re-execute
    /// the store, which is idempotent — unlike RMW, which the ladder
    /// refuses to retry (see [`DmiChannel::enqueue_command`]).
    ///
    /// # Errors
    ///
    /// As for [`DmiChannel::read_line_blocking`].
    pub fn write_line_blocking(&mut self, addr: u64, data: CacheLine) -> Result<SimTime, DmiError> {
        let id = self.enqueue_command(CommandOp::Write { addr, data });
        let c = self.wait_for_command(id)?;
        Ok(c.completed_at)
    }

    /// Serializes the channel's full dynamic state: both link
    /// endpoints, both wire segments, the buffer chip, the tag pool,
    /// every in-flight / queued / finished tracked command, the ladder
    /// configuration and counters. Construction parameters (link
    /// speed, endpoint configs, wiring) are not persisted — the
    /// restorer must already hold an identically-constructed channel;
    /// the frame slot is recorded only to cross-check that.
    ///
    /// The shared retry budget ([`DmiChannel::set_retry_budget`]) is
    /// deliberately excluded: it is system-owned wiring, restored once
    /// at system level and redistributed to every channel.
    pub fn snapshot_state(&self, out: &mut Vec<u8>) {
        self.slot.persist(out);
        self.now.persist(out);
        self.host.snapshot_state(out);
        self.buffer_ep.snapshot_state(out);
        self.down.snapshot_state(out);
        self.up.snapshot_state(out);
        self.buffer.snapshot_state(out);
        self.tags.snapshot_state(out);
        (self.pending.len() as u64).persist(out);
        for (tag, p) in &self.pending {
            tag.persist(out);
            p.issued.persist(out);
            p.addr.persist(out);
            p.assembler.persist(out);
            p.data.persist(out);
            p.poisoned.persist(out);
            match &p.tracked {
                None => false.persist(out),
                Some(t) => {
                    true.persist(out);
                    t.id.persist(out);
                    t.op.persist(out);
                    t.enqueued.persist(out);
                    t.attempt.persist(out);
                    t.retrains_used.persist(out);
                    t.deadline.persist(out);
                    t.abs_deadline.persist(out);
                }
            }
        }
        self.completions.persist(out);
        self.quarantine.persist(out);
        (self.queue.len() as u64).persist(out);
        for ((not_before, id), q) in &self.queue {
            not_before.persist(out);
            id.persist(out);
            q.op.persist(out);
            q.enqueued.persist(out);
            q.attempt.persist(out);
            q.retrains_used.persist(out);
            q.abs_deadline.persist(out);
        }
        (self.finished.len() as u64).persist(out);
        for (id, result) in &self.finished {
            id.persist(out);
            match result {
                Ok(c) => {
                    0u8.persist(out);
                    c.persist(out);
                }
                Err(e) => {
                    1u8.persist(out);
                    e.persist(out);
                }
            }
        }
        self.finished_order.persist(out);
        self.next_cmd.persist(out);
        self.window.persist(out);
        self.issue_hold.persist(out);
        self.retry.persist(out);
        self.trained.persist(out);
        self.trainer_cfg.persist(out);
        self.train_seed.persist(out);
        self.command_latency.persist(out);
        self.tags_reclaimed.persist(out);
        self.retries_scheduled.persist(out);
        self.link_retrains.persist(out);
        self.stale_responses.persist(out);
        self.poisoned_reads.persist(out);
        self.rmw_aborts.persist(out);
        self.retries_denied.persist(out);
        self.deadline_drops.persist(out);
        self.degrade_windows.persist(out);
        self.degraded_until.persist(out);
        self.degraded_saved_window.persist(out);
    }

    /// Overlays [`DmiChannel::snapshot_state`] bytes onto this channel.
    /// The target must have been constructed with the same
    /// [`ChannelConfig`] and buffer as the snapshotted one.
    ///
    /// On error the channel may be partially restored; callers discard
    /// the target (the system-level restore rebuilds from a fresh
    /// boot, so a failed overlay never serves traffic).
    ///
    /// # Errors
    ///
    /// [`RestoreError::TopologyMismatch`] when the frame slot (link
    /// speed) differs; any [`RestoreError`] from a truncated or
    /// malformed payload.
    pub fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), RestoreError> {
        let slot = SimTime::restore(r)?;
        if slot != self.slot {
            return Err(RestoreError::TopologyMismatch {
                context: "channel link speed (frame slot)",
            });
        }
        self.now = SimTime::restore(r)?;
        self.host.restore_state(r)?;
        self.buffer_ep.restore_state(r)?;
        self.down.restore_state(r)?;
        self.up.restore_state(r)?;
        self.buffer.restore_state(r)?;
        self.tags.restore_state(r)?;
        let n = r.len()?;
        if n > NUM_TAGS {
            return Err(RestoreError::Malformed {
                context: "more pending tags than the tag space",
            });
        }
        let mut pending = BTreeMap::new();
        for _ in 0..n {
            let tag = Tag::restore(r)?;
            let issued = SimTime::restore(r)?;
            let addr = r.u64()?;
            let assembler = Option::restore(r)?;
            let data = Option::restore(r)?;
            let poisoned = r.bool()?;
            let tracked = if r.bool()? {
                Some(TrackedPending {
                    id: CmdId::restore(r)?,
                    op: CommandOp::restore(r)?,
                    enqueued: SimTime::restore(r)?,
                    attempt: r.u32()?,
                    retrains_used: r.u32()?,
                    deadline: SimTime::restore(r)?,
                    abs_deadline: Option::restore(r)?,
                })
            } else {
                None
            };
            if pending
                .insert(
                    tag,
                    Pending {
                        issued,
                        addr,
                        assembler,
                        data,
                        poisoned,
                        tracked,
                    },
                )
                .is_some()
            {
                return Err(RestoreError::Malformed {
                    context: "duplicate pending tag",
                });
            }
        }
        self.pending = pending;
        self.completions = VecDeque::restore(r)?;
        self.quarantine = BTreeMap::restore(r)?;
        let n = r.len()?;
        if n > r.remaining() / 17 {
            return Err(RestoreError::Truncated {
                context: "channel issue queue",
            });
        }
        let mut queue = BTreeMap::new();
        for _ in 0..n {
            let not_before = SimTime::restore(r)?;
            let id = CmdId::restore(r)?;
            let q = QueuedCmd {
                op: CommandOp::restore(r)?,
                enqueued: SimTime::restore(r)?,
                attempt: r.u32()?,
                retrains_used: r.u32()?,
                abs_deadline: Option::restore(r)?,
            };
            if queue.insert((not_before, id), q).is_some() {
                return Err(RestoreError::Malformed {
                    context: "duplicate queued command",
                });
            }
        }
        self.queue = queue;
        let n = r.len()?;
        if n > r.remaining() / 9 {
            return Err(RestoreError::Truncated {
                context: "finished command results",
            });
        }
        let mut finished = BTreeMap::new();
        for _ in 0..n {
            let id = CmdId::restore(r)?;
            let result = match r.u8()? {
                0 => Ok(Completion::restore(r)?),
                1 => Err(DmiError::restore(r)?),
                _ => {
                    return Err(RestoreError::Malformed {
                        context: "finished result discriminant",
                    })
                }
            };
            finished.insert(id, result);
        }
        self.finished = finished;
        self.finished_order = VecDeque::restore(r)?;
        self.next_cmd = r.u64()?;
        let window = usize::restore(r)?;
        if window == 0 || window > NUM_TAGS {
            return Err(RestoreError::Malformed {
                context: "in-flight window out of range",
            });
        }
        self.window = window;
        self.issue_hold = SimTime::restore(r)?;
        self.retry = RetryPolicy::restore(r)?;
        self.trained = Option::restore(r)?;
        self.trainer_cfg = TrainerConfig::restore(r)?;
        self.train_seed = r.u64()?;
        self.command_latency = LatencyStats::restore(r)?;
        self.tags_reclaimed = r.u64()?;
        self.retries_scheduled = r.u64()?;
        self.link_retrains = r.u64()?;
        self.stale_responses = r.u64()?;
        self.poisoned_reads = r.u64()?;
        self.rmw_aborts = r.u64()?;
        self.retries_denied = r.u64()?;
        self.deadline_drops = r.u64()?;
        self.degrade_windows = r.u64()?;
        self.degraded_until = Option::restore(r)?;
        self.degraded_saved_window = usize::restore(r)?;
        Ok(())
    }
}

impl Persist for CmdId {
    fn persist(&self, out: &mut Vec<u8>) {
        self.0.persist(out);
    }
    fn restore(r: &mut SnapReader<'_>) -> Result<Self, RestoreError> {
        Ok(CmdId(r.u64()?))
    }
}

impl Persist for RetryPolicy {
    fn persist(&self, out: &mut Vec<u8>) {
        self.op_timeout.persist(out);
        self.max_attempts.persist(out);
        self.base_backoff.persist(out);
        self.max_retrains.persist(out);
    }
    fn restore(r: &mut SnapReader<'_>) -> Result<Self, RestoreError> {
        Ok(RetryPolicy {
            op_timeout: SimTime::restore(r)?,
            max_attempts: r.u32()?,
            base_backoff: SimTime::restore(r)?,
            max_retrains: r.u32()?,
        })
    }
}

impl Persist for Completion {
    fn persist(&self, out: &mut Vec<u8>) {
        self.tag.persist(out);
        self.completed_at.persist(out);
        self.issued_at.persist(out);
        self.data.persist(out);
        self.addr.persist(out);
        self.poisoned.persist(out);
    }
    fn restore(r: &mut SnapReader<'_>) -> Result<Self, RestoreError> {
        Ok(Completion {
            tag: Tag::restore(r)?,
            completed_at: SimTime::restore(r)?,
            issued_at: SimTime::restore(r)?,
            data: Option::restore(r)?,
            addr: r.u64()?,
            poisoned: r.bool()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use contutto_centaur::{Centaur, CentaurConfig};
    use contutto_core::{ConTutto, ContuttoConfig, MemoryPopulation};
    use contutto_dmi::command::RmwOp;

    fn centaur_channel() -> DmiChannel {
        DmiChannel::new(
            ChannelConfig::centaur(),
            Box::new(Centaur::new(CentaurConfig::optimized(), 8 << 30)),
        )
    }

    fn contutto_channel() -> DmiChannel {
        DmiChannel::new(
            ChannelConfig::contutto(),
            Box::new(ConTutto::new(
                ContuttoConfig::base(),
                MemoryPopulation::dram_8gb(),
            )),
        )
    }

    #[test]
    fn quiesce_drains_in_flight_tags() {
        let mut ch = centaur_channel();
        ch.submit(CommandOp::Write {
            addr: 0x1000,
            data: CacheLine::patterned(1),
        })
        .unwrap();
        ch.submit(CommandOp::Read { addr: 0x1000 }).unwrap();
        assert!(ch.tags_available() < 32);
        let clean = ch.quiesce(SimTime::from_us(50)).unwrap();
        assert!(clean, "healthy link drains without a reset");
        assert_eq!(ch.tags_available(), 32);
    }

    #[test]
    fn quiesce_dead_link_reclaims_via_reset() {
        let mut ch = centaur_channel();
        // Kill both directions, then leave a command in flight.
        ch.set_down_injector(BitErrorInjector::bernoulli(1.0, 99));
        ch.set_up_injector(BitErrorInjector::bernoulli(1.0, 99));
        ch.submit(CommandOp::Read { addr: 0 }).unwrap();
        let clean = ch.quiesce(SimTime::from_us(40)).unwrap();
        assert!(!clean, "a dead link cannot drain cleanly");
        assert_eq!(ch.tags_available(), 32, "tags reclaimed by the reset");
    }

    #[test]
    fn power_cycle_through_channel_restores_nvdimm_and_kills_link_state() {
        use contutto_core::MemoryKind;
        let pop = MemoryPopulation {
            kind: MemoryKind::NvdimmN,
            dimm_capacity: 512 << 10,
            dimms: 2,
        };
        let mut ch = DmiChannel::new(
            ChannelConfig::contutto(),
            Box::new(ConTutto::new(ContuttoConfig::base(), pop)),
        );
        ch.train(TrainerConfig::default(), 7).unwrap();
        let line = CacheLine::patterned(4);
        ch.write_line_blocking(0x1000, line).unwrap();
        ch.buffer_mut().set_save_armed(true);
        // Leave a command in flight when the rail drops.
        ch.submit(CommandOp::Read { addr: 0x1000 }).unwrap();
        let quiet = ch.power_cut(ch.now());
        assert!(quiet > ch.now(), "save engine runs past the cut");
        // All link/channel state died: tags free, training gone.
        assert_eq!(ch.tags_available(), 32);
        assert!(ch.training().is_none());
        assert!(ch.take_completions().is_empty());
        // Power returns after the save finished: clean restore.
        let (ready, outcome) = ch.power_restore_media(quiet + SimTime::from_secs(2));
        assert_eq!(outcome, PowerRestoreOutcome::Restored);
        assert!(ready >= quiet);
        // Retrain and serve traffic again.
        ch.retrain().unwrap();
        let (back, _) = ch.read_line_blocking(0x1000).unwrap();
        assert_eq!(back, line);
    }

    #[test]
    fn centaur_write_read_roundtrip() {
        let mut ch = centaur_channel();
        let line = CacheLine::patterned(5);
        ch.write_line_blocking(0x1000, line).unwrap();
        let (back, _) = ch.read_line_blocking(0x1000).unwrap();
        assert_eq!(back, line);
    }

    #[test]
    fn contutto_write_read_roundtrip() {
        let mut ch = contutto_channel();
        let line = CacheLine::patterned(6);
        ch.write_line_blocking(0x2000, line).unwrap();
        let (back, _) = ch.read_line_blocking(0x2000).unwrap();
        assert_eq!(back, line);
    }

    #[test]
    fn contutto_is_slower_than_centaur() {
        let mut cen = centaur_channel();
        let mut con = contutto_channel();
        // Warm both (first access opens rows).
        cen.read_line_blocking(0).unwrap();
        con.read_line_blocking(0).unwrap();
        let t0 = cen.now();
        cen.read_line_blocking(0).unwrap();
        let cen_lat = cen.now() - t0;
        let t0 = con.now();
        con.read_line_blocking(0).unwrap();
        let con_lat = con.now() - t0;
        assert!(
            con_lat > cen_lat * 3,
            "contutto {con_lat} vs centaur {cen_lat}"
        );
    }

    #[test]
    fn training_succeeds_on_both_buffers() {
        let mut cen = centaur_channel();
        let out = cen.train(TrainerConfig::default(), 42).unwrap();
        assert!(out.frtl < SimTime::from_ns(40), "centaur frtl {}", out.frtl);
        let mut con = contutto_channel();
        let out = con.train(TrainerConfig::default(), 42).unwrap();
        assert!(
            out.frtl > SimTime::from_ns(60),
            "contutto frtl {}",
            out.frtl
        );
        assert!(con.training().is_some());
    }

    #[test]
    fn tag_throttling_at_32_outstanding() {
        let mut ch = contutto_channel();
        for i in 0..32 {
            ch.submit(CommandOp::Read { addr: i * 128 }).unwrap();
        }
        assert_eq!(ch.tags_available(), 0);
        assert!(matches!(
            ch.submit(CommandOp::Read { addr: 0 }),
            Err(DmiError::NoFreeTag)
        ));
        // Drain: all 32 complete.
        let mut done = 0;
        let deadline = ch.now() + SimTime::from_ms(1);
        while let Some(_c) = ch.next_completion(deadline) {
            done += 1;
            if done == 32 {
                break;
            }
        }
        assert_eq!(done, 32);
        assert_eq!(ch.tags_available(), 32);
    }

    #[test]
    fn rmw_through_full_channel() {
        let mut ch = contutto_channel();
        let mut init = CacheLine::ZERO;
        init.set_word(0, 7);
        ch.write_line_blocking(0, init).unwrap();
        let mut add = CacheLine::ZERO;
        add.set_word(0, 5);
        let tag = ch
            .submit(CommandOp::Rmw {
                addr: 0,
                op: RmwOp::AtomicAdd,
                data: add,
            })
            .unwrap();
        let deadline = ch.now() + SimTime::from_ms(1);
        loop {
            match ch.next_completion(deadline) {
                Some(c) if c.tag == tag => break,
                Some(_) => {}
                None => panic!("rmw hung"),
            }
        }
        let (result, _) = ch.read_line_blocking(0).unwrap();
        assert_eq!(result.word(0), 12);
    }

    #[test]
    fn stale_read_beat_cannot_poison_a_write() {
        // Regression: a straggler data beat aliasing a reused tag used
        // to latch its poison bit onto whatever command now owned the
        // tag — even a write, which has no assembler and will never
        // consume data. The beat must be absorbed as stale *before*
        // poison is recorded.
        use contutto_dmi::frame::UPSTREAM_BEAT_BYTES;
        let mut ch = centaur_channel();
        let tag = ch
            .submit(CommandOp::Write {
                addr: 0x2000,
                data: CacheLine::patterned(3),
            })
            .unwrap();
        let now = ch.now();
        ch.handle_response(
            now,
            UpstreamPayload::ReadData {
                tag,
                beat: 0,
                data: [0u8; UPSTREAM_BEAT_BYTES],
                poison: true,
            },
        );
        assert!(ch.stale_responses() >= 1, "beat not counted as stale");
        let c = ch
            .next_completion(ch.now() + SimTime::from_us(50))
            .expect("write completes");
        assert_eq!(c.tag, tag);
        assert!(!c.poisoned, "stale beat poisoned a write completion");
    }

    #[test]
    fn tracked_rmw_is_aborted_not_retried() {
        // An RMW whose done notification is lost must NOT ride the
        // retry ladder: the buffer may already have applied the merge,
        // so a resubmission would double-apply it. The ladder surfaces
        // RmwAborted instead and schedules zero retries.
        let mut ch = centaur_channel();
        ch.set_retry_policy(RetryPolicy {
            op_timeout: SimTime::from_us(3),
            max_attempts: 3,
            base_backoff: SimTime::from_ns(500),
            max_retrains: 0,
        });
        ch.set_up_injector(BitErrorInjector::bernoulli(1.0, 42));
        let id = ch.enqueue_command(CommandOp::Rmw {
            addr: 0x3000,
            op: RmwOp::AtomicAdd,
            data: CacheLine::patterned(1),
        });
        let err = ch.wait_for_command(id).unwrap_err();
        assert!(
            matches!(err, DmiError::RmwAborted { addr: 0x3000 }),
            "got {err:?}"
        );
        assert!(ch.rmw_aborts() >= 1);
        assert_eq!(ch.retries_scheduled(), 0, "rmw must never retry");
    }

    #[test]
    fn pipelined_reads_overlap() {
        // 8 independent reads complete far faster than 8 serialized.
        let mut ch = contutto_channel();
        ch.read_line_blocking(0).unwrap(); // warm
        let t0 = ch.now();
        for i in 0..8u64 {
            ch.submit(CommandOp::Read { addr: i * 128 }).unwrap();
        }
        let deadline = ch.now() + SimTime::from_ms(1);
        let mut done = 0;
        while done < 8 {
            assert!(ch.next_completion(deadline).is_some(), "hang");
            done += 1;
        }
        let pipelined = ch.now() - t0;

        let mut ch2 = contutto_channel();
        ch2.read_line_blocking(0).unwrap();
        let t0 = ch2.now();
        for i in 0..8u64 {
            ch2.read_line_blocking(i * 128).unwrap();
        }
        let serialized = ch2.now() - t0;
        assert!(
            pipelined * 2 < serialized,
            "pipelined {pipelined} vs serialized {serialized}"
        );
    }

    #[test]
    fn poisoned_line_surfaces_as_typed_error_end_to_end() {
        use contutto_memdev::FaultConfig;
        // A storm of bit flips confined to one 64-bit word guarantees
        // a multi-bit (uncorrectable) error; no scrub to heal it.
        let mut card = ConTutto::new(ContuttoConfig::base(), MemoryPopulation::dram_8gb());
        card.attach_media_faults(FaultConfig {
            transient_flips: 64,
            window: SimTime::from_us(10),
            hot_start: 0,
            hot_len: 8,
            ..FaultConfig::none(11)
        });
        let mut ch = DmiChannel::new(ChannelConfig::contutto(), Box::new(card));
        let line = CacheLine::patterned(9);
        ch.write_line_blocking(0, line).unwrap();
        // Let the fault window elapse so the flips land in the array.
        let resume = ch.now() + SimTime::from_us(15);
        ch.run_until(resume);
        let err = ch.read_line_blocking(0).unwrap_err();
        assert!(
            matches!(err, DmiError::Poisoned { addr: 0 }),
            "expected poison, got {err}"
        );
        assert_eq!(ch.poisoned_reads(), 1);
        // An unaffected line still reads clean: poison is contained.
        let clean = CacheLine::patterned(3);
        ch.write_line_blocking(0x4000, clean).unwrap();
        let (back, _) = ch.read_line_blocking(0x4000).unwrap();
        assert_eq!(back, clean);
    }

    #[test]
    fn channel_recovers_from_wire_errors() {
        let mut cfg = ChannelConfig::contutto();
        cfg.down_errors = BitErrorInjector::bernoulli(0.01, 99);
        cfg.up_errors = BitErrorInjector::bernoulli(0.01, 77);
        let mut ch = DmiChannel::new(
            cfg,
            Box::new(ConTutto::new(
                ContuttoConfig::base(),
                MemoryPopulation::dram_8gb(),
            )),
        );
        for i in 0..20u64 {
            let line = CacheLine::patterned(i);
            ch.write_line_blocking(i * 128, line).unwrap();
            let (back, _) = ch.read_line_blocking(i * 128).unwrap();
            assert_eq!(back, line, "iteration {i}");
        }
        assert!(
            ch.host_stats().crc_errors + ch.host_stats().seq_errors > 0
                || ch.host_stats().replays_triggered > 0
        );
    }
}
