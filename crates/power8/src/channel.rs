//! One DMI memory channel, end to end.
//!
//! [`DmiChannel`] assembles the host-side link endpoint, the two wire
//! segments, the buffer-side endpoint and a buffer chip model (Centaur
//! or ConTutto) into a steppable simulation. It implements the
//! command loop of paper §2.3: commands acquire one of 32 tags, write
//! data follows in beats, read data and done notifications are paired
//! back by tag, and a tag frees only when its done arrives — so a
//! slow buffer visibly throttles the processor, exactly the effect
//! the paper warns about.

use std::collections::{HashMap, VecDeque};

use contutto_dmi::buffer::DmiBuffer;
use contutto_dmi::command::{CacheLine, CommandOp, Tag, TagPool};
use contutto_dmi::frame::{
    line_to_downstream_beats, CommandHeader, DownstreamFrame, DownstreamPayload, LineAssembler,
    UpstreamFrame, UpstreamPayload,
};
use contutto_dmi::link::{BitErrorInjector, LinkSegment, LinkSpeed};
use contutto_dmi::protocol::{LinkEndpoint, LinkEndpointConfig};
use contutto_dmi::training::{measure_frtl, LinkTrainer, TrainerConfig, TrainingOutcome};
use contutto_dmi::DmiError;
use contutto_sim::{Frequency, LatencyStats, MetricsRegistry, SimTime, TraceEvent, Tracer};

type HostEndpoint = LinkEndpoint<DownstreamFrame, UpstreamFrame>;
type BufferEndpoint = LinkEndpoint<UpstreamFrame, DownstreamFrame>;

/// Wire propagation latency of each channel direction.
pub const WIRE_PROPAGATION: SimTime = SimTime::from_ns(1);

/// Channel construction parameters.
#[derive(Debug, Clone)]
pub struct ChannelConfig {
    /// Link speed (8 Gb/s for ConTutto, 9.6 Gb/s for Centaur).
    pub speed: LinkSpeed,
    /// Error injection on the downstream wire.
    pub down_errors: BitErrorInjector,
    /// Error injection on the upstream wire.
    pub up_errors: BitErrorInjector,
    /// Buffer-side endpoint configuration (freeze workaround etc.).
    pub buffer_endpoint: LinkEndpointConfig,
}

impl ChannelConfig {
    /// Clean Centaur channel at 9.6 Gb/s.
    pub fn centaur() -> Self {
        ChannelConfig {
            speed: LinkSpeed::Gbps9_6,
            down_errors: BitErrorInjector::never(),
            up_errors: BitErrorInjector::never(),
            buffer_endpoint: LinkEndpointConfig::centaur_buffer(),
        }
    }

    /// Clean ConTutto channel at 8 Gb/s with the freeze workaround.
    pub fn contutto() -> Self {
        ChannelConfig {
            speed: LinkSpeed::Gbps8,
            down_errors: BitErrorInjector::never(),
            up_errors: BitErrorInjector::never(),
            buffer_endpoint: LinkEndpointConfig::contutto_buffer(),
        }
    }
}

#[derive(Debug)]
struct Pending {
    issued: SimTime,
    assembler: Option<LineAssembler>,
    data: Option<CacheLine>,
}

/// A completed command: tag, completion time, read data if any, and
/// the issue time (for latency accounting).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Completion {
    /// The command's tag (already released back to the pool).
    pub tag: Tag,
    /// When the done notification reached the host.
    pub completed_at: SimTime,
    /// When the command was submitted.
    pub issued_at: SimTime,
    /// Read data, for reads.
    pub data: Option<CacheLine>,
}

/// A full DMI channel with a plugged buffer chip.
///
/// # Example
///
/// ```
/// use contutto_power8::channel::{ChannelConfig, DmiChannel};
/// use contutto_centaur::{Centaur, CentaurConfig};
/// use contutto_dmi::CacheLine;
///
/// let mut ch = DmiChannel::new(
///     ChannelConfig::centaur(),
///     Box::new(Centaur::new(CentaurConfig::optimized(), 8 << 30)),
/// );
/// let line = CacheLine::patterned(1);
/// ch.write_line_blocking(0x1000, line)?;
/// let (back, when) = ch.read_line_blocking(0x1000)?;
/// assert_eq!(back, line);
/// assert!(when.as_ns() > 0);
/// # Ok::<(), contutto_dmi::DmiError>(())
/// ```
pub struct DmiChannel {
    host: HostEndpoint,
    buffer_ep: BufferEndpoint,
    down: LinkSegment,
    up: LinkSegment,
    buffer: Box<dyn DmiBuffer>,
    now: SimTime,
    slot: SimTime,
    tags: TagPool,
    pending: HashMap<Tag, Pending>,
    completions: VecDeque<Completion>,
    trained: Option<TrainingOutcome>,
    tracer: Tracer,
    command_latency: LatencyStats,
}

impl std::fmt::Debug for DmiChannel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DmiChannel")
            .field("buffer", &self.buffer.name())
            .field("now", &self.now)
            .field("in_flight", &self.pending.len())
            .finish_non_exhaustive()
    }
}

impl DmiChannel {
    /// Builds a channel around a buffer chip.
    pub fn new(cfg: ChannelConfig, buffer: Box<dyn DmiBuffer>) -> Self {
        DmiChannel {
            host: LinkEndpoint::new(LinkEndpointConfig::host()),
            buffer_ep: LinkEndpoint::new(cfg.buffer_endpoint.clone()),
            down: LinkSegment::new(cfg.speed, WIRE_PROPAGATION, cfg.down_errors.clone()),
            up: LinkSegment::new(cfg.speed, WIRE_PROPAGATION, cfg.up_errors.clone()),
            buffer,
            now: SimTime::ZERO,
            slot: cfg.speed.frame_time(),
            tags: TagPool::new(),
            pending: HashMap::new(),
            completions: VecDeque::new(),
            trained: None,
            tracer: Tracer::off(),
            command_latency: LatencyStats::new(),
        }
    }

    /// Turns on structured tracing with a ring of `capacity` events and
    /// connects every layer of the channel (both link endpoints, the
    /// tag pool and the buffer model) to it. Returns a handle to the
    /// shared tracer; the channel advances its clock every slot.
    pub fn enable_tracing(&mut self, capacity: usize) -> Tracer {
        let tracer = Tracer::ring(capacity);
        tracer.advance(self.now);
        self.host.attach_tracer(tracer.clone());
        self.buffer_ep.attach_tracer(tracer.clone());
        self.tags.attach_tracer(tracer.clone());
        self.buffer.attach_tracer(tracer.clone());
        self.tracer = tracer.clone();
        tracer
    }

    /// The channel's tracer (disabled unless
    /// [`DmiChannel::enable_tracing`] was called).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Snapshots every layer's counters into one hierarchical
    /// [`MetricsRegistry`]: `dmi.host.*` / `dmi.buffer.*` (protocol
    /// endpoints), `link.down.*` / `link.up.*` (wire segments),
    /// `channel.*` (tags and command latency), and whatever the plugged
    /// buffer model contributes under `buffer.*`.
    pub fn metrics(&self) -> MetricsRegistry {
        let mut reg = MetricsRegistry::new();
        for (prefix, stats) in [
            ("dmi.host", self.host.stats()),
            ("dmi.buffer", self.buffer_ep.stats()),
        ] {
            reg.set_counter(&format!("{prefix}.frames_tx"), stats.frames_tx);
            reg.set_counter(&format!("{prefix}.frames_rx_ok"), stats.frames_rx_ok);
            reg.set_counter(&format!("{prefix}.crc_errors"), stats.crc_errors);
            reg.set_counter(&format!("{prefix}.seq_errors"), stats.seq_errors);
            reg.set_counter(
                &format!("{prefix}.duplicates_dropped"),
                stats.duplicates_dropped,
            );
            reg.set_counter(
                &format!("{prefix}.replays_triggered"),
                stats.replays_triggered,
            );
            reg.set_counter(&format!("{prefix}.frames_replayed"), stats.frames_replayed);
        }
        for (prefix, seg) in [("link.down", &self.down), ("link.up", &self.up)] {
            reg.set_counter(&format!("{prefix}.frames_sent"), seg.frames_sent());
            reg.set_counter(
                &format!("{prefix}.frames_corrupted"),
                seg.frames_corrupted(),
            );
        }
        reg.set_counter("channel.tags_in_flight", self.tags.in_flight() as u64);
        reg.set_counter("channel.commands_completed", self.command_latency.count());
        reg.set_latency("channel.command_latency", &self.command_latency);
        self.buffer.register_metrics("buffer", &mut reg);
        reg
    }

    /// The plugged buffer's name.
    pub fn buffer_name(&self) -> &str {
        self.buffer.name()
    }

    /// Access to the buffer model (telemetry, knob control).
    pub fn buffer_mut(&mut self) -> &mut dyn DmiBuffer {
        self.buffer.as_mut()
    }

    /// Current channel time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The training outcome, once trained.
    pub fn training(&self) -> Option<TrainingOutcome> {
        self.trained
    }

    /// Free command tags right now.
    pub fn tags_available(&self) -> usize {
        self.tags.available()
    }

    /// Host-side link statistics.
    pub fn host_stats(&self) -> &contutto_dmi::protocol::LinkStats {
        self.host.stats()
    }

    /// Trains the link: measures FRTL with real probe frames against
    /// this buffer's turnaround and runs the alignment sequence.
    ///
    /// # Errors
    ///
    /// Propagates [`DmiError::FrtlExceeded`] /
    /// [`DmiError::TrainingFailed`] from the trainer.
    pub fn train(&mut self, cfg: TrainerConfig, seed: u64) -> Result<TrainingOutcome, DmiError> {
        // FRTL probes ride a scratch pair of segments with the same
        // wire parameters (training happens before functional traffic).
        let mut down = LinkSegment::new(
            self.down.speed(),
            WIRE_PROPAGATION,
            BitErrorInjector::never(),
        );
        let mut up = LinkSegment::new(self.up.speed(), WIRE_PROPAGATION, BitErrorInjector::never());
        let (frtl, _cycles) = measure_frtl(
            &mut down,
            &mut up,
            self.buffer.frtl_turnaround(),
            Frequency::from_ghz(2),
        );
        let mut trainer = LinkTrainer::new(cfg, seed);
        let outcome = trainer.train(frtl)?;
        // Set the replay timeout from the measured FRTL (paper §2.3).
        let timeout_frames = frtl.as_ps().div_ceil(self.slot.as_ps()) + 4;
        self.host.set_ack_timeout(timeout_frames);
        self.buffer_ep.set_ack_timeout(timeout_frames);
        self.trained = Some(outcome);
        Ok(outcome)
    }

    /// Submits a command; returns its tag.
    ///
    /// # Errors
    ///
    /// [`DmiError::NoFreeTag`] when all 32 tags are outstanding — the
    /// caller must drain completions first (tag throttling).
    pub fn submit(&mut self, op: CommandOp) -> Result<Tag, DmiError> {
        let tag = self.tags.acquire()?;
        let header = CommandHeader::from_op(&op);
        self.host
            .enqueue(DownstreamPayload::Command { tag, header });
        let (assembler, write_data) = match &op {
            CommandOp::Read { .. } => (Some(LineAssembler::upstream()), None),
            CommandOp::Write { data, .. } | CommandOp::Rmw { data, .. } => (None, Some(*data)),
            CommandOp::Flush => (None, None),
        };
        if let Some(data) = write_data {
            for beat in line_to_downstream_beats(tag, &data) {
                self.host.enqueue(beat);
            }
        }
        self.pending.insert(
            tag,
            Pending {
                issued: self.now,
                assembler,
                data: None,
            },
        );
        Ok(tag)
    }

    /// Advances the channel by one frame slot.
    pub fn step(&mut self) {
        let now = self.now;
        // All trace events this slot are stamped with the slot time.
        self.tracer.advance(now);
        // Host transmits this slot's downstream frame.
        self.down.transmit(now, self.host.tick_tx());
        // Buffer receives any arrived downstream frames.
        while let Some(bytes) = self.down.receive(now) {
            if let Some(payload) = self.buffer_ep.on_receive(&bytes) {
                self.buffer.push_downstream(now, payload);
            }
        }
        // Buffer offers the upstream arbiter one slot.
        if let Some(payload) = self.buffer.pull_upstream(now) {
            self.buffer_ep.enqueue(payload);
        }
        self.up.transmit(now, self.buffer_ep.tick_tx());
        // Host receives any arrived upstream frames.
        while let Some(bytes) = self.up.receive(now) {
            if let Some(payload) = self.host.on_receive(&bytes) {
                self.handle_response(now, payload);
            }
        }
        self.now += self.slot;
    }

    fn handle_response(&mut self, now: SimTime, payload: UpstreamPayload) {
        match payload {
            UpstreamPayload::Idle | UpstreamPayload::Control(_) => {}
            UpstreamPayload::ReadData { tag, beat, data } => {
                let pending = self
                    .pending
                    .get_mut(&tag)
                    .expect("read data for unknown tag");
                let assembler = pending
                    .assembler
                    .as_mut()
                    .expect("read data for non-read command");
                if assembler.add_beat(beat, &data) {
                    let asm = pending.assembler.take().expect("present");
                    pending.data = Some(asm.into_line());
                }
            }
            UpstreamPayload::Done { first, second } => {
                self.complete(now, first);
                if let Some(t) = second {
                    self.complete(now, t);
                }
            }
        }
    }

    fn complete(&mut self, now: SimTime, tag: Tag) {
        let pending = self.pending.remove(&tag).expect("done for unknown tag");
        self.tags.release(tag).expect("tag was in flight");
        self.command_latency.record(now - pending.issued);
        self.completions.push_back(Completion {
            tag,
            completed_at: now,
            issued_at: pending.issued,
            data: pending.data,
        });
    }

    /// Runs until time `t`.
    pub fn run_until(&mut self, t: SimTime) {
        while self.now < t {
            self.step();
        }
    }

    /// Runs until a completion is available or `deadline` passes.
    pub fn next_completion(&mut self, deadline: SimTime) -> Option<Completion> {
        loop {
            if let Some(c) = self.completions.pop_front() {
                return Some(c);
            }
            if self.now >= deadline {
                return None;
            }
            self.step();
        }
    }

    /// Drains any already-collected completions.
    pub fn take_completions(&mut self) -> Vec<Completion> {
        self.completions.drain(..).collect()
    }

    /// Convenience: submit a read and block until its data returns.
    ///
    /// # Errors
    ///
    /// Propagates tag exhaustion.
    ///
    /// # Panics
    ///
    /// Panics if the buffer never answers within 1 ms of simulated
    /// time (a protocol hang — always a bug).
    pub fn read_line_blocking(&mut self, addr: u64) -> Result<(CacheLine, SimTime), DmiError> {
        let tag = self.submit(CommandOp::Read { addr })?;
        let deadline = self.now + SimTime::from_ms(1);
        loop {
            match self.next_completion(deadline) {
                Some(c) if c.tag == tag => {
                    return Ok((c.data.expect("read returns data"), c.completed_at));
                }
                Some(other) => {
                    // Out-of-interest completion; keep it for callers
                    // that interleave — here we just drop it.
                    let _ = other;
                }
                None => {
                    self.tracer
                        .record(TraceEvent::TagTimeout { tag: tag.raw() });
                    panic!("buffer did not answer read within 1 ms")
                }
            }
        }
    }

    /// Convenience: submit a write and block until durable.
    ///
    /// # Errors
    ///
    /// Propagates tag exhaustion.
    ///
    /// # Panics
    ///
    /// Panics on a 1 ms protocol hang.
    pub fn write_line_blocking(&mut self, addr: u64, data: CacheLine) -> Result<SimTime, DmiError> {
        let tag = self.submit(CommandOp::Write { addr, data })?;
        let deadline = self.now + SimTime::from_ms(1);
        loop {
            match self.next_completion(deadline) {
                Some(c) if c.tag == tag => return Ok(c.completed_at),
                Some(_) => {}
                None => {
                    self.tracer
                        .record(TraceEvent::TagTimeout { tag: tag.raw() });
                    panic!("buffer did not answer write within 1 ms")
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use contutto_centaur::{Centaur, CentaurConfig};
    use contutto_core::{ConTutto, ContuttoConfig, MemoryPopulation};
    use contutto_dmi::command::RmwOp;

    fn centaur_channel() -> DmiChannel {
        DmiChannel::new(
            ChannelConfig::centaur(),
            Box::new(Centaur::new(CentaurConfig::optimized(), 8 << 30)),
        )
    }

    fn contutto_channel() -> DmiChannel {
        DmiChannel::new(
            ChannelConfig::contutto(),
            Box::new(ConTutto::new(
                ContuttoConfig::base(),
                MemoryPopulation::dram_8gb(),
            )),
        )
    }

    #[test]
    fn centaur_write_read_roundtrip() {
        let mut ch = centaur_channel();
        let line = CacheLine::patterned(5);
        ch.write_line_blocking(0x1000, line).unwrap();
        let (back, _) = ch.read_line_blocking(0x1000).unwrap();
        assert_eq!(back, line);
    }

    #[test]
    fn contutto_write_read_roundtrip() {
        let mut ch = contutto_channel();
        let line = CacheLine::patterned(6);
        ch.write_line_blocking(0x2000, line).unwrap();
        let (back, _) = ch.read_line_blocking(0x2000).unwrap();
        assert_eq!(back, line);
    }

    #[test]
    fn contutto_is_slower_than_centaur() {
        let mut cen = centaur_channel();
        let mut con = contutto_channel();
        // Warm both (first access opens rows).
        cen.read_line_blocking(0).unwrap();
        con.read_line_blocking(0).unwrap();
        let t0 = cen.now();
        cen.read_line_blocking(0).unwrap();
        let cen_lat = cen.now() - t0;
        let t0 = con.now();
        con.read_line_blocking(0).unwrap();
        let con_lat = con.now() - t0;
        assert!(
            con_lat > cen_lat * 3,
            "contutto {con_lat} vs centaur {cen_lat}"
        );
    }

    #[test]
    fn training_succeeds_on_both_buffers() {
        let mut cen = centaur_channel();
        let out = cen.train(TrainerConfig::default(), 42).unwrap();
        assert!(out.frtl < SimTime::from_ns(40), "centaur frtl {}", out.frtl);
        let mut con = contutto_channel();
        let out = con.train(TrainerConfig::default(), 42).unwrap();
        assert!(
            out.frtl > SimTime::from_ns(60),
            "contutto frtl {}",
            out.frtl
        );
        assert!(con.training().is_some());
    }

    #[test]
    fn tag_throttling_at_32_outstanding() {
        let mut ch = contutto_channel();
        for i in 0..32 {
            ch.submit(CommandOp::Read { addr: i * 128 }).unwrap();
        }
        assert_eq!(ch.tags_available(), 0);
        assert!(matches!(
            ch.submit(CommandOp::Read { addr: 0 }),
            Err(DmiError::NoFreeTag)
        ));
        // Drain: all 32 complete.
        let mut done = 0;
        let deadline = ch.now() + SimTime::from_ms(1);
        while let Some(_c) = ch.next_completion(deadline) {
            done += 1;
            if done == 32 {
                break;
            }
        }
        assert_eq!(done, 32);
        assert_eq!(ch.tags_available(), 32);
    }

    #[test]
    fn rmw_through_full_channel() {
        let mut ch = contutto_channel();
        let mut init = CacheLine::ZERO;
        init.set_word(0, 7);
        ch.write_line_blocking(0, init).unwrap();
        let mut add = CacheLine::ZERO;
        add.set_word(0, 5);
        let tag = ch
            .submit(CommandOp::Rmw {
                addr: 0,
                op: RmwOp::AtomicAdd,
                data: add,
            })
            .unwrap();
        let deadline = ch.now() + SimTime::from_ms(1);
        loop {
            match ch.next_completion(deadline) {
                Some(c) if c.tag == tag => break,
                Some(_) => {}
                None => panic!("rmw hung"),
            }
        }
        let (result, _) = ch.read_line_blocking(0).unwrap();
        assert_eq!(result.word(0), 12);
    }

    #[test]
    fn pipelined_reads_overlap() {
        // 8 independent reads complete far faster than 8 serialized.
        let mut ch = contutto_channel();
        ch.read_line_blocking(0).unwrap(); // warm
        let t0 = ch.now();
        for i in 0..8u64 {
            ch.submit(CommandOp::Read { addr: i * 128 }).unwrap();
        }
        let deadline = ch.now() + SimTime::from_ms(1);
        let mut done = 0;
        while done < 8 {
            assert!(ch.next_completion(deadline).is_some(), "hang");
            done += 1;
        }
        let pipelined = ch.now() - t0;

        let mut ch2 = contutto_channel();
        ch2.read_line_blocking(0).unwrap();
        let t0 = ch2.now();
        for i in 0..8u64 {
            ch2.read_line_blocking(i * 128).unwrap();
        }
        let serialized = ch2.now() - t0;
        assert!(
            pipelined * 2 < serialized,
            "pipelined {pipelined} vs serialized {serialized}"
        );
    }

    #[test]
    fn channel_recovers_from_wire_errors() {
        let mut cfg = ChannelConfig::contutto();
        cfg.down_errors = BitErrorInjector::bernoulli(0.01, 99);
        cfg.up_errors = BitErrorInjector::bernoulli(0.01, 77);
        let mut ch = DmiChannel::new(
            cfg,
            Box::new(ConTutto::new(
                ContuttoConfig::base(),
                MemoryPopulation::dram_8gb(),
            )),
        );
        for i in 0..20u64 {
            let line = CacheLine::patterned(i);
            ch.write_line_blocking(i * 128, line).unwrap();
            let (back, _) = ch.read_line_blocking(i * 128).unwrap();
            assert_eq!(back, line, "iteration {i}");
        }
        assert!(
            ch.host_stats().crc_errors + ch.host_stats().seq_errors > 0
                || ch.host_stats().replays_triggered > 0
        );
    }
}
