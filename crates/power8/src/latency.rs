//! The memory-latency probe.
//!
//! Paper §4.1: "The latency to memory is the measured latency of a
//! single memory command, averaged over multiple single commands
//! issued from POWER8" (Table 2) and "The measurement represents the
//! total roundtrip latency through software, processor, caches, Power
//! bus nest, DMI link and ConTutto" (Table 3).
//!
//! [`LatencyProbe`] issues strictly dependent cache-line reads (each
//! waits for the previous completion) over a small ring of lines —
//! after a warm-up pass the DRAM row buffers hit, so the probe
//! measures the command path rather than DRAM bank luck. Two
//! measurement levels reproduce the two tables' vantage points.

use contutto_dmi::command::CommandOp;
use contutto_sim::{LatencyStats, SimTime};

use crate::channel::DmiChannel;

/// Where the measurement is taken.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MeasurementLevel {
    /// At the nest / DMI master: command issue to done, plus nest
    /// arbitration (Table 2's vantage).
    Nest,
    /// Through software: adds core, L1–L3 traversal and the load/store
    /// unit path (Table 3's vantage).
    Software,
}

impl MeasurementLevel {
    /// Fixed processor-side overhead added to the channel round trip.
    pub fn overhead(self) -> SimTime {
        match self {
            MeasurementLevel::Nest => SimTime::from_ns(17),
            MeasurementLevel::Software => SimTime::from_ns(35),
        }
    }
}

/// Dependent-load latency probe.
///
/// # Example
///
/// ```
/// use contutto_power8::channel::{ChannelConfig, DmiChannel};
/// use contutto_power8::latency::{LatencyProbe, MeasurementLevel};
/// use contutto_centaur::{Centaur, CentaurConfig};
///
/// let mut ch = DmiChannel::new(
///     ChannelConfig::centaur(),
///     Box::new(Centaur::new(CentaurConfig::optimized(), 8 << 30)),
/// );
/// let probe = LatencyProbe { iterations: 16, ..Default::default() };
/// let mean = probe.measure(&mut ch, MeasurementLevel::Nest);
/// // Table 2's optimized row sits near 79 ns.
/// assert!((70.0..90.0).contains(&mean.as_ns_f64()));
/// ```
#[derive(Debug, Clone)]
pub struct LatencyProbe {
    /// Number of distinct lines in the probe ring.
    pub ring_lines: u64,
    /// Measured iterations (after one warm-up pass).
    pub iterations: u64,
    /// Base address of the ring.
    pub base_addr: u64,
}

impl Default for LatencyProbe {
    fn default() -> Self {
        LatencyProbe {
            ring_lines: 16,
            iterations: 256,
            base_addr: 0x10_0000,
        }
    }
}

impl LatencyProbe {
    /// Runs the probe on a channel; returns the mean round-trip
    /// latency at the requested measurement level.
    ///
    /// # Panics
    ///
    /// Panics if the channel hangs (propagated from the blocking read).
    pub fn measure(&self, channel: &mut DmiChannel, level: MeasurementLevel) -> SimTime {
        self.measure_stats(channel, level).mean()
    }

    /// Full statistics variant of [`LatencyProbe::measure`].
    pub fn measure_stats(&self, channel: &mut DmiChannel, level: MeasurementLevel) -> LatencyStats {
        // Warm-up: open the rows.
        for i in 0..self.ring_lines {
            let addr = self.base_addr + i * 128;
            channel
                .read_line_blocking(addr)
                .expect("probe read must not exhaust tags");
        }
        let mut stats = LatencyStats::new();
        for i in 0..self.iterations {
            let addr = self.base_addr + (i % self.ring_lines) * 128;
            let before = channel.now();
            channel
                .read_line_blocking(addr)
                .expect("probe read must not exhaust tags");
            let roundtrip = channel.now() - before;
            stats.record(roundtrip + level.overhead());
        }
        stats
    }

    /// Measures store latency (issue to done) instead of loads.
    pub fn measure_writes(
        &self,
        channel: &mut DmiChannel,
        level: MeasurementLevel,
    ) -> LatencyStats {
        let mut stats = LatencyStats::new();
        for i in 0..self.iterations {
            let addr = self.base_addr + (i % self.ring_lines) * 128;
            let before = channel.now();
            channel
                .write_line_blocking(addr, contutto_dmi::CacheLine::patterned(i))
                .expect("probe write must not exhaust tags");
            stats.record(channel.now() - before + level.overhead());
        }
        stats
    }
}

/// Issues `count` independent reads as fast as tags allow and returns
/// achieved throughput in lines/second — the tag-throttling
/// experiment (paper §2.3: too-high latency makes the processor cycle
/// through all tags and stall).
pub fn read_throughput_lines_per_sec(channel: &mut DmiChannel, count: u64) -> f64 {
    let start = channel.now();
    let mut submitted = 0u64;
    let mut completed = 0u64;
    let deadline = start + SimTime::from_ms(100);
    while completed < count {
        while submitted < count {
            // A 64-line ring: rows stay open, so the wire and the tag
            // window are the limiters, not DRAM bank luck.
            let addr = (submitted % 64) * 128;
            match channel.submit(CommandOp::Read { addr }) {
                Ok(_) => submitted += 1,
                Err(_) => break, // tags exhausted — throttled
            }
        }
        match channel.next_completion(deadline) {
            Some(_) => completed += 1,
            None => panic!("throughput run hung"),
        }
    }
    let elapsed = channel.now() - start;
    count as f64 / elapsed.as_secs_f64()
}

/// Measures sustained read bandwidth of one channel: keep the 32-tag
/// window full for `lines` cache-line reads and divide by elapsed
/// time. Paper §2.1 quotes 410 GB/s peak / 230 GB/s sustained across
/// all eight channels (with four DDR ports per Centaur); our per-port
/// model reaches a substantial fraction of the per-channel share, and
/// the upstream wire (4 data beats + done per line) is the ceiling.
pub fn read_bandwidth_bytes_per_sec(channel: &mut DmiChannel, lines: u64) -> f64 {
    let tp = read_throughput_lines_per_sec(channel, lines);
    tp * 128.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::{ChannelConfig, DmiChannel};
    use contutto_centaur::{Centaur, CentaurConfig};
    use contutto_core::{ConTutto, ContuttoConfig, MemoryPopulation};

    fn centaur(cfg: CentaurConfig) -> DmiChannel {
        DmiChannel::new(
            ChannelConfig::centaur(),
            Box::new(Centaur::new(cfg, 8 << 30)),
        )
    }

    fn contutto(cfg: ContuttoConfig) -> DmiChannel {
        DmiChannel::new(
            ChannelConfig::contutto(),
            Box::new(ConTutto::new(cfg, MemoryPopulation::dram_8gb())),
        )
    }

    #[test]
    fn overheads_ordered() {
        assert!(MeasurementLevel::Software.overhead() > MeasurementLevel::Nest.overhead());
    }

    #[test]
    fn probe_is_deterministic() {
        let probe = LatencyProbe::default();
        let a = probe.measure(
            &mut centaur(CentaurConfig::optimized()),
            MeasurementLevel::Nest,
        );
        let b = probe.measure(
            &mut centaur(CentaurConfig::optimized()),
            MeasurementLevel::Nest,
        );
        assert_eq!(a, b);
    }

    #[test]
    fn centaur_optimized_is_about_79ns_at_nest() {
        // Table 2 row 1.
        let probe = LatencyProbe::default();
        let mean = probe.measure(
            &mut centaur(CentaurConfig::optimized()),
            MeasurementLevel::Nest,
        );
        let ns = mean.as_ns_f64();
        assert!((74.0..84.0).contains(&ns), "measured {ns} ns");
    }

    #[test]
    fn centaur_optimized_is_about_97ns_at_software() {
        // Table 3 row 1.
        let probe = LatencyProbe::default();
        let mean = probe.measure(
            &mut centaur(CentaurConfig::optimized()),
            MeasurementLevel::Software,
        );
        let ns = mean.as_ns_f64();
        assert!((92.0..102.0).contains(&ns), "measured {ns} ns");
    }

    #[test]
    fn contutto_base_is_about_390ns_at_software() {
        // Table 3 row 2.
        let probe = LatencyProbe::default();
        let mean = probe.measure(
            &mut contutto(ContuttoConfig::base()),
            MeasurementLevel::Software,
        );
        let ns = mean.as_ns_f64();
        assert!((370.0..410.0).contains(&ns), "measured {ns} ns");
    }

    #[test]
    fn knob_steps_add_24ns() {
        // Minima are refresh-free, so the inserted delay shows exactly.
        let probe = LatencyProbe::default();
        let min_of = |knob: u8| {
            probe
                .measure_stats(
                    &mut contutto(ContuttoConfig::with_knob(knob)),
                    MeasurementLevel::Software,
                )
                .min()
                .unwrap()
                .as_ns_f64()
        };
        let base = min_of(0);
        let k2 = min_of(2);
        let k7 = min_of(7);
        assert!((k2 - base - 48.0).abs() < 4.0, "k2 delta {}", k2 - base);
        assert!((k7 - base - 168.0).abs() < 4.0, "k7 delta {}", k7 - base);
    }

    #[test]
    fn write_latency_is_measurable() {
        let probe = LatencyProbe {
            iterations: 16,
            ..LatencyProbe::default()
        };
        let stats = probe.measure_writes(
            &mut centaur(CentaurConfig::optimized()),
            MeasurementLevel::Nest,
        );
        assert_eq!(stats.count(), 16);
        assert!(stats.mean() > SimTime::from_ns(40));
    }

    #[test]
    fn centaur_sustained_read_bandwidth_is_wire_limited() {
        // Upstream ceiling: 128 B per (4 data + ~0.5 done) frames of
        // 1.664 ns = ~15-17 GB/s per channel. Eight channels would
        // aggregate >100 GB/s — same order as the paper's 230 GB/s
        // with its 4 DDR ports per buffer (we model one port pair).
        let mut ch = centaur(CentaurConfig::optimized());
        let bw = read_bandwidth_bytes_per_sec(&mut ch, 512);
        let gbps = bw / 1e9;
        assert!((10.0..18.0).contains(&gbps), "sustained {gbps} GB/s");
        // Raw upstream wire: 21 lanes x 9.6 Gb/s = 25.2 GB/s — we must
        // stay below it.
        assert!(bw < contutto_dmi::LinkSpeed::Gbps9_6.raw_bandwidth_bytes_per_sec(21));
    }

    #[test]
    fn contutto_sustained_bandwidth_is_on_par_despite_latency() {
        // Paper §3.3: the FPGA's widened datapath targets "throughput
        // performance on par or near that of the Centaur ASIC". With
        // 32 tags in flight, latency hides and the 8 Gb/s wire is the
        // difference, not the FPGA pipeline.
        let mut cen = centaur(CentaurConfig::optimized());
        let mut con = contutto(ContuttoConfig::base());
        let cen_bw = read_bandwidth_bytes_per_sec(&mut cen, 512);
        let con_bw = read_bandwidth_bytes_per_sec(&mut con, 512);
        let ratio = con_bw / cen_bw;
        // The FPGA's 390 ns round trip against 32 tags caps it at
        // ~32x128B/390ns = 10.5 GB/s — the §2.3 throttling effect —
        // while Centaur is wire-bound; "on par or near" holds at the
        // slower link speed.
        assert!(
            ratio > 0.55,
            "contutto reaches {ratio:.2}x of centaur bandwidth"
        );
    }

    #[test]
    fn tag_throttling_limits_throughput_of_slow_buffer() {
        // With 32 tags, throughput <= 32 / round-trip. The slower
        // ConTutto must achieve less than Centaur.
        let mut fast = centaur(CentaurConfig::optimized());
        let mut slow = contutto(ContuttoConfig::with_knob(7));
        let fast_tp = read_throughput_lines_per_sec(&mut fast, 256);
        let slow_tp = read_throughput_lines_per_sec(&mut slow, 256);
        assert!(fast_tp > slow_tp, "fast {fast_tp} slow {slow_tp}");
    }
}
