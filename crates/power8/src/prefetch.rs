//! CPU-side stream prefetching.
//!
//! The reason Figure 6/7's compute-bound and streaming benchmarks
//! barely notice a 6× memory latency: POWER8's aggressive hardware
//! prefetch engines detect strides and run ahead, converting exposed
//! latency into overlapped bandwidth. [`StreamingLoader`] models that
//! mechanism on top of a live channel: a stride detector arms after
//! two matching deltas and keeps up to `degree` line prefetches in
//! flight; demand loads that hit the prefetch buffer cost only the
//! buffer lookup.
//!
//! The tests demonstrate the paper's implicit claim directly: a
//! *streaming* access pattern through the slow ConTutto channel
//! approaches Centaur-class average latency, while *dependent* loads
//! (pointer chasing) cannot be helped.

use std::collections::HashMap;

use contutto_dmi::command::{CacheLine, CommandOp, Tag};
use contutto_sim::SimTime;

use crate::channel::DmiChannel;

/// Prefetcher statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PrefetchStats {
    /// Demand loads issued.
    pub demand_loads: u64,
    /// Demand loads served from the prefetch buffer.
    pub prefetch_hits: u64,
    /// Prefetches issued to the channel.
    pub prefetches_issued: u64,
    /// Prefetched lines that were never used (evicted on retire).
    pub wasted_prefetches: u64,
}

/// A stride-detecting, degree-N stream prefetcher in front of a
/// channel.
#[derive(Debug)]
pub struct StreamingLoader {
    /// Lines the prefetcher may keep in flight.
    degree: usize,
    last_addr: Option<u64>,
    stride: i64,
    confidence: u32,
    /// Prefetches in flight: tag → target address.
    in_flight: HashMap<Tag, u64>,
    /// Completed prefetches awaiting use.
    buffer: HashMap<u64, CacheLine>,
    /// Next address the stream engine would fetch.
    next_prefetch: u64,
    stats: PrefetchStats,
}

impl StreamingLoader {
    /// Creates a loader with the given prefetch degree.
    ///
    /// # Panics
    ///
    /// Panics if `degree` is zero or would exhaust the 32-tag pool.
    pub fn new(degree: usize) -> Self {
        assert!(
            degree > 0 && degree < 28,
            "degree must leave tags for demand"
        );
        StreamingLoader {
            degree,
            last_addr: None,
            stride: 0,
            confidence: 0,
            in_flight: HashMap::new(),
            buffer: HashMap::new(),
            next_prefetch: 0,
            stats: PrefetchStats::default(),
        }
    }

    /// Statistics so far.
    pub fn stats(&self) -> PrefetchStats {
        self.stats
    }

    fn drain_completions(&mut self, channel: &mut DmiChannel) {
        for c in channel.take_completions() {
            if let Some(addr) = self.in_flight.remove(&c.tag) {
                if let Some(line) = c.data {
                    self.buffer.insert(addr, line);
                }
            }
        }
    }

    fn pump_prefetches(&mut self, channel: &mut DmiChannel) {
        if self.confidence < 2 || self.stride == 0 {
            return;
        }
        while self.in_flight.len() < self.degree {
            let target = self.next_prefetch;
            if self.buffer.contains_key(&target) || self.in_flight.values().any(|a| *a == target) {
                self.next_prefetch = target.wrapping_add_signed(self.stride);
                continue;
            }
            match channel.submit(CommandOp::Read { addr: target }) {
                Ok(tag) => {
                    self.stats.prefetches_issued += 1;
                    self.in_flight.insert(tag, target);
                    self.next_prefetch = target.wrapping_add_signed(self.stride);
                }
                Err(_) => break, // demand traffic owns the remaining tags
            }
        }
    }

    /// Loads one line, training the stride detector and running the
    /// stream engine. Returns the data and its observed latency.
    ///
    /// # Panics
    ///
    /// Panics if the channel hangs.
    pub fn load(&mut self, channel: &mut DmiChannel, addr: u64) -> (CacheLine, SimTime) {
        self.stats.demand_loads += 1;
        // Train the detector.
        if let Some(last) = self.last_addr {
            let delta = addr as i64 - last as i64;
            if delta == self.stride && delta != 0 {
                self.confidence = (self.confidence + 1).min(8);
            } else {
                self.stride = delta;
                self.confidence = 1;
                self.next_prefetch = addr.wrapping_add_signed(delta);
            }
        }
        self.last_addr = Some(addr);

        self.drain_completions(channel);
        let start = channel.now();
        let line = if let Some(line) = self.buffer.remove(&addr) {
            self.stats.prefetch_hits += 1;
            line
        } else {
            // Demand miss: fetch through the channel. Prefetch
            // completions arriving meanwhile are captured afterwards.
            let tag = channel
                .submit(CommandOp::Read { addr })
                .expect("degree leaves demand tags");
            let deadline = channel.now() + SimTime::from_ms(10);
            let mut demand_line = None;
            while demand_line.is_none() {
                let c = channel.next_completion(deadline).expect("demand load hung");
                if c.tag == tag {
                    demand_line = c.data;
                } else if let Some(pf_addr) = self.in_flight.remove(&c.tag) {
                    if let Some(l) = c.data {
                        self.buffer.insert(pf_addr, l);
                    }
                }
            }
            demand_line.expect("reads return data")
        };
        self.pump_prefetches(channel);
        (line, channel.now() - start)
    }

    /// Retires the loader, counting unused prefetched lines.
    pub fn retire(mut self) -> PrefetchStats {
        self.stats.wasted_prefetches += self.buffer.len() as u64;
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::{ChannelConfig, DmiChannel};
    use contutto_centaur::{Centaur, CentaurConfig};
    use contutto_core::{ConTutto, ContuttoConfig, MemoryPopulation};

    fn contutto_channel() -> DmiChannel {
        DmiChannel::new(
            ChannelConfig::contutto(),
            Box::new(ConTutto::new(
                ContuttoConfig::base(),
                MemoryPopulation::dram_8gb(),
            )),
        )
    }

    fn centaur_channel() -> DmiChannel {
        DmiChannel::new(
            ChannelConfig::centaur(),
            Box::new(Centaur::new(CentaurConfig::optimized(), 8 << 30)),
        )
    }

    fn stream_mean_ns(channel: &mut DmiChannel, loader: &mut StreamingLoader, lines: u64) -> f64 {
        let mut total = SimTime::ZERO;
        for i in 0..lines {
            let (_, lat) = loader.load(channel, i * 128);
            total += lat;
        }
        total.as_ns_f64() / lines as f64
    }

    #[test]
    fn prefetcher_returns_correct_data() {
        let mut ch = contutto_channel();
        for i in 0..32u64 {
            ch.write_line_blocking(i * 128, CacheLine::patterned(i))
                .unwrap();
        }
        let mut loader = StreamingLoader::new(8);
        for i in 0..32u64 {
            let (line, _) = loader.load(&mut ch, i * 128);
            assert_eq!(line, CacheLine::patterned(i), "line {i}");
        }
        let stats = loader.retire();
        assert!(stats.prefetch_hits > 16, "stats {stats:?}");
    }

    #[test]
    fn streaming_hides_contutto_latency() {
        // The Figure 7 mechanism: streaming benchmarks tolerate the
        // slow buffer because prefetch overlaps the latency.
        let mut ch = contutto_channel();
        let mut loader = StreamingLoader::new(16);
        let streamed = stream_mean_ns(&mut ch, &mut loader, 128);

        let mut ch2 = contutto_channel();
        let mut dependent = 0.0;
        for i in 0..64u64 {
            let t0 = ch2.now();
            ch2.read_line_blocking(i * 128).unwrap();
            dependent += (ch2.now() - t0).as_ns_f64();
        }
        dependent /= 64.0;

        assert!(
            streamed < dependent / 3.0,
            "streamed {streamed:.0} ns vs dependent {dependent:.0} ns"
        );
    }

    #[test]
    fn streamed_contutto_approaches_centaur_class_latency() {
        let mut slow = contutto_channel();
        let mut loader = StreamingLoader::new(16);
        let streamed_slow = stream_mean_ns(&mut slow, &mut loader, 128);

        let mut fast = centaur_channel();
        let mut dependent_fast = 0.0;
        for i in 0..64u64 {
            let t0 = fast.now();
            fast.read_line_blocking(i * 128).unwrap();
            dependent_fast += (fast.now() - t0).as_ns_f64();
        }
        dependent_fast /= 64.0;

        // A prefetched stream over the 390 ns FPGA path averages below
        // twice the *dependent* latency of the 97 ns ASIC path.
        assert!(
            streamed_slow < dependent_fast * 2.0,
            "streamed contutto {streamed_slow:.0} ns vs dependent centaur {dependent_fast:.0} ns"
        );
    }

    #[test]
    fn random_pattern_gets_no_prefetch_benefit() {
        let mut ch = contutto_channel();
        let mut loader = StreamingLoader::new(8);
        let mut lcg: u64 = 7;
        for _ in 0..32 {
            lcg = lcg.wrapping_mul(6364136223846793005).wrapping_add(1);
            loader.load(&mut ch, (lcg % 4096) * 128);
        }
        let stats = loader.retire();
        assert_eq!(stats.prefetch_hits, 0, "stats {stats:?}");
    }

    #[test]
    fn stride_detection_works_backwards_too() {
        let mut ch = contutto_channel();
        let mut loader = StreamingLoader::new(8);
        let base = 1024 * 128;
        for i in 0..32u64 {
            loader.load(&mut ch, base - i * 128);
        }
        let stats = loader.retire();
        assert!(stats.prefetch_hits > 10, "stats {stats:?}");
    }
}
