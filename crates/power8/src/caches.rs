//! Processor-side cache hierarchy (timing model).
//!
//! A compact L1/L2/L3 in front of the DMI channel, used by the
//! pointer-chase workload and the software-level latency accounting.
//! Geometry follows POWER8 per-core figures (64 KiB L1d, 512 KiB L2,
//! 8 MiB of L3 region) with round latencies at a 4 GHz core.

use contutto_centaur::EdramCache;
use contutto_dmi::DmiError;
use contutto_sim::SimTime;

use crate::channel::DmiChannel;

/// Which level served an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HitLevel {
    /// L1 data cache.
    L1,
    /// L2.
    L2,
    /// L3 region.
    L3,
    /// Went to memory over the DMI channel.
    Memory,
}

/// Per-level hit counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// L1 hits.
    pub l1_hits: u64,
    /// L2 hits.
    pub l2_hits: u64,
    /// L3 hits.
    pub l3_hits: u64,
    /// Memory accesses.
    pub memory_accesses: u64,
}

/// The three-level hierarchy.
#[derive(Debug)]
pub struct CacheHierarchy {
    l1: EdramCache,
    l2: EdramCache,
    l3: EdramCache,
    l1_latency: SimTime,
    l2_latency: SimTime,
    l3_latency: SimTime,
    stats: CacheStats,
}

impl Default for CacheHierarchy {
    fn default() -> Self {
        Self::power8_core()
    }
}

impl CacheHierarchy {
    /// POWER8-like per-core geometry.
    pub fn power8_core() -> Self {
        let mut l1 = EdramCache::new(64 << 10, 8);
        let mut l2 = EdramCache::new(512 << 10, 8);
        let mut l3 = EdramCache::new(8 << 20, 8);
        // Demand-fetch only; the memory-side Centaur cache prefetches.
        l1.set_prefetch_degree(0);
        l2.set_prefetch_degree(0);
        l3.set_prefetch_degree(0);
        CacheHierarchy {
            l1,
            l2,
            l3,
            l1_latency: SimTime::from_ps(800),
            l2_latency: SimTime::from_ps(3_300),
            l3_latency: SimTime::from_ps(7_000),
            stats: CacheStats::default(),
        }
    }

    /// Per-level stats.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Looks up an address; on a full miss all levels are filled.
    /// Returns the serving level and its latency contribution
    /// (memory latency is the channel's business).
    pub fn access(&mut self, addr: u64) -> (HitLevel, SimTime) {
        if self.l1.access(addr) {
            self.stats.l1_hits += 1;
            return (HitLevel::L1, self.l1_latency);
        }
        if self.l2.access(addr) {
            self.stats.l2_hits += 1;
            self.l1.fill(addr);
            return (HitLevel::L2, self.l2_latency);
        }
        if self.l3.access(addr) {
            self.stats.l3_hits += 1;
            self.l2.fill(addr);
            self.l1.fill(addr);
            return (HitLevel::L3, self.l3_latency);
        }
        self.stats.memory_accesses += 1;
        self.l3.fill(addr);
        self.l2.fill(addr);
        self.l1.fill(addr);
        (HitLevel::Memory, self.l3_latency)
    }

    /// A full load: through the hierarchy and, on miss, over the
    /// channel. Returns (level, total latency).
    ///
    /// # Errors
    ///
    /// Propagates the channel's typed error (timeout ladder exhausted,
    /// tag pool exhausted, …) instead of converting a recoverable
    /// [`DmiError`] back into a panic — a hung channel is a fault the
    /// RAS machinery reports, not a programming error.
    pub fn load(
        &mut self,
        channel: &mut DmiChannel,
        addr: u64,
    ) -> Result<(HitLevel, SimTime), DmiError> {
        let (level, lat) = self.access(addr);
        if level == HitLevel::Memory {
            let before = channel.now();
            channel.read_line_blocking(addr)?;
            Ok((level, lat + (channel.now() - before)))
        } else {
            Ok((level, lat))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::ChannelConfig;
    use contutto_centaur::{Centaur, CentaurConfig};

    #[test]
    fn level_latencies_ordered() {
        let h = CacheHierarchy::power8_core();
        assert!(h.l1_latency < h.l2_latency);
        assert!(h.l2_latency < h.l3_latency);
    }

    #[test]
    fn repeated_access_promotes_to_l1() {
        let mut h = CacheHierarchy::power8_core();
        let (lvl, _) = h.access(0x4000);
        assert_eq!(lvl, HitLevel::Memory);
        let (lvl, _) = h.access(0x4000);
        assert_eq!(lvl, HitLevel::L1);
        assert_eq!(h.stats().l1_hits, 1);
        assert_eq!(h.stats().memory_accesses, 1);
    }

    #[test]
    fn eviction_from_l1_falls_to_l2() {
        let mut h = CacheHierarchy::power8_core();
        h.access(0);
        // Blow L1 (64 KiB) with a 256 KiB sweep; L2 (512 KiB) keeps it.
        for addr in (0..(256 << 10)).step_by(128) {
            h.access(addr + (1 << 20));
        }
        let (lvl, _) = h.access(0);
        assert_eq!(lvl, HitLevel::L2);
    }

    #[test]
    fn load_through_channel_on_miss() {
        let mut h = CacheHierarchy::power8_core();
        let mut ch = DmiChannel::new(
            ChannelConfig::centaur(),
            Box::new(Centaur::new(CentaurConfig::optimized(), 8 << 30)),
        );
        let (lvl, total) = h.load(&mut ch, 0x10_0000).unwrap();
        assert_eq!(lvl, HitLevel::Memory);
        assert!(total > SimTime::from_ns(40), "memory load {total}");
        let (lvl, total) = h.load(&mut ch, 0x10_0000).unwrap();
        assert_eq!(lvl, HitLevel::L1);
        assert!(total < SimTime::from_ns(2));
    }

    #[test]
    fn hung_channel_surfaces_error_not_panic() {
        use crate::channel::RetryPolicy;
        use contutto_dmi::link::BitErrorInjector;

        let mut h = CacheHierarchy::power8_core();
        let mut ch = DmiChannel::new(
            ChannelConfig::centaur(),
            Box::new(Centaur::new(CentaurConfig::optimized(), 8 << 30)),
        );
        // Tight ladder so the test stays fast, then kill both link
        // directions: the miss can never complete.
        ch.set_retry_policy(RetryPolicy {
            op_timeout: SimTime::from_us(3),
            max_attempts: 2,
            base_backoff: SimTime::from_ns(500),
            max_retrains: 0,
        });
        ch.set_down_injector(BitErrorInjector::bernoulli(1.0, 13));
        ch.set_up_injector(BitErrorInjector::bernoulli(1.0, 14));
        let err = h.load(&mut ch, 0x20_0000).unwrap_err();
        assert!(
            matches!(err, DmiError::Timeout { .. }),
            "expected the ladder's Timeout, got {err:?}"
        );
        // The miss was still counted — the access happened, the fill
        // from memory did not.
        assert_eq!(h.stats().memory_accesses, 1);
    }
}
