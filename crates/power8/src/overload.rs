//! Overload-resilience primitives: circuit breakers, deterministic
//! retry budgets, admission control, hedging and brownout policy.
//!
//! The recovery machinery built in earlier layers — the channel's
//! retry→retrain ladder, failover evacuation, patrol scrub — all
//! *generate load* exactly when capacity drops. Left ungoverned, that
//! feedback loop is the classic trigger for a metastable failure: the
//! system stays congested after the original fault clears because the
//! retry traffic alone exceeds the remaining capacity. This module
//! holds the policy objects the service path uses to break the loop:
//!
//! * [`RetryBudget`] — a global token bucket refilled by *successes*,
//!   so the aggregate retry rate is capped as a ratio of the success
//!   rate instead of multiplying under stress.
//! * [`CircuitBreaker`] — a per-channel closed → open → half-open
//!   machine wrapping the recovery ladder: a channel that keeps
//!   exhausting its ladder fast-fails new work for a fixed window,
//!   then probes with a bounded number of trial requests.
//! * [`AdmissionConfig`] — a bounded admission queue ahead of the
//!   in-flight window, with deadline-aware shedding: work that would
//!   blow its deadline while queued is rejected *before* issue.
//! * [`HedgeConfig`] — hedged reads for mirrored regions: a read stuck
//!   past a latency threshold issues a duplicate to the mirror; the
//!   first completion wins and the loser is cancelled.
//! * [`BrownoutConfig`] — under sustained queue pressure, background
//!   work (evacuation migration batches, patrol scrub) yields
//!   bandwidth to demand traffic.
//!
//! Everything here is integer/deterministic: same seed, same decision
//! sequence, byte-identical runs — the workspace's hard invariant.

use contutto_sim::snapshot::{Persist, RestoreError, SnapReader};
use contutto_sim::SimTime;

/// Circuit-breaker states, the classic three-state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: every request is admitted.
    Closed,
    /// Tripped: every request is rejected until the open window ends.
    Open,
    /// Probing: a bounded number of trial requests are admitted; enough
    /// successes close the breaker, any failure re-opens it.
    HalfOpen,
}

/// Circuit-breaker tuning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Consecutive ladder-final failures that trip the breaker open.
    pub failure_threshold: u32,
    /// How long an open breaker rejects before probing (deterministic:
    /// the first admission attempt at or past `opened_at + open_for`
    /// transitions to half-open).
    pub open_for: SimTime,
    /// Probe requests admitted concurrently while half-open.
    pub probe_budget: u32,
    /// Probe successes required to close again.
    pub close_after: u32,
    /// Distinct open transitions after which the FSP treats the
    /// channel as persistently failing and deconfigures it.
    pub deconfigure_after_opens: u32,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            failure_threshold: 4,
            open_for: SimTime::from_us(40),
            probe_budget: 2,
            close_after: 3,
            deconfigure_after_opens: 8,
        }
    }
}

/// A per-channel circuit breaker wrapping the recovery ladder.
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    cfg: BreakerConfig,
    state: BreakerState,
    consecutive_failures: u32,
    opened_at: SimTime,
    probes_in_flight: u32,
    probe_successes: u32,
    times_opened: u32,
}

impl CircuitBreaker {
    /// A closed breaker with the given tuning.
    pub fn new(cfg: BreakerConfig) -> Self {
        CircuitBreaker {
            cfg,
            state: BreakerState::Closed,
            consecutive_failures: 0,
            opened_at: SimTime::ZERO,
            probes_in_flight: 0,
            probe_successes: 0,
            times_opened: 0,
        }
    }

    /// Current state.
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Open transitions so far — the FSP's persistence signal.
    pub fn times_opened(&self) -> u32 {
        self.times_opened
    }

    /// Admission decision for one request at `now`. Returns `true` when
    /// the request may proceed. An open breaker whose window has ended
    /// transitions to half-open here (the probe schedule is driven by
    /// the deterministic request stream, not wall time).
    pub fn admit(&mut self, now: SimTime) -> bool {
        if self.state == BreakerState::Open {
            if now < self.opened_at + self.cfg.open_for {
                return false;
            }
            self.state = BreakerState::HalfOpen;
            self.probes_in_flight = 0;
            self.probe_successes = 0;
        }
        match self.state {
            BreakerState::Closed => true,
            BreakerState::HalfOpen => {
                if self.probes_in_flight < self.cfg.probe_budget {
                    self.probes_in_flight += 1;
                    true
                } else {
                    false
                }
            }
            BreakerState::Open => unreachable!("open handled above"),
        }
    }

    /// Records a successful completion. Returns `true` when this
    /// success closed a half-open breaker.
    pub fn on_success(&mut self) -> bool {
        match self.state {
            BreakerState::Closed => {
                self.consecutive_failures = 0;
                false
            }
            BreakerState::HalfOpen => {
                self.probes_in_flight = self.probes_in_flight.saturating_sub(1);
                self.probe_successes += 1;
                if self.probe_successes >= self.cfg.close_after {
                    self.state = BreakerState::Closed;
                    self.consecutive_failures = 0;
                    true
                } else {
                    false
                }
            }
            BreakerState::Open => false,
        }
    }

    /// Records a ladder-final failure. Returns `true` when this failure
    /// tripped the breaker open (closed past the threshold, or any
    /// half-open probe failure).
    pub fn on_failure(&mut self, now: SimTime) -> bool {
        match self.state {
            BreakerState::Closed => {
                self.consecutive_failures += 1;
                if self.consecutive_failures >= self.cfg.failure_threshold {
                    self.trip(now);
                    true
                } else {
                    false
                }
            }
            BreakerState::HalfOpen => {
                self.trip(now);
                true
            }
            BreakerState::Open => false,
        }
    }

    fn trip(&mut self, now: SimTime) {
        self.state = BreakerState::Open;
        self.opened_at = now;
        self.consecutive_failures = 0;
        self.probes_in_flight = 0;
        self.probe_successes = 0;
        self.times_opened += 1;
    }

    /// Serializes the breaker's dynamic state (the tuning is a
    /// construction parameter the restorer already holds).
    pub fn snapshot_state(&self, out: &mut Vec<u8>) {
        let state: u8 = match self.state {
            BreakerState::Closed => 0,
            BreakerState::Open => 1,
            BreakerState::HalfOpen => 2,
        };
        state.persist(out);
        self.consecutive_failures.persist(out);
        self.opened_at.persist(out);
        self.probes_in_flight.persist(out);
        self.probe_successes.persist(out);
        self.times_opened.persist(out);
    }

    /// Overlays [`CircuitBreaker::snapshot_state`] bytes onto this
    /// breaker.
    ///
    /// # Errors
    ///
    /// [`RestoreError`] on truncation or an unknown state discriminant.
    pub fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), RestoreError> {
        let state = match r.u8()? {
            0 => BreakerState::Closed,
            1 => BreakerState::Open,
            2 => BreakerState::HalfOpen,
            _ => {
                return Err(RestoreError::Malformed {
                    context: "breaker state discriminant",
                })
            }
        };
        let consecutive_failures = r.u32()?;
        let opened_at = SimTime::restore(r)?;
        let probes_in_flight = r.u32()?;
        let probe_successes = r.u32()?;
        let times_opened = r.u32()?;
        self.state = state;
        self.consecutive_failures = consecutive_failures;
        self.opened_at = opened_at;
        self.probes_in_flight = probes_in_flight;
        self.probe_successes = probe_successes;
        self.times_opened = times_opened;
        Ok(())
    }
}

/// Retry-budget tuning: the token bucket's refill ratio and burst cap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryBudgetConfig {
    /// Milli-tokens granted per successful completion. 100 caps the
    /// sustained retry rate at 10 % of the success rate; 1000 allows
    /// one retry per success.
    pub refill_per_success_milli: u64,
    /// Bucket capacity in whole tokens — the burst of retries allowed
    /// from a full bucket before the ratio governs.
    pub burst: u64,
}

impl Default for RetryBudgetConfig {
    fn default() -> Self {
        RetryBudgetConfig {
            refill_per_success_milli: 100,
            burst: 10,
        }
    }
}

/// A deterministic token-bucket retry budget, shared between the
/// channel ladder's backoff retries and traffic-layer client retries.
/// All integer arithmetic: refills are milli-tokens per success, spends
/// are whole tokens, so the retry:success ratio is exact.
#[derive(Debug, Clone)]
pub struct RetryBudget {
    cfg: RetryBudgetConfig,
    milli: u64,
    spent: u64,
    denied: u64,
}

impl RetryBudget {
    /// A full bucket.
    pub fn new(cfg: RetryBudgetConfig) -> Self {
        RetryBudget {
            cfg,
            milli: cfg.burst * 1000,
            spent: 0,
            denied: 0,
        }
    }

    /// Credits one successful completion.
    pub fn on_success(&mut self) {
        self.milli = (self.milli + self.cfg.refill_per_success_milli).min(self.cfg.burst * 1000);
    }

    /// Tries to spend one token for a retry. `false` means the retry
    /// must not happen — the caller fails fast instead.
    pub fn try_spend(&mut self) -> bool {
        if self.milli >= 1000 {
            self.milli -= 1000;
            self.spent += 1;
            true
        } else {
            self.denied += 1;
            false
        }
    }

    /// Whole tokens currently available.
    pub fn tokens(&self) -> u64 {
        self.milli / 1000
    }

    /// Retries granted so far.
    pub fn spent(&self) -> u64 {
        self.spent
    }

    /// Retries denied so far.
    pub fn denied(&self) -> u64 {
        self.denied
    }

    /// Serializes the bucket's dynamic state (fill level and counters).
    pub fn snapshot_state(&self, out: &mut Vec<u8>) {
        self.milli.persist(out);
        self.spent.persist(out);
        self.denied.persist(out);
    }

    /// Overlays [`RetryBudget::snapshot_state`] bytes onto this bucket.
    ///
    /// # Errors
    ///
    /// [`RestoreError::Truncated`] on short input.
    pub fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), RestoreError> {
        let milli = r.u64()?;
        let spent = r.u64()?;
        let denied = r.u64()?;
        self.milli = milli;
        self.spent = spent;
        self.denied = denied;
        Ok(())
    }
}

/// Admission control ahead of the per-channel in-flight window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionConfig {
    /// Max commands waiting on a channel's software issue queue; a
    /// submission past this sheds with [`SystemError::Shed`].
    ///
    /// [`SystemError::Shed`]: crate::system::SystemError::Shed
    pub queue_limit: usize,
    /// Estimated service time per queued command, used for
    /// deadline-aware shedding: if `now + (queued + 1) × estimate`
    /// already exceeds the request's deadline, the request is shed
    /// before issue rather than queued to die.
    pub service_estimate: SimTime,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            queue_limit: 64,
            service_estimate: SimTime::from_ns(400),
        }
    }
}

/// Hedged-read tuning. Hedging applies to reads against mirrored
/// regions only: the mirror holds a full shadow copy by construction,
/// so a duplicate read has no side effects to double-apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HedgeConfig {
    /// Age past which an outstanding read issues a hedge to the mirror
    /// (pick the steady-state p99-ish latency).
    pub after: SimTime,
    /// Max hedged requests in flight at once.
    pub max_in_flight: usize,
}

impl Default for HedgeConfig {
    fn default() -> Self {
        HedgeConfig {
            after: SimTime::from_us(4),
            max_in_flight: 8,
        }
    }
}

/// Brownout: background work yields to demand traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BrownoutConfig {
    /// Total queued commands (across channels) above which brownout
    /// engages.
    pub queue_high: usize,
    /// Total queued commands at or below which brownout releases
    /// (hysteresis; must be < `queue_high`).
    pub queue_low: usize,
    /// Evacuation-migration lines moved per pump while browned out
    /// (normal batch: [`MIGRATION_BATCH`]).
    ///
    /// [`MIGRATION_BATCH`]: crate::failover::MIGRATION_BATCH
    pub migration_batch: usize,
    /// Patrol-scrub interval multiplier while browned out: scrub slows
    /// by this factor, returning media bandwidth to demand reads.
    pub scrub_stretch: u32,
}

impl Default for BrownoutConfig {
    fn default() -> Self {
        BrownoutConfig {
            queue_high: 48,
            queue_low: 12,
            migration_batch: crate::failover::BROWNOUT_MIGRATION_BATCH,
            scrub_stretch: 4,
        }
    }
}

/// The whole overload policy. `Default` (all `None`) is the legacy
/// behavior: no shedding, no budgets, no breakers, no hedging — every
/// pre-existing run stays byte-identical.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct OverloadConfig {
    /// Bounded admission queue + deadline-aware shedding.
    pub admission: Option<AdmissionConfig>,
    /// Global retry budget (ladder + client retries).
    pub retry_budget: Option<RetryBudgetConfig>,
    /// Per-channel circuit breakers.
    pub breaker: Option<BreakerConfig>,
    /// Hedged reads for mirrored regions.
    pub hedge: Option<HedgeConfig>,
    /// Background-work brownout under queue pressure.
    pub brownout: Option<BrownoutConfig>,
}

impl OverloadConfig {
    /// No overload protection at all (the legacy service path).
    pub fn off() -> Self {
        OverloadConfig::default()
    }

    /// Every defense on with default tuning.
    pub fn protective() -> Self {
        OverloadConfig {
            admission: Some(AdmissionConfig::default()),
            retry_budget: Some(RetryBudgetConfig::default()),
            breaker: Some(BreakerConfig::default()),
            hedge: Some(HedgeConfig::default()),
            brownout: Some(BrownoutConfig::default()),
        }
    }
}

/// System-level overload counters, published as `system.overload.*`.
#[derive(Debug, Clone, Default)]
pub struct OverloadStats {
    /// Submissions rejected by the bounded admission queue.
    pub shed_admission: u64,
    /// Submissions rejected because queue delay would blow the deadline.
    pub shed_deadline: u64,
    /// Submissions rejected by an open circuit breaker.
    pub shed_breaker: u64,
    /// Submissions whose deadline had already expired at submit.
    pub expired_at_submit: u64,
    /// Completions translated to `DeadlineExceeded` (the channel's
    /// answer arrived after the request's deadline).
    pub deadline_expired: u64,
    /// Hedge reads issued to mirrors.
    pub hedges_issued: u64,
    /// Hedged requests finished by their first completion.
    pub hedges_won: u64,
    /// Loser completions cancelled (route entries dropped so the late
    /// arm's completion is absorbed without a second delivery).
    pub hedges_cancelled: u64,
    /// Brownout engagements.
    pub brownout_entries: u64,
    /// Requests failed by the no-progress watchdog.
    pub stalls: u64,
}

impl Persist for BreakerConfig {
    fn persist(&self, out: &mut Vec<u8>) {
        self.failure_threshold.persist(out);
        self.open_for.persist(out);
        self.probe_budget.persist(out);
        self.close_after.persist(out);
        self.deconfigure_after_opens.persist(out);
    }
    fn restore(r: &mut SnapReader<'_>) -> Result<Self, RestoreError> {
        Ok(BreakerConfig {
            failure_threshold: r.u32()?,
            open_for: SimTime::restore(r)?,
            probe_budget: r.u32()?,
            close_after: r.u32()?,
            deconfigure_after_opens: r.u32()?,
        })
    }
}

impl Persist for RetryBudgetConfig {
    fn persist(&self, out: &mut Vec<u8>) {
        self.refill_per_success_milli.persist(out);
        self.burst.persist(out);
    }
    fn restore(r: &mut SnapReader<'_>) -> Result<Self, RestoreError> {
        Ok(RetryBudgetConfig {
            refill_per_success_milli: r.u64()?,
            burst: r.u64()?,
        })
    }
}

impl Persist for AdmissionConfig {
    fn persist(&self, out: &mut Vec<u8>) {
        self.queue_limit.persist(out);
        self.service_estimate.persist(out);
    }
    fn restore(r: &mut SnapReader<'_>) -> Result<Self, RestoreError> {
        Ok(AdmissionConfig {
            queue_limit: usize::restore(r)?,
            service_estimate: SimTime::restore(r)?,
        })
    }
}

impl Persist for HedgeConfig {
    fn persist(&self, out: &mut Vec<u8>) {
        self.after.persist(out);
        self.max_in_flight.persist(out);
    }
    fn restore(r: &mut SnapReader<'_>) -> Result<Self, RestoreError> {
        Ok(HedgeConfig {
            after: SimTime::restore(r)?,
            max_in_flight: usize::restore(r)?,
        })
    }
}

impl Persist for BrownoutConfig {
    fn persist(&self, out: &mut Vec<u8>) {
        self.queue_high.persist(out);
        self.queue_low.persist(out);
        self.migration_batch.persist(out);
        self.scrub_stretch.persist(out);
    }
    fn restore(r: &mut SnapReader<'_>) -> Result<Self, RestoreError> {
        Ok(BrownoutConfig {
            queue_high: usize::restore(r)?,
            queue_low: usize::restore(r)?,
            migration_batch: usize::restore(r)?,
            scrub_stretch: r.u32()?,
        })
    }
}

impl Persist for OverloadConfig {
    fn persist(&self, out: &mut Vec<u8>) {
        self.admission.persist(out);
        self.retry_budget.persist(out);
        self.breaker.persist(out);
        self.hedge.persist(out);
        self.brownout.persist(out);
    }
    fn restore(r: &mut SnapReader<'_>) -> Result<Self, RestoreError> {
        Ok(OverloadConfig {
            admission: Option::restore(r)?,
            retry_budget: Option::restore(r)?,
            breaker: Option::restore(r)?,
            hedge: Option::restore(r)?,
            brownout: Option::restore(r)?,
        })
    }
}

impl Persist for OverloadStats {
    fn persist(&self, out: &mut Vec<u8>) {
        self.shed_admission.persist(out);
        self.shed_deadline.persist(out);
        self.shed_breaker.persist(out);
        self.expired_at_submit.persist(out);
        self.deadline_expired.persist(out);
        self.hedges_issued.persist(out);
        self.hedges_won.persist(out);
        self.hedges_cancelled.persist(out);
        self.brownout_entries.persist(out);
        self.stalls.persist(out);
    }
    fn restore(r: &mut SnapReader<'_>) -> Result<Self, RestoreError> {
        Ok(OverloadStats {
            shed_admission: r.u64()?,
            shed_deadline: r.u64()?,
            shed_breaker: r.u64()?,
            expired_at_submit: r.u64()?,
            deadline_expired: r.u64()?,
            hedges_issued: r.u64()?,
            hedges_won: r.u64()?,
            hedges_cancelled: r.u64()?,
            brownout_entries: r.u64()?,
            stalls: r.u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breaker_trips_probes_and_closes() {
        let cfg = BreakerConfig {
            failure_threshold: 2,
            open_for: SimTime::from_us(10),
            probe_budget: 1,
            close_after: 2,
            deconfigure_after_opens: 8,
        };
        let mut b = CircuitBreaker::new(cfg);
        let t0 = SimTime::from_us(1);
        assert!(b.admit(t0));
        assert!(!b.on_failure(t0));
        assert!(b.on_failure(t0), "second failure trips");
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.times_opened(), 1);
        assert!(!b.admit(t0 + SimTime::from_us(5)), "open rejects");
        // Window over: half-open admits exactly probe_budget probes.
        let t1 = t0 + SimTime::from_us(10);
        assert!(b.admit(t1));
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert!(!b.admit(t1), "probe budget exhausted");
        assert!(!b.on_success(), "one success is not enough");
        assert!(b.admit(t1));
        assert!(b.on_success(), "second success closes");
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn breaker_reopens_on_probe_failure() {
        let mut b = CircuitBreaker::new(BreakerConfig {
            failure_threshold: 1,
            ..BreakerConfig::default()
        });
        let t0 = SimTime::from_us(1);
        assert!(b.on_failure(t0));
        let t1 = t0 + b.cfg.open_for;
        assert!(b.admit(t1));
        assert!(b.on_failure(t1), "probe failure re-opens");
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.times_opened(), 2);
    }

    #[test]
    fn retry_budget_caps_ratio_of_success_rate() {
        let mut budget = RetryBudget::new(RetryBudgetConfig {
            refill_per_success_milli: 100, // 10 %
            burst: 2,
        });
        // Burst drains first.
        assert!(budget.try_spend());
        assert!(budget.try_spend());
        assert!(!budget.try_spend(), "bucket empty");
        assert_eq!(budget.denied(), 1);
        // 10 successes buy exactly one retry at 10 %.
        for _ in 0..9 {
            budget.on_success();
            assert!(!budget.try_spend());
        }
        budget.on_success();
        assert!(budget.try_spend());
        assert_eq!(budget.spent(), 3);
    }

    #[test]
    fn retry_budget_refill_saturates_at_burst() {
        let mut budget = RetryBudget::new(RetryBudgetConfig {
            refill_per_success_milli: 1000,
            burst: 3,
        });
        for _ in 0..100 {
            budget.on_success();
        }
        assert_eq!(budget.tokens(), 3);
    }

    #[test]
    fn off_config_is_default() {
        assert_eq!(OverloadConfig::off(), OverloadConfig::default());
        assert!(OverloadConfig::protective().breaker.is_some());
    }
}
