//! The system memory map and its placement rules.
//!
//! Paper §3.4: "When ConTutto is booted with DRAM, the memory can be
//! treated just like regular memory and sorted to form a contiguous
//! memory block. However, for MRAM or NVDIMMs, these need to be placed
//! at a non-zero location as Linux requires DRAM at the start of the
//! memory map. ... firmware enforces that nonvolatile memory is placed
//! at the top of the memory map, and with flags that indicate the type
//! (DRAM/MRAM/NVDIMM) and whether the content is preserved."
//!
//! Also the size "lying": "current sizes for MRAM are in the Megabyte
//! range, but the smallest memory size supported by the POWER8
//! processor is 4 GB behind a DMI link. We address this by 'lying' to
//! the processor, indicating a 4 GB MRAM space, but only communicating
//! up to Linux the actual size of the MRAM in Megabytes."

use contutto_memdev::MediaKind;
use contutto_sim::snapshot::{Persist, RestoreError, SnapReader};

/// Smallest memory size POWER8 supports behind one DMI link.
pub const MIN_DMI_REGION_BYTES: u64 = 4 << 30;

/// Region attribute flags exposed to the OS.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegionFlags {
    /// Media type indicator.
    pub kind: MediaKind,
    /// Contents preserved across power cycles.
    pub preserved: bool,
    /// Needs a special (pmem/slram) driver rather than normal paging.
    pub needs_driver: bool,
}

/// One region of the physical memory map.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemoryRegion {
    /// Start physical address (what the processor decodes).
    pub base: u64,
    /// Size the *hardware* decodes (≥ 4 GB per DMI link).
    pub hw_size: u64,
    /// Size reported to Linux (actual media size — the "lying" gap).
    pub os_size: u64,
    /// Attribute flags.
    pub flags: RegionFlags,
    /// DMI channel backing this region.
    pub channel: usize,
}

impl MemoryRegion {
    /// Whether the hardware decodes more than the OS may touch.
    pub fn is_undersized_media(&self) -> bool {
        self.os_size < self.hw_size
    }

    /// End of the hardware-decoded window.
    pub fn hw_end(&self) -> u64 {
        self.base + self.hw_size
    }
}

/// Errors in memory-map construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MapError {
    /// No volatile DRAM present — Linux cannot boot.
    NoDramAtZero,
    /// Regions would overlap.
    Overlap {
        /// Index of the offending region.
        index: usize,
    },
}

impl std::fmt::Display for MapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MapError::NoDramAtZero => write!(f, "no dram region to place at address zero"),
            MapError::Overlap { index } => write!(f, "region {index} overlaps its neighbor"),
        }
    }
}

impl std::error::Error for MapError {}

/// Errors in routing a demand access through the map.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouteError {
    /// The physical address falls outside every OS-visible region.
    Unmapped {
        /// The offending physical address.
        phys: u64,
    },
}

impl std::fmt::Display for RouteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RouteError::Unmapped { phys } => {
                write!(f, "physical address {phys:#x} is not mapped")
            }
        }
    }
}

impl std::error::Error for RouteError {}

/// The assembled memory map.
///
/// # Example
///
/// ```
/// use contutto_power8::memmap::{ChannelMemory, MemoryMap};
/// use contutto_memdev::MediaKind;
///
/// let map = MemoryMap::build(
///     &[
///         ChannelMemory { channel: 0, kind: MediaKind::Dram, capacity: 32 << 30 },
///         ChannelMemory { channel: 5, kind: MediaKind::SttMram, capacity: 512 << 20 },
///     ],
///     1 << 42,
/// )?;
/// // DRAM at zero; the small MRAM gets a 4 GB hardware window at the top.
/// assert!(map.dram_at_zero().is_some());
/// assert!(map.nonvolatile_regions()[0].is_undersized_media());
/// # Ok::<(), contutto_power8::memmap::MapError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MemoryMap {
    regions: Vec<MemoryRegion>,
}

/// Input to map construction: one populated channel's memory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChannelMemory {
    /// DMI channel index.
    pub channel: usize,
    /// Media kind behind the buffer.
    pub kind: MediaKind,
    /// Actual media capacity.
    pub capacity: u64,
}

impl MemoryMap {
    /// Builds the map per the firmware rules: volatile regions sorted
    /// contiguously from zero; non-volatile regions at the top of the
    /// map with flags; every region's hardware window padded to the
    /// 4 GB DMI minimum.
    ///
    /// # Errors
    ///
    /// [`MapError::NoDramAtZero`] if no volatile memory exists.
    pub fn build(channels: &[ChannelMemory], top_of_map: u64) -> Result<Self, MapError> {
        let mut volatile: Vec<&ChannelMemory> = channels
            .iter()
            .filter(|c| !c.kind.is_nonvolatile())
            .collect();
        let nonvolatile: Vec<&ChannelMemory> = channels
            .iter()
            .filter(|c| c.kind.is_nonvolatile())
            .collect();
        if volatile.is_empty() {
            return Err(MapError::NoDramAtZero);
        }
        volatile.sort_by_key(|c| c.channel);
        let mut regions = Vec::new();
        let mut cursor = 0u64;
        for c in volatile {
            let hw = c.capacity.max(MIN_DMI_REGION_BYTES);
            regions.push(MemoryRegion {
                base: cursor,
                hw_size: hw,
                os_size: c.capacity,
                flags: RegionFlags {
                    kind: c.kind,
                    preserved: false,
                    needs_driver: false,
                },
                channel: c.channel,
            });
            cursor += hw;
        }
        // Non-volatile at the top of the map, highest channel first.
        let mut top = top_of_map;
        for c in nonvolatile.iter().rev() {
            let hw = c.capacity.max(MIN_DMI_REGION_BYTES);
            top -= hw;
            regions.push(MemoryRegion {
                base: top,
                hw_size: hw,
                os_size: c.capacity,
                flags: RegionFlags {
                    kind: c.kind,
                    preserved: true,
                    needs_driver: true,
                },
                channel: c.channel,
            });
        }
        let map = MemoryMap { regions };
        map.validate()?;
        Ok(map)
    }

    fn validate(&self) -> Result<(), MapError> {
        let mut sorted: Vec<&MemoryRegion> = self.regions.iter().collect();
        sorted.sort_by_key(|r| r.base);
        for (i, pair) in sorted.windows(2).enumerate() {
            if pair[0].hw_end() > pair[1].base {
                return Err(MapError::Overlap { index: i + 1 });
            }
        }
        Ok(())
    }

    /// All regions.
    pub fn regions(&self) -> &[MemoryRegion] {
        &self.regions
    }

    /// Resolves a physical address to (region index, offset).
    pub fn resolve(&self, addr: u64) -> Option<(usize, u64)> {
        self.regions
            .iter()
            .enumerate()
            .find(|(_, r)| addr >= r.base && addr < r.base + r.os_size)
            .map(|(i, r)| (i, addr - r.base))
    }

    /// The volatile region holding address zero.
    pub fn dram_at_zero(&self) -> Option<&MemoryRegion> {
        self.regions
            .iter()
            .find(|r| r.base == 0 && !r.flags.kind.is_nonvolatile())
    }

    /// Retargets every region backed by channel `from` onto channel
    /// `to`, returning how many regions moved. The address ranges the
    /// processor decodes are untouched — only the backing channel
    /// changes, which is exactly what a failover does: same physical
    /// addresses, different buffer serving them.
    pub fn rebind_channel(&mut self, from: usize, to: usize) -> usize {
        let mut moved = 0;
        for region in &mut self.regions {
            if region.channel == from {
                region.channel = to;
                moved += 1;
            }
        }
        moved
    }

    /// Whether any region is backed by the given channel.
    pub fn channel_is_mapped(&self, channel: usize) -> bool {
        self.regions.iter().any(|r| r.channel == channel)
    }

    /// All non-volatile regions (for the pmem driver).
    pub fn nonvolatile_regions(&self) -> Vec<&MemoryRegion> {
        self.regions
            .iter()
            .filter(|r| r.flags.kind.is_nonvolatile())
            .collect()
    }
}

impl Persist for RegionFlags {
    fn persist(&self, out: &mut Vec<u8>) {
        self.kind.persist(out);
        self.preserved.persist(out);
        self.needs_driver.persist(out);
    }
    fn restore(r: &mut SnapReader<'_>) -> Result<Self, RestoreError> {
        Ok(RegionFlags {
            kind: MediaKind::restore(r)?,
            preserved: r.bool()?,
            needs_driver: r.bool()?,
        })
    }
}

impl Persist for MemoryRegion {
    fn persist(&self, out: &mut Vec<u8>) {
        self.base.persist(out);
        self.hw_size.persist(out);
        self.os_size.persist(out);
        self.flags.persist(out);
        self.channel.persist(out);
    }
    fn restore(r: &mut SnapReader<'_>) -> Result<Self, RestoreError> {
        Ok(MemoryRegion {
            base: r.u64()?,
            hw_size: r.u64()?,
            os_size: r.u64()?,
            flags: RegionFlags::restore(r)?,
            channel: usize::restore(r)?,
        })
    }
}

impl Persist for MemoryMap {
    fn persist(&self, out: &mut Vec<u8>) {
        self.regions.persist(out);
    }
    fn restore(r: &mut SnapReader<'_>) -> Result<Self, RestoreError> {
        let map = MemoryMap {
            regions: Vec::restore(r)?,
        };
        // A restored map must still satisfy the firmware's placement
        // invariants; a bit-flipped base could otherwise overlap.
        map.validate().map_err(|_| RestoreError::Malformed {
            context: "restored memory map regions overlap",
        })?;
        Ok(map)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOP: u64 = 1 << 42; // 4 TB decode window

    fn dram(ch: usize, cap: u64) -> ChannelMemory {
        ChannelMemory {
            channel: ch,
            kind: MediaKind::Dram,
            capacity: cap,
        }
    }

    fn mram(ch: usize, cap: u64) -> ChannelMemory {
        ChannelMemory {
            channel: ch,
            kind: MediaKind::SttMram,
            capacity: cap,
        }
    }

    #[test]
    fn dram_sorts_contiguously_from_zero() {
        let map = MemoryMap::build(&[dram(2, 32 << 30), dram(0, 32 << 30)], TOP).unwrap();
        let r = map.regions();
        assert_eq!(r[0].base, 0);
        assert_eq!(r[0].channel, 0);
        assert_eq!(r[1].base, 32 << 30);
        assert_eq!(r[1].channel, 2);
        assert!(map.dram_at_zero().is_some());
    }

    #[test]
    fn nonvolatile_goes_to_top_with_flags() {
        let map = MemoryMap::build(&[dram(0, 32 << 30), mram(5, 512 << 20)], TOP).unwrap();
        let nv = map.nonvolatile_regions();
        assert_eq!(nv.len(), 1);
        let r = nv[0];
        assert!(r.base >= TOP - MIN_DMI_REGION_BYTES);
        assert!(r.flags.preserved);
        assert!(r.flags.needs_driver);
        assert_eq!(r.flags.kind, MediaKind::SttMram);
    }

    #[test]
    fn mram_size_lying() {
        // 512 MB of MRAM: hardware decodes 4 GB, Linux sees 512 MB.
        let map = MemoryMap::build(&[dram(0, 32 << 30), mram(5, 512 << 20)], TOP).unwrap();
        let r = map.nonvolatile_regions()[0];
        assert_eq!(r.hw_size, MIN_DMI_REGION_BYTES);
        assert_eq!(r.os_size, 512 << 20);
        assert!(r.is_undersized_media());
        // The OS may touch only the first 512 MB.
        assert!(map.resolve(r.base + (512 << 20) - 1).is_some());
        assert_eq!(map.resolve(r.base + (512 << 20)), None);
    }

    #[test]
    fn no_dram_fails_boot() {
        assert_eq!(
            MemoryMap::build(&[mram(0, 512 << 20)], TOP),
            Err(MapError::NoDramAtZero)
        );
    }

    #[test]
    fn resolve_maps_addresses_to_regions() {
        let map = MemoryMap::build(&[dram(0, 8 << 30), dram(1, 8 << 30)], TOP).unwrap();
        assert_eq!(map.resolve(0), Some((0, 0)));
        assert_eq!(map.resolve((8 << 30) + 5), Some((1, 5)));
        assert_eq!(map.resolve(1 << 41), None);
    }

    #[test]
    fn rebind_retargets_regions_without_moving_addresses() {
        let mut map = MemoryMap::build(&[dram(0, 8 << 30), dram(2, 8 << 30)], TOP).unwrap();
        let before: Vec<(u64, u64)> = map.regions().iter().map(|r| (r.base, r.hw_size)).collect();
        assert!(map.channel_is_mapped(2));
        assert_eq!(map.rebind_channel(2, 4), 1);
        assert!(!map.channel_is_mapped(2));
        assert!(map.channel_is_mapped(4));
        let after: Vec<(u64, u64)> = map.regions().iter().map(|r| (r.base, r.hw_size)).collect();
        assert_eq!(before, after, "address layout is unchanged");
        // Rebinding a channel that backs nothing is a no-op.
        assert_eq!(map.rebind_channel(9, 1), 0);
    }

    #[test]
    fn multiple_nv_channels_stack_below_top() {
        let map = MemoryMap::build(
            &[dram(0, 8 << 30), mram(6, 512 << 20), mram(7, 512 << 20)],
            TOP,
        )
        .unwrap();
        let nv = map.nonvolatile_regions();
        assert_eq!(nv.len(), 2);
        // Disjoint 4 GB hardware windows at the top.
        let mut bases: Vec<u64> = nv.iter().map(|r| r.base).collect();
        bases.sort_unstable();
        assert_eq!(bases[1] - bases[0], MIN_DMI_REGION_BYTES);
        assert_eq!(bases[1] + MIN_DMI_REGION_BYTES, TOP);
    }
}
