//! Property-based tests for the DMI link: in-order exactly-once
//! delivery under arbitrary error schedules, frame-format totality,
//! scrambler identity.

use proptest::prelude::*;

use contutto_dmi::command::{RmwOp, Tag};
use contutto_dmi::frame::{CommandHeader, DownstreamFrame, DownstreamPayload, UpstreamPayload};
use contutto_dmi::link::{BitErrorInjector, LinkSegment, LinkSpeed};
use contutto_dmi::protocol::{LinkEndpoint, LinkEndpointConfig};
use contutto_dmi::scramble::Scrambler;
use contutto_sim::SimTime;

type Host = LinkEndpoint<DownstreamFrame, contutto_dmi::frame::UpstreamFrame>;
type Buffer = LinkEndpoint<contutto_dmi::frame::UpstreamFrame, DownstreamFrame>;

fn arb_rmw() -> impl Strategy<Value = RmwOp> {
    prop_oneof![
        any::<u8>().prop_map(|m| RmwOp::PartialWrite { sector_mask: m }),
        Just(RmwOp::AtomicAdd),
        Just(RmwOp::MinStore),
        Just(RmwOp::MaxStore),
        Just(RmwOp::ConditionalSwap),
    ]
}

fn arb_header() -> impl Strategy<Value = CommandHeader> {
    prop_oneof![
        any::<u64>().prop_map(|addr| CommandHeader::Read { addr }),
        any::<u64>().prop_map(|addr| CommandHeader::Write { addr }),
        (any::<u64>(), arb_rmw()).prop_map(|(addr, op)| CommandHeader::Rmw { addr, op }),
        Just(CommandHeader::Flush),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn frame_roundtrip_any_header(seq in 0u8..128, tag in 0u8..32, header in arb_header()) {
        let f = DownstreamFrame {
            seq,
            ack: None,
            payload: DownstreamPayload::Command {
                tag: Tag::new(tag).expect("range"),
                header,
            },
        };
        let back = DownstreamFrame::from_bytes(&f.to_bytes()).expect("clean");
        prop_assert_eq!(back, f);
    }

    #[test]
    fn scrambler_identity_any_data(seed in 1u32..0x7F_FFFF, data in proptest::collection::vec(any::<u8>(), 0..256)) {
        let mut tx = Scrambler::new(seed);
        let mut rx = Scrambler::new(seed);
        let mut buf = data.clone();
        tx.apply(&mut buf);
        rx.apply(&mut buf);
        prop_assert_eq!(buf, data);
    }

    #[test]
    fn exactly_once_in_order_delivery_under_any_error_schedule(
        n_cmds in 1usize..12,
        down_errors in proptest::collection::btree_set(0u64..120, 0..6),
        up_errors in proptest::collection::btree_set(0u64..120, 0..6),
    ) {
        let mut host: Host = LinkEndpoint::new(LinkEndpointConfig::host());
        let mut buf: Buffer = LinkEndpoint::new(LinkEndpointConfig::contutto_buffer());
        let mut down = LinkSegment::new(
            LinkSpeed::Gbps8,
            SimTime::from_ns(1),
            BitErrorInjector::at_frames(down_errors.into_iter().collect()),
        );
        let mut up = LinkSegment::new(
            LinkSpeed::Gbps8,
            SimTime::from_ns(1),
            BitErrorInjector::at_frames(up_errors.into_iter().collect()),
        );
        // Enqueue distinct commands both directions.
        for i in 0..n_cmds {
            host.enqueue(DownstreamPayload::Command {
                tag: Tag::new((i % 32) as u8).expect("range"),
                header: CommandHeader::Read { addr: i as u64 * 128 },
            });
            buf.enqueue(UpstreamPayload::Done {
                first: Tag::new((i % 32) as u8).expect("range"),
                second: None,
            });
        }
        let slot = LinkSpeed::Gbps8.frame_time();
        let mut to_buf = Vec::new();
        let mut to_host = Vec::new();
        for i in 0..4000u64 {
            let now = slot * i;
            down.transmit(now, host.tick_tx());
            up.transmit(now, buf.tick_tx());
            while let Some(bytes) = down.receive(now) {
                if let Some(p) = buf.on_receive(&bytes) {
                    if !matches!(p, DownstreamPayload::Idle) {
                        to_buf.push(p);
                    }
                }
            }
            while let Some(bytes) = up.receive(now) {
                if let Some(p) = host.on_receive(&bytes) {
                    if !matches!(p, UpstreamPayload::Idle) {
                        to_host.push(p);
                    }
                }
            }
            if to_buf.len() >= n_cmds && to_host.len() >= n_cmds {
                break;
            }
        }
        // Exactly once, in order, in both directions.
        prop_assert_eq!(to_buf.len(), n_cmds, "downstream delivery count");
        prop_assert_eq!(to_host.len(), n_cmds, "upstream delivery count");
        for (i, p) in to_buf.iter().enumerate() {
            match p {
                DownstreamPayload::Command { header: CommandHeader::Read { addr }, .. } => {
                    prop_assert_eq!(*addr, i as u64 * 128, "downstream order");
                }
                other => prop_assert!(false, "unexpected payload {other:?}"),
            }
        }
        for (i, p) in to_host.iter().enumerate() {
            match p {
                UpstreamPayload::Done { first, .. } => {
                    prop_assert_eq!(first.index(), i % 32, "upstream order");
                }
                other => prop_assert!(false, "unexpected payload {other:?}"),
            }
        }
    }

    #[test]
    fn corrupted_frames_never_parse_silently(
        header in arb_header(),
        flips in proptest::collection::vec((0usize..28, 0u8..8), 1..4),
    ) {
        let f = DownstreamFrame {
            seq: 9,
            ack: Some(3),
            payload: DownstreamPayload::Command {
                tag: Tag::new(5).expect("range"),
                header,
            },
        };
        let clean = f.to_bytes();
        let mut bytes = clean;
        for (byte, bit) in flips {
            bytes[byte] ^= 1 << bit;
        }
        if bytes != clean {
            // Either rejected, or (CRC-collision, ~2^-16 per case) the
            // parse must at least be a structurally valid frame. A
            // silent wrong-but-valid parse with matching CRC is
            // astronomically unlikely across the suite; treat parse
            // success with differing content as failure.
            if let Ok(parsed) = DownstreamFrame::from_bytes(&bytes) {
                prop_assert_eq!(parsed, f, "collision produced a different frame");
            }
        }
    }
}
