//! Randomized property tests for the DMI link: in-order exactly-once
//! delivery under arbitrary error schedules, frame-format totality,
//! scrambler identity. Driven by the deterministic [`SimRng`] with
//! fixed seeds, so every run exercises the same inputs.

use std::collections::BTreeSet;

use contutto_dmi::command::{RmwOp, Tag};
use contutto_dmi::frame::{CommandHeader, DownstreamFrame, DownstreamPayload, UpstreamPayload};
use contutto_dmi::link::{BitErrorInjector, LinkSegment, LinkSpeed};
use contutto_dmi::protocol::{LinkEndpoint, LinkEndpointConfig};
use contutto_dmi::scramble::Scrambler;
use contutto_sim::{SimRng, SimTime};

type Host = LinkEndpoint<DownstreamFrame, contutto_dmi::frame::UpstreamFrame>;
type Buffer = LinkEndpoint<contutto_dmi::frame::UpstreamFrame, DownstreamFrame>;

fn arb_rmw(rng: &mut SimRng) -> RmwOp {
    match rng.gen_index(5) {
        0 => RmwOp::PartialWrite {
            sector_mask: rng.next_u64() as u8,
        },
        1 => RmwOp::AtomicAdd,
        2 => RmwOp::MinStore,
        3 => RmwOp::MaxStore,
        _ => RmwOp::ConditionalSwap,
    }
}

fn arb_header(rng: &mut SimRng) -> CommandHeader {
    match rng.gen_index(4) {
        0 => CommandHeader::Read {
            addr: rng.next_u64(),
        },
        1 => CommandHeader::Write {
            addr: rng.next_u64(),
        },
        2 => CommandHeader::Rmw {
            addr: rng.next_u64(),
            op: arb_rmw(rng),
        },
        _ => CommandHeader::Flush,
    }
}

#[test]
fn frame_roundtrip_any_header() {
    let mut rng = SimRng::seed_from_u64(0xD311_0000);
    for case in 0..256 {
        let f = DownstreamFrame {
            seq: rng.gen_index(128) as u8,
            ack: None,
            payload: DownstreamPayload::Command {
                tag: Tag::new(rng.gen_index(32) as u8).expect("range"),
                header: arb_header(&mut rng),
            },
        };
        let back = DownstreamFrame::from_bytes(&f.to_bytes()).expect("clean");
        assert_eq!(back, f, "case {case}");
    }
}

#[test]
fn scrambler_identity_any_data() {
    let mut rng = SimRng::seed_from_u64(0xD311_1000);
    for case in 0..64 {
        let seed = rng.gen_range(1..0x7F_FFFF) as u32;
        let len = rng.gen_index(256);
        let data: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
        let mut tx = Scrambler::new(seed);
        let mut rx = Scrambler::new(seed);
        let mut buf = data.clone();
        tx.apply(&mut buf);
        rx.apply(&mut buf);
        assert_eq!(buf, data, "case {case}");
    }
}

#[test]
fn exactly_once_in_order_delivery_under_any_error_schedule() {
    for case in 0..64u64 {
        let mut rng = SimRng::seed_from_u64(0xD311_2000 + case);
        let n_cmds = rng.gen_range(1..12) as usize;
        let schedule = |rng: &mut SimRng| -> Vec<u64> {
            let n = rng.gen_index(6);
            let set: BTreeSet<u64> = (0..n).map(|_| rng.gen_range(0..120)).collect();
            set.into_iter().collect()
        };
        let down_errors = schedule(&mut rng);
        let up_errors = schedule(&mut rng);

        let mut host: Host = LinkEndpoint::new(LinkEndpointConfig::host());
        let mut buf: Buffer = LinkEndpoint::new(LinkEndpointConfig::contutto_buffer());
        let mut down = LinkSegment::new(
            LinkSpeed::Gbps8,
            SimTime::from_ns(1),
            BitErrorInjector::at_frames(down_errors.clone()),
        );
        let mut up = LinkSegment::new(
            LinkSpeed::Gbps8,
            SimTime::from_ns(1),
            BitErrorInjector::at_frames(up_errors.clone()),
        );
        // Enqueue distinct commands both directions.
        for i in 0..n_cmds {
            host.enqueue(DownstreamPayload::Command {
                tag: Tag::new((i % 32) as u8).expect("range"),
                header: CommandHeader::Read {
                    addr: i as u64 * 128,
                },
            });
            buf.enqueue(UpstreamPayload::Done {
                first: Tag::new((i % 32) as u8).expect("range"),
                second: None,
            });
        }
        let slot = LinkSpeed::Gbps8.frame_time();
        let mut to_buf = Vec::new();
        let mut to_host = Vec::new();
        for i in 0..4000u64 {
            let now = slot * i;
            down.transmit(now, host.tick_tx());
            up.transmit(now, buf.tick_tx());
            while let Some(bytes) = down.receive(now) {
                if let Some(p) = buf.on_receive(&bytes) {
                    if !matches!(p, DownstreamPayload::Idle) {
                        to_buf.push(p);
                    }
                }
            }
            while let Some(bytes) = up.receive(now) {
                if let Some(p) = host.on_receive(&bytes) {
                    if !matches!(p, UpstreamPayload::Idle) {
                        to_host.push(p);
                    }
                }
            }
            if to_buf.len() >= n_cmds && to_host.len() >= n_cmds {
                break;
            }
        }
        let ctx = format!("case {case} down={down_errors:?} up={up_errors:?}");
        // Exactly once, in order, in both directions.
        assert_eq!(to_buf.len(), n_cmds, "downstream delivery count ({ctx})");
        assert_eq!(to_host.len(), n_cmds, "upstream delivery count ({ctx})");
        for (i, p) in to_buf.iter().enumerate() {
            match p {
                DownstreamPayload::Command {
                    header: CommandHeader::Read { addr },
                    ..
                } => {
                    assert_eq!(*addr, i as u64 * 128, "downstream order ({ctx})");
                }
                other => panic!("unexpected payload {other:?} ({ctx})"),
            }
        }
        for (i, p) in to_host.iter().enumerate() {
            match p {
                UpstreamPayload::Done { first, .. } => {
                    assert_eq!(first.index(), i % 32, "upstream order ({ctx})");
                }
                other => panic!("unexpected payload {other:?} ({ctx})"),
            }
        }
    }
}

#[test]
fn corrupted_frames_never_parse_silently() {
    let mut rng = SimRng::seed_from_u64(0xD311_3000);
    for case in 0..256 {
        let f = DownstreamFrame {
            seq: 9,
            ack: Some(3),
            payload: DownstreamPayload::Command {
                tag: Tag::new(5).expect("range"),
                header: arb_header(&mut rng),
            },
        };
        let clean = f.to_bytes();
        let mut bytes = clean;
        for _ in 0..rng.gen_range(1..4) {
            let byte = rng.gen_index(28);
            let bit = rng.gen_index(8);
            bytes[byte] ^= 1 << bit;
        }
        if bytes != clean {
            // Either rejected, or (CRC-collision, ~2^-16 per case) the
            // parse must at least be a structurally valid frame. A
            // silent wrong-but-valid parse with matching CRC is
            // astronomically unlikely across the suite; treat parse
            // success with differing content as failure.
            if let Ok(parsed) = DownstreamFrame::from_bytes(&bytes) {
                assert_eq!(
                    parsed, f,
                    "collision produced a different frame (case {case})"
                );
            }
        }
    }
}
