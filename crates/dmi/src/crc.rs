//! Frame CRC.
//!
//! Paper §2.3: "both upstream and downstream frames are protected with
//! strong cyclic redundancy check (CRC) for error detection". We use
//! CRC-16/CCITT-FALSE (polynomial 0x1021, init 0xFFFF), computed over
//! the serialized frame bytes excluding the CRC field itself. A 16-bit
//! CRC detects all single- and double-bit errors and all burst errors
//! up to 16 bits in a 28-byte frame, which matches the single-lane
//! error bursts the link model injects.

/// Polynomial for CRC-16/CCITT-FALSE.
pub const POLY: u16 = 0x1021;
/// Initial register value.
pub const INIT: u16 = 0xFFFF;

/// Computes the CRC-16/CCITT-FALSE over `data`.
///
/// # Example
///
/// ```
/// // Standard check value for this CRC variant.
/// assert_eq!(contutto_dmi::crc::crc16(b"123456789"), 0x29B1);
/// ```
pub fn crc16(data: &[u8]) -> u16 {
    let mut crc = Crc16::new();
    crc.update(data);
    crc.finish()
}

const fn build_table() -> [u16; 256] {
    let mut table = [0u16; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = (i as u16) << 8;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 0x8000 != 0 {
                (crc << 1) ^ POLY
            } else {
                crc << 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// Precomputed byte-at-a-time table (the link model computes a CRC on
/// every frame in both directions, so this is hot).
static TABLE: [u16; 256] = build_table();

/// Incremental CRC-16 state, for computing a frame CRC across
/// separately serialized sections.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Crc16 {
    state: u16,
}

impl Default for Crc16 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc16 {
    /// Creates a fresh CRC register.
    pub fn new() -> Self {
        Crc16 { state: INIT }
    }

    /// Feeds bytes into the CRC.
    pub fn update(&mut self, data: &[u8]) {
        for &byte in data {
            let idx = ((self.state >> 8) ^ u16::from(byte)) & 0xFF;
            self.state = (self.state << 8) ^ TABLE[idx as usize];
        }
    }

    /// Returns the final CRC value.
    pub fn finish(self) -> u16 {
        self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_check_value() {
        assert_eq!(crc16(b"123456789"), 0x29B1);
    }

    #[test]
    fn empty_input_is_init() {
        assert_eq!(crc16(&[]), INIT);
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data = b"the quick brown fox jumps over the lazy dog";
        let mut inc = Crc16::new();
        inc.update(&data[..10]);
        inc.update(&data[10..]);
        assert_eq!(inc.finish(), crc16(data));
    }

    #[test]
    fn detects_single_bit_flips_in_frame_sized_data() {
        let frame: Vec<u8> = (0..26u8).collect(); // 26 covered bytes of a 28 B frame
        let good = crc16(&frame);
        for byte in 0..frame.len() {
            for bit in 0..8 {
                let mut bad = frame.clone();
                bad[byte] ^= 1 << bit;
                assert_ne!(crc16(&bad), good, "missed flip at {byte}:{bit}");
            }
        }
    }

    #[test]
    fn detects_all_double_bit_flips_in_one_lane_word() {
        // Two-bit errors within any 16-bit window must be caught.
        let frame: Vec<u8> = (0..26u8).map(|b| b.wrapping_mul(37)).collect();
        let good = crc16(&frame);
        let bits = frame.len() * 8;
        for i in 0..bits {
            for j in (i + 1)..bits.min(i + 16) {
                let mut bad = frame.clone();
                bad[i / 8] ^= 1 << (i % 8);
                bad[j / 8] ^= 1 << (j % 8);
                assert_ne!(crc16(&bad), good, "missed double flip {i},{j}");
            }
        }
    }
}
