//! The buffer-side command interface.
//!
//! A DMI memory buffer (Centaur ASIC or ConTutto FPGA) is a *slave*:
//! it consumes downstream payloads, executes the tagged commands
//! against its memory, and produces upstream payloads (read data,
//! dones). [`DmiBuffer`] is the contract the channel driver uses to
//! plug either buffer implementation behind a [`crate::LinkEndpoint`].
//!
//! Timing contract: `push_downstream` is called when a payload clears
//! the buffer's receive PHY + MBI; the buffer schedules internal work
//! and makes responses available from `pull_upstream` no earlier than
//! their completion times. Each `pull_upstream` call corresponds to
//! one upstream frame-slot grant from the arbiter.

use contutto_sim::{MetricsRegistry, SimTime, Tracer};

use crate::frame::{DownstreamPayload, UpstreamPayload};

/// A DMI slave device: parses downstream traffic, executes commands,
/// emits upstream responses.
pub trait DmiBuffer {
    /// Delivers one downstream payload that cleared MBI at `now`.
    fn push_downstream(&mut self, now: SimTime, payload: DownstreamPayload);

    /// Offers the buffer one upstream frame slot at `now`; the buffer
    /// returns a payload if it has one ready (arbitration happens
    /// inside — paper §3.3(iii): "a single unified arbitration unit
    /// for the upstream channel").
    fn pull_upstream(&mut self, now: SimTime) -> Option<UpstreamPayload>;

    /// One-way probe-to-echo turnaround through the buffer's PHY and
    /// MBI, used for FRTL determination during training.
    fn frtl_turnaround(&self) -> SimTime;

    /// Human-readable model name (for reports).
    fn name(&self) -> &str;

    /// Connects the buffer to a shared [`Tracer`] so device accesses
    /// and cache activity show up in the channel trace. Default: no
    /// tracing (models opt in).
    fn attach_tracer(&mut self, tracer: Tracer) {
        let _ = tracer;
    }

    /// Contributes this buffer's counters to a [`MetricsRegistry`]
    /// under `prefix` (e.g. `"buffer"`). Default: contributes nothing.
    fn register_metrics(&self, prefix: &str, registry: &mut MetricsRegistry) {
        let _ = (prefix, registry);
    }

    /// Maintenance-path read of one 128 B line through the buffer's
    /// service interface (ConTutto trains and debugs over an indirect
    /// FSI → I²C path — paper §3.4 — which keeps working when the DMI
    /// link itself is dead). Functional and zero-sim-time; the caller
    /// charges whatever sideband latency its scenario dictates.
    /// Returns the line plus whether it must travel as poison, or
    /// `None` if the model has no sideband (the default).
    fn sideband_read_line(&mut self, now: SimTime, addr: u64) -> Option<([u8; 128], bool)> {
        let _ = (now, addr);
        None
    }

    /// Maintenance-path write of one 128 B line, optionally depositing
    /// it with its poison marker so evacuation never launders rot.
    /// Returns `false` if the model has no sideband (the default).
    fn sideband_write_line(&mut self, addr: u64, data: &[u8; 128], poison: bool) -> bool {
        let _ = (addr, data, poison);
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::UpstreamPayload;

    /// A loopback buffer used to validate the trait contract shape.
    struct Echo {
        pending: Vec<(SimTime, UpstreamPayload)>,
    }

    impl DmiBuffer for Echo {
        fn push_downstream(&mut self, now: SimTime, payload: DownstreamPayload) {
            if let DownstreamPayload::Command { tag, .. } = payload {
                self.pending.push((
                    now + SimTime::from_ns(10),
                    UpstreamPayload::Done {
                        first: tag,
                        second: None,
                    },
                ));
            }
        }

        fn pull_upstream(&mut self, now: SimTime) -> Option<UpstreamPayload> {
            if let Some(pos) = self.pending.iter().position(|(t, _)| *t <= now) {
                Some(self.pending.remove(pos).1)
            } else {
                None
            }
        }

        fn frtl_turnaround(&self) -> SimTime {
            SimTime::from_ns(5)
        }

        fn name(&self) -> &str {
            "echo"
        }
    }

    #[test]
    fn trait_contract_smoke() {
        use crate::command::Tag;
        use crate::frame::CommandHeader;
        let mut e = Echo { pending: vec![] };
        e.push_downstream(
            SimTime::ZERO,
            DownstreamPayload::Command {
                tag: Tag::new(3).unwrap(),
                header: CommandHeader::Flush,
            },
        );
        assert!(e.pull_upstream(SimTime::from_ns(5)).is_none());
        let done = e.pull_upstream(SimTime::from_ns(10)).unwrap();
        assert!(matches!(done, UpstreamPayload::Done { first, .. } if first.raw() == 3));
    }
}
