//! The buffer-side command interface.
//!
//! A DMI memory buffer (Centaur ASIC or ConTutto FPGA) is a *slave*:
//! it consumes downstream payloads, executes the tagged commands
//! against its memory, and produces upstream payloads (read data,
//! dones). [`DmiBuffer`] is the contract the channel driver uses to
//! plug either buffer implementation behind a [`crate::LinkEndpoint`].
//!
//! Timing contract: `push_downstream` is called when a payload clears
//! the buffer's receive PHY + MBI; the buffer schedules internal work
//! and makes responses available from `pull_upstream` no earlier than
//! their completion times. Each `pull_upstream` call corresponds to
//! one upstream frame-slot grant from the arbiter.

use contutto_sim::snapshot::{RestoreError, SnapReader};
use contutto_sim::{MetricsRegistry, SimTime, Tracer};

use crate::frame::{DownstreamPayload, UpstreamPayload};

/// What a buffer's media held when power came back.
///
/// One value summarises the whole buffer: the *worst* per-device
/// outcome wins, so a single torn DIMM marks the buffer `TornSave`
/// even if its siblings restored cleanly. Ordering of the variants
/// encodes that severity (later = worse), which lets aggregation be
/// a plain `max`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum PowerRestoreOutcome {
    /// Volatile media: contents were lost by design, nothing to
    /// restore and nothing to report. The reset state is the
    /// architected post-power-on state.
    Volatile,
    /// Nonvolatile media came back with its pre-cut contents intact
    /// (MRAM held state natively, or an NVDIMM image restored clean).
    Restored,
    /// An NVDIMM save image was incomplete — the supercap ran out (or
    /// the cut landed) mid-save. Detected and reported, contents
    /// discarded: a typed data loss, never silent corruption.
    TornSave,
    /// A save image existed but failed its integrity check (CRC
    /// mismatch — flash rot while powered off). Typed data loss.
    CorruptImage,
    /// No usable image at all: the DIMM was disarmed when power cut,
    /// or the image was already consumed. Typed data loss.
    Lost,
}

impl PowerRestoreOutcome {
    /// `true` when the outcome is a typed data loss that firmware must
    /// surface (machine-check + loss report), as opposed to a clean
    /// restore or architected volatility.
    pub fn is_data_loss(self) -> bool {
        matches!(
            self,
            PowerRestoreOutcome::TornSave
                | PowerRestoreOutcome::CorruptImage
                | PowerRestoreOutcome::Lost
        )
    }
}

impl std::fmt::Display for PowerRestoreOutcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PowerRestoreOutcome::Volatile => write!(f, "volatile"),
            PowerRestoreOutcome::Restored => write!(f, "restored"),
            PowerRestoreOutcome::TornSave => write!(f, "torn-save"),
            PowerRestoreOutcome::CorruptImage => write!(f, "corrupt-image"),
            PowerRestoreOutcome::Lost => write!(f, "lost"),
        }
    }
}

/// A media fault burst described from the channel's side of the DMI
/// link, mirroring the memdev fault-injector knobs without a
/// dependency on that crate (the dmi crate sits below the device
/// models in the layering). Buffers that own fault-capable media
/// translate this into their device-level configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MediaFaultSpec {
    /// Seed for the burst's own RNG stream.
    pub seed: u64,
    /// Transient single-bit flips to schedule across the window.
    pub transient_flips: u32,
    /// Window over which the flips land, starting at the arm time.
    pub window: SimTime,
    /// First line of the hot range flips concentrate in.
    pub hot_start: u64,
    /// Length of the hot range in lines (clamped to ≥ 1).
    pub hot_len: u64,
    /// Permanently stuck cells to plant immediately.
    pub stuck_cells: u32,
}

/// A DMI slave device: parses downstream traffic, executes commands,
/// emits upstream responses.
pub trait DmiBuffer {
    /// Delivers one downstream payload that cleared MBI at `now`.
    fn push_downstream(&mut self, now: SimTime, payload: DownstreamPayload);

    /// Offers the buffer one upstream frame slot at `now`; the buffer
    /// returns a payload if it has one ready (arbitration happens
    /// inside — paper §3.3(iii): "a single unified arbitration unit
    /// for the upstream channel").
    fn pull_upstream(&mut self, now: SimTime) -> Option<UpstreamPayload>;

    /// One-way probe-to-echo turnaround through the buffer's PHY and
    /// MBI, used for FRTL determination during training.
    fn frtl_turnaround(&self) -> SimTime;

    /// Human-readable model name (for reports).
    fn name(&self) -> &str;

    /// Connects the buffer to a shared [`Tracer`] so device accesses
    /// and cache activity show up in the channel trace. Default: no
    /// tracing (models opt in).
    fn attach_tracer(&mut self, tracer: Tracer) {
        let _ = tracer;
    }

    /// Contributes this buffer's counters to a [`MetricsRegistry`]
    /// under `prefix` (e.g. `"buffer"`). Default: contributes nothing.
    fn register_metrics(&self, prefix: &str, registry: &mut MetricsRegistry) {
        let _ = (prefix, registry);
    }

    /// Maintenance-path read of one 128 B line through the buffer's
    /// service interface (ConTutto trains and debugs over an indirect
    /// FSI → I²C path — paper §3.4 — which keeps working when the DMI
    /// link itself is dead). Functional and zero-sim-time; the caller
    /// charges whatever sideband latency its scenario dictates.
    /// Returns the line plus whether it must travel as poison, or
    /// `None` if the model has no sideband (the default).
    fn sideband_read_line(&mut self, now: SimTime, addr: u64) -> Option<([u8; 128], bool)> {
        let _ = (now, addr);
        None
    }

    /// Maintenance-path write of one 128 B line, optionally depositing
    /// it with its poison marker so evacuation never launders rot.
    /// Returns `false` if the model has no sideband (the default).
    fn sideband_write_line(&mut self, addr: u64, data: &[u8; 128], poison: bool) -> bool {
        let _ = (addr, data, poison);
        false
    }

    /// EPOW flush: push every buffered dirty line down to media before
    /// the hold-up window closes (the MBS flush extension ConTutto adds
    /// that "does not exist in the Centaur ASIC" — paper §4.2). Charges
    /// the flush against `energy_nj` (saturating at zero) and returns
    /// the sim time at which the buffer's write pipeline is empty.
    /// Default: nothing buffered, nothing to flush.
    fn epow_flush(&mut self, now: SimTime, energy_nj: &mut u64) -> SimTime {
        let _ = energy_nj;
        now
    }

    /// Power cut: all volatile state — caches, replay buffers, engine
    /// queues, DRAM contents — is gone *now*; media-backed state (an
    /// armed NVDIMM's in-progress save, MRAM cells) persists. Returns
    /// when the buffer is electrically quiet. Default: a stateless
    /// buffer just goes dark.
    fn power_cut(&mut self, now: SimTime) -> SimTime {
        now
    }

    /// Power restore: bring media back up and recover what persisted
    /// (NVDIMM image restore, supercap recharge). Returns when the
    /// media is serviceable plus the worst per-device
    /// [`PowerRestoreOutcome`]. Default: purely volatile buffer.
    fn power_restore(&mut self, now: SimTime) -> (SimTime, PowerRestoreOutcome) {
        (now, PowerRestoreOutcome::Volatile)
    }

    /// Arms (or disarms) the buffer's NVDIMM save engines for the
    /// vendor save sequence. Returns `true` if at least one device
    /// accepted the handshake; `false` when the buffer has no save
    /// engine (the default) or the sequence was refused.
    fn set_save_armed(&mut self, armed: bool) -> bool {
        let _ = armed;
        false
    }

    /// Installs a finite supercap energy budget (nanojoules) on every
    /// save engine behind this buffer. Devices without a save engine
    /// ignore it (the default).
    fn set_supercap_budget_nj(&mut self, nj: u64) {
        let _ = nj;
    }

    /// Arms a media fault burst at runtime: flips scheduled relative
    /// to `now`, stuck cells planted immediately. Returns `true` if
    /// the buffer's media accepted the burst; `false` when the model
    /// has no fault-capable media (the default).
    fn arm_media_faults(&mut self, now: SimTime, spec: MediaFaultSpec) -> bool {
        let _ = (now, spec);
        false
    }

    /// Reconfigures patrol scrub at runtime: `Some(interval)` (re)arms
    /// it with the next pass at `now + interval`, `None` disables it.
    /// Returns `true` if the buffer has a scrub engine; `false`
    /// otherwise (the default).
    fn set_scrub(&mut self, now: SimTime, interval: Option<SimTime>) -> bool {
        let _ = (now, interval);
        false
    }

    /// Current patrol-scrub interval, `None` when scrub is disabled or
    /// the buffer has no scrub engine (the default).
    fn scrub_interval(&self) -> Option<SimTime> {
        None
    }

    /// Serializes the buffer's dynamic state (caches, engine queues,
    /// media contents, save-engine state) into a snapshot payload.
    /// Must be the exact mirror of [`DmiBuffer::restore_state`]: a
    /// model overriding one must override both. Default: a stateless
    /// buffer contributes no bytes.
    fn snapshot_state(&self, out: &mut Vec<u8>) {
        let _ = out;
    }

    /// Overlays buffer state from a snapshot payload written by
    /// [`DmiBuffer::snapshot_state`] onto this identically-constructed
    /// buffer. Default: reads nothing (matching the empty default
    /// snapshot).
    ///
    /// # Errors
    ///
    /// Propagates [`RestoreError`] from the payload decode.
    fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), RestoreError> {
        let _ = r;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::UpstreamPayload;

    /// A loopback buffer used to validate the trait contract shape.
    struct Echo {
        pending: Vec<(SimTime, UpstreamPayload)>,
    }

    impl DmiBuffer for Echo {
        fn push_downstream(&mut self, now: SimTime, payload: DownstreamPayload) {
            if let DownstreamPayload::Command { tag, .. } = payload {
                self.pending.push((
                    now + SimTime::from_ns(10),
                    UpstreamPayload::Done {
                        first: tag,
                        second: None,
                    },
                ));
            }
        }

        fn pull_upstream(&mut self, now: SimTime) -> Option<UpstreamPayload> {
            if let Some(pos) = self.pending.iter().position(|(t, _)| *t <= now) {
                Some(self.pending.remove(pos).1)
            } else {
                None
            }
        }

        fn frtl_turnaround(&self) -> SimTime {
            SimTime::from_ns(5)
        }

        fn name(&self) -> &str {
            "echo"
        }
    }

    #[test]
    fn trait_contract_smoke() {
        use crate::command::Tag;
        use crate::frame::CommandHeader;
        let mut e = Echo { pending: vec![] };
        e.push_downstream(
            SimTime::ZERO,
            DownstreamPayload::Command {
                tag: Tag::new(3).unwrap(),
                header: CommandHeader::Flush,
            },
        );
        assert!(e.pull_upstream(SimTime::from_ns(5)).is_none());
        let done = e.pull_upstream(SimTime::from_ns(10)).unwrap();
        assert!(matches!(done, UpstreamPayload::Done { first, .. } if first.raw() == 3));
    }

    #[test]
    fn default_power_hooks_model_a_fully_volatile_buffer() {
        let mut e = Echo { pending: vec![] };
        let now = SimTime::from_ns(100);
        let mut energy = 42u64;
        assert_eq!(e.epow_flush(now, &mut energy), now);
        assert_eq!(energy, 42, "a stateless buffer charges nothing");
        assert_eq!(e.power_cut(now), now);
        assert_eq!(e.power_restore(now), (now, PowerRestoreOutcome::Volatile));
        assert!(!e.set_save_armed(true));
        assert!(!PowerRestoreOutcome::Volatile.is_data_loss());
        assert!(PowerRestoreOutcome::TornSave.is_data_loss());
        assert!(PowerRestoreOutcome::TornSave < PowerRestoreOutcome::Lost);
    }
}
