//! # contutto-dmi
//!
//! Simulation of the POWER8 **Differential Memory Interface (DMI)**:
//! the high-speed packetized link between the processor and its memory
//! buffer chips (Centaur, or the ConTutto FPGA), as described in §2 of
//! the ConTutto paper (Sukhwani et al., MICRO-50 2017).
//!
//! The crate models the link at *frame* granularity with functional
//! fidelity: frames are serialized to real bytes, scrambled with a real
//! LFSR, protected by a real CRC-16, carry sequence IDs and embedded
//! ACKs, and are replayed from a real replay buffer on error — exactly
//! the two-level handshake of paper §2.3:
//!
//! * a tight **packet loop** (seq ID + CRC + ACK + replay, with the
//!   Frame Round Trip Latency (FRTL) measured at link init), and
//! * a longer **command loop** (32 tagged commands in flight, paired
//!   read data and done responses).
//!
//! ## Layers
//!
//! | module | paper concept |
//! |---|---|
//! | [`frame`] | downstream/upstream frame formats, packets |
//! | [`crc`] | frame CRC ("strong cyclic redundancy check") |
//! | [`scramble`] | line scrambling/descrambling |
//! | [`command`] | 128 B read/write/RMW commands, 32-entry tag pool |
//! | [`link`] | the physical channel: lanes, serialization delay, bit-error injection |
//! | [`training`] | bit/word/frame alignment + FRTL determination |
//! | [`protocol`] | `LinkEndpoint`: seq/ACK bookkeeping, replay buffer, replay FSM |
//!
//! ## Example
//!
//! ```
//! use contutto_dmi::LinkSpeed;
//!
//! // An 8 Gb/s link moves one 16-UI frame every 2 ns (paper §3.3).
//! assert_eq!(LinkSpeed::Gbps8.frame_time().as_ps(), 2000);
//! ```

pub mod buffer;
pub mod command;
pub mod crc;
pub mod error;
pub mod frame;
pub mod link;
pub mod protocol;
pub mod scramble;
pub mod training;

pub use buffer::{DmiBuffer, MediaFaultSpec, PowerRestoreOutcome};
pub use command::{CacheLine, CommandOp, MemCommand, MemResponse, Tag, TagPool, CACHE_LINE_BYTES};
pub use error::DmiError;
pub use frame::{DownstreamFrame, DownstreamPayload, UpstreamFrame, UpstreamPayload};
pub use link::{BitErrorInjector, LinkSegment, LinkSpeed};
pub use protocol::{LinkEndpoint, LinkEndpointConfig, LinkRole};
pub use training::{LinkTrainer, TrainingOutcome, TrainingState};
