//! The command layer of the DMI protocol.
//!
//! Paper §2.2/§2.3: operations are performed on 128-byte cache-line
//! boundaries; the primary commands are full-line reads and writes plus
//! partial-line read-modify-writes. Each command carries one of **32
//! tags**; read data and the final *done* notification are paired back
//! to the command by tag, and a tag is only reusable after its done
//! arrives.
//!
//! ConTutto additionally defines a **flush** command (paper §4.2, for
//! persistent-memory sync) and fine-grained inline-acceleration
//! commands such as min-store / max-store / conditional-swap (paper
//! §4.3, Figure 11). The Centaur model rejects those: they only exist
//! on the FPGA.

use std::fmt;

use contutto_sim::snapshot::{Persist, RestoreError, SnapReader};
use contutto_sim::{TraceEvent, Tracer};

use crate::error::DmiError;

/// Size of a DMI cache line in bytes (paper §2.2).
pub const CACHE_LINE_BYTES: usize = 128;

/// Number of command tags the processor maintains (paper §2.3).
pub const NUM_TAGS: usize = 32;

/// A 128-byte cache line payload.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheLine(pub [u8; CACHE_LINE_BYTES]);

impl CacheLine {
    /// An all-zero line.
    pub const ZERO: CacheLine = CacheLine([0; CACHE_LINE_BYTES]);

    /// Builds a line whose bytes are a deterministic function of a
    /// seed — handy for tests and workload generators.
    pub fn patterned(seed: u64) -> Self {
        let mut bytes = [0u8; CACHE_LINE_BYTES];
        let mut x = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        for b in &mut bytes {
            // xorshift64*
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            *b = (x.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 56) as u8;
        }
        CacheLine(bytes)
    }

    /// Returns the line as a byte slice.
    pub fn as_bytes(&self) -> &[u8; CACHE_LINE_BYTES] {
        &self.0
    }

    /// Reads the `i`-th little-endian u64 word (0..16).
    ///
    /// # Panics
    ///
    /// Panics if `i >= 16`.
    pub fn word(&self, i: usize) -> u64 {
        let s = &self.0[i * 8..i * 8 + 8];
        u64::from_le_bytes(s.try_into().expect("8 bytes"))
    }

    /// Writes the `i`-th little-endian u64 word (0..16).
    ///
    /// # Panics
    ///
    /// Panics if `i >= 16`.
    pub fn set_word(&mut self, i: usize, v: u64) {
        self.0[i * 8..i * 8 + 8].copy_from_slice(&v.to_le_bytes());
    }
}

impl Default for CacheLine {
    fn default() -> Self {
        CacheLine::ZERO
    }
}

impl fmt::Debug for CacheLine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "CacheLine({:02x}{:02x}{:02x}{:02x}…{:02x}{:02x})",
            self.0[0], self.0[1], self.0[2], self.0[3], self.0[126], self.0[127]
        )
    }
}

impl From<[u8; CACHE_LINE_BYTES]> for CacheLine {
    fn from(bytes: [u8; CACHE_LINE_BYTES]) -> Self {
        CacheLine(bytes)
    }
}

/// A command tag (0..32). Tags identify commands in flight and are the
/// unit of flow control on the command loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Tag(u8);

impl Tag {
    /// Creates a tag, validating the range.
    ///
    /// # Errors
    ///
    /// Returns [`DmiError::UnknownTag`] if `raw >= 32`.
    pub fn new(raw: u8) -> Result<Self, DmiError> {
        if (raw as usize) < NUM_TAGS {
            Ok(Tag(raw))
        } else {
            Err(DmiError::UnknownTag(raw))
        }
    }

    /// The raw tag index.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The raw tag byte.
    pub fn raw(self) -> u8 {
        self.0
    }
}

impl fmt::Display for Tag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tag{}", self.0)
    }
}

/// The processor-side pool of 32 command tags.
///
/// `acquire` hands out the lowest free tag; `release` returns one when
/// its *done* response arrives. When the pool is empty the processor
/// must stall — the throttling effect paper §2.3 warns about when
/// buffer latency is too high.
#[derive(Debug, Clone)]
pub struct TagPool {
    free: u32, // bitmask, bit i set = tag i free
    tracer: Tracer,
}

impl Default for TagPool {
    fn default() -> Self {
        Self::new()
    }
}

impl TagPool {
    /// Creates a pool with all 32 tags free.
    pub fn new() -> Self {
        TagPool {
            free: u32::MAX,
            tracer: Tracer::off(),
        }
    }

    /// Connects the pool to a shared [`Tracer`]; every tag acquire,
    /// release and exhaustion stall is recorded.
    pub fn attach_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Acquires the lowest-numbered free tag.
    ///
    /// # Errors
    ///
    /// Returns [`DmiError::NoFreeTag`] when all 32 tags are in flight.
    pub fn acquire(&mut self) -> Result<Tag, DmiError> {
        if self.free == 0 {
            self.tracer.record(TraceEvent::TagExhausted);
            return Err(DmiError::NoFreeTag);
        }
        let idx = self.free.trailing_zeros() as u8;
        self.free &= !(1 << idx);
        self.tracer.record(TraceEvent::TagAcquire { tag: idx });
        Ok(Tag(idx))
    }

    /// Releases a tag back to the pool.
    ///
    /// # Errors
    ///
    /// Returns [`DmiError::UnknownTag`] if the tag was not in flight
    /// (double release is a protocol violation worth surfacing).
    pub fn release(&mut self, tag: Tag) -> Result<(), DmiError> {
        let bit = 1u32 << tag.0;
        if self.free & bit != 0 {
            return Err(DmiError::UnknownTag(tag.0));
        }
        self.free |= bit;
        self.tracer.record(TraceEvent::TagRelease { tag: tag.0 });
        Ok(())
    }

    /// Forcibly returns a tag to the pool outside the normal done path
    /// (timeout reclamation after a protocol hang). Returns `true` if
    /// the tag was in flight and is now free again; `false` if it was
    /// already free (idempotent, unlike [`TagPool::release`]).
    ///
    /// Records [`TraceEvent::TagReclaimed`] rather than a release, so
    /// traces distinguish recovered tags from normally completed ones.
    pub fn reclaim(&mut self, tag: Tag) -> bool {
        let bit = 1u32 << tag.0;
        if self.free & bit != 0 {
            return false;
        }
        self.free |= bit;
        self.tracer.record(TraceEvent::TagReclaimed { tag: tag.0 });
        true
    }

    /// Number of free tags.
    pub fn available(&self) -> usize {
        self.free.count_ones() as usize
    }

    /// Number of tags currently in flight.
    pub fn in_flight(&self) -> usize {
        NUM_TAGS - self.available()
    }

    /// Whether a specific tag is currently in flight.
    pub fn is_in_flight(&self, tag: Tag) -> bool {
        self.free & (1 << tag.0) == 0
    }

    /// Serializes the pool's dynamic state (the free bitmask) into a
    /// snapshot payload. The tracer attachment is construction-time
    /// wiring and is not part of the image.
    pub fn snapshot_state(&self, out: &mut Vec<u8>) {
        self.free.persist(out);
    }

    /// Overlays pool state from a snapshot payload, keeping the
    /// existing tracer attachment.
    ///
    /// # Errors
    ///
    /// Propagates [`RestoreError`] from the payload decode.
    pub fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), RestoreError> {
        self.free = u32::restore(r)?;
        Ok(())
    }
}

/// Atomic read-modify-write operations supported by the buffer's ALU
/// (paper §3.3(iii): "To support atomic read-modify-write commands,
/// data read from the memory is merged with downstream data").
///
/// The inline-acceleration operations of paper §4.3 Fig. 11
/// (min-store, max-store, conditional swap) use the same machinery.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RmwOp {
    /// Replace the bytes selected by the mask (partial write).
    PartialWrite {
        /// Bitmask of 16-byte sectors to replace (bit i = sector i).
        sector_mask: u8,
    },
    /// 64-bit add on every word, wrapping.
    AtomicAdd,
    /// Store min(old, new) per 64-bit word (inline acceleration).
    MinStore,
    /// Store max(old, new) per 64-bit word (inline acceleration).
    MaxStore,
    /// Swap line with the new data iff word 0 matches word 0 of the
    /// incoming line (inline acceleration: conditional swap).
    ConditionalSwap,
}

impl RmwOp {
    /// Applies the op: merges `incoming` into `current`, returning the
    /// line to write back.
    pub fn apply(self, current: CacheLine, incoming: CacheLine) -> CacheLine {
        match self {
            RmwOp::PartialWrite { sector_mask } => {
                let mut out = current;
                for sector in 0..8 {
                    if sector_mask & (1 << sector) != 0 {
                        let range = sector * 16..(sector + 1) * 16;
                        out.0[range.clone()].copy_from_slice(&incoming.0[range]);
                    }
                }
                out
            }
            RmwOp::AtomicAdd => {
                let mut out = current;
                for w in 0..16 {
                    out.set_word(w, current.word(w).wrapping_add(incoming.word(w)));
                }
                out
            }
            RmwOp::MinStore => {
                let mut out = current;
                for w in 0..16 {
                    out.set_word(w, current.word(w).min(incoming.word(w)));
                }
                out
            }
            RmwOp::MaxStore => {
                let mut out = current;
                for w in 0..16 {
                    out.set_word(w, current.word(w).max(incoming.word(w)));
                }
                out
            }
            RmwOp::ConditionalSwap => {
                if current.word(0) == incoming.word(0) {
                    incoming
                } else {
                    current
                }
            }
        }
    }

    /// Whether this op is a ConTutto-only extension (not implemented by
    /// the Centaur ASIC).
    pub fn is_fpga_extension(self) -> bool {
        !matches!(self, RmwOp::PartialWrite { .. })
    }
}

/// The operation part of a memory command.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommandOp {
    /// Full 128-byte cache-line read.
    Read {
        /// Line-aligned physical address.
        addr: u64,
    },
    /// Full 128-byte cache-line write.
    Write {
        /// Line-aligned physical address.
        addr: u64,
        /// The data to write.
        data: CacheLine,
    },
    /// Atomic read-modify-write.
    Rmw {
        /// Line-aligned physical address.
        addr: u64,
        /// The merge operation.
        op: RmwOp,
        /// The incoming operand line.
        data: CacheLine,
    },
    /// Drain all outstanding writes to the media before completing
    /// (ConTutto extension, paper §4.2 — "does not exist in the
    /// Centaur ASIC").
    Flush,
}

impl CommandOp {
    /// The target address, if the op addresses memory.
    pub fn addr(&self) -> Option<u64> {
        match self {
            CommandOp::Read { addr }
            | CommandOp::Write { addr, .. }
            | CommandOp::Rmw { addr, .. } => Some(*addr),
            CommandOp::Flush => None,
        }
    }

    /// Whether this op requires downstream data frames after the
    /// command frame.
    pub fn carries_write_data(&self) -> bool {
        matches!(self, CommandOp::Write { .. } | CommandOp::Rmw { .. })
    }

    /// Whether the op is a ConTutto-only extension.
    pub fn is_fpga_extension(&self) -> bool {
        match self {
            CommandOp::Flush => true,
            CommandOp::Rmw { op, .. } => op.is_fpga_extension(),
            _ => false,
        }
    }
}

/// A tagged command issued by the processor to the memory buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemCommand {
    /// The command tag (one of 32).
    pub tag: Tag,
    /// The operation.
    pub op: CommandOp,
}

/// A response from the memory buffer to the processor.
///
/// Reads produce `ReadData` followed by `Done`; writes and RMWs
/// produce `Done` only (paper §2.3: "a done tag is also issued ...
/// indicating that the command issued with that tag has been
/// completed").
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MemResponse {
    /// Read data for a tag.
    ReadData {
        /// Tag of the originating read.
        tag: Tag,
        /// The cache line read.
        data: CacheLine,
    },
    /// Command completion notification; the tag is free for reuse.
    Done {
        /// Tag of the completed command.
        tag: Tag,
    },
}

impl MemResponse {
    /// The tag this response refers to.
    pub fn tag(&self) -> Tag {
        match self {
            MemResponse::ReadData { tag, .. } | MemResponse::Done { tag } => *tag,
        }
    }
}

impl Persist for CacheLine {
    fn persist(&self, out: &mut Vec<u8>) {
        self.0.persist(out);
    }
    fn restore(r: &mut SnapReader<'_>) -> Result<Self, RestoreError> {
        Ok(CacheLine(<[u8; CACHE_LINE_BYTES]>::restore(r)?))
    }
}

impl Persist for Tag {
    fn persist(&self, out: &mut Vec<u8>) {
        self.0.persist(out);
    }
    fn restore(r: &mut SnapReader<'_>) -> Result<Self, RestoreError> {
        Tag::new(r.u8()?).map_err(|_| RestoreError::Malformed {
            context: "tag out of range",
        })
    }
}

impl Persist for RmwOp {
    fn persist(&self, out: &mut Vec<u8>) {
        match self {
            RmwOp::PartialWrite { sector_mask } => {
                out.push(0);
                sector_mask.persist(out);
            }
            RmwOp::AtomicAdd => out.push(1),
            RmwOp::MinStore => out.push(2),
            RmwOp::MaxStore => out.push(3),
            RmwOp::ConditionalSwap => out.push(4),
        }
    }
    fn restore(r: &mut SnapReader<'_>) -> Result<Self, RestoreError> {
        Ok(match r.u8()? {
            0 => RmwOp::PartialWrite {
                sector_mask: r.u8()?,
            },
            1 => RmwOp::AtomicAdd,
            2 => RmwOp::MinStore,
            3 => RmwOp::MaxStore,
            4 => RmwOp::ConditionalSwap,
            _ => {
                return Err(RestoreError::Malformed {
                    context: "RmwOp discriminant",
                })
            }
        })
    }
}

impl Persist for CommandOp {
    fn persist(&self, out: &mut Vec<u8>) {
        match self {
            CommandOp::Read { addr } => {
                out.push(0);
                addr.persist(out);
            }
            CommandOp::Write { addr, data } => {
                out.push(1);
                addr.persist(out);
                data.persist(out);
            }
            CommandOp::Rmw { addr, op, data } => {
                out.push(2);
                addr.persist(out);
                op.persist(out);
                data.persist(out);
            }
            CommandOp::Flush => out.push(3),
        }
    }
    fn restore(r: &mut SnapReader<'_>) -> Result<Self, RestoreError> {
        Ok(match r.u8()? {
            0 => CommandOp::Read { addr: r.u64()? },
            1 => CommandOp::Write {
                addr: r.u64()?,
                data: CacheLine::restore(r)?,
            },
            2 => CommandOp::Rmw {
                addr: r.u64()?,
                op: RmwOp::restore(r)?,
                data: CacheLine::restore(r)?,
            },
            3 => CommandOp::Flush,
            _ => {
                return Err(RestoreError::Malformed {
                    context: "CommandOp discriminant",
                })
            }
        })
    }
}

impl Persist for MemCommand {
    fn persist(&self, out: &mut Vec<u8>) {
        self.tag.persist(out);
        self.op.persist(out);
    }
    fn restore(r: &mut SnapReader<'_>) -> Result<Self, RestoreError> {
        Ok(MemCommand {
            tag: Tag::restore(r)?,
            op: CommandOp::restore(r)?,
        })
    }
}

impl Persist for MemResponse {
    fn persist(&self, out: &mut Vec<u8>) {
        match self {
            MemResponse::ReadData { tag, data } => {
                out.push(0);
                tag.persist(out);
                data.persist(out);
            }
            MemResponse::Done { tag } => {
                out.push(1);
                tag.persist(out);
            }
        }
    }
    fn restore(r: &mut SnapReader<'_>) -> Result<Self, RestoreError> {
        Ok(match r.u8()? {
            0 => MemResponse::ReadData {
                tag: Tag::restore(r)?,
                data: CacheLine::restore(r)?,
            },
            1 => MemResponse::Done {
                tag: Tag::restore(r)?,
            },
            _ => {
                return Err(RestoreError::Malformed {
                    context: "MemResponse discriminant",
                })
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_line_words_roundtrip() {
        let mut line = CacheLine::ZERO;
        line.set_word(0, 0xDEAD_BEEF);
        line.set_word(15, u64::MAX);
        assert_eq!(line.word(0), 0xDEAD_BEEF);
        assert_eq!(line.word(15), u64::MAX);
        assert_eq!(line.word(7), 0);
    }

    #[test]
    fn patterned_lines_differ_by_seed() {
        assert_ne!(CacheLine::patterned(1), CacheLine::patterned(2));
        assert_eq!(CacheLine::patterned(7), CacheLine::patterned(7));
    }

    #[test]
    fn tag_validation() {
        assert!(Tag::new(0).is_ok());
        assert!(Tag::new(31).is_ok());
        assert_eq!(Tag::new(32), Err(DmiError::UnknownTag(32)));
    }

    #[test]
    fn tag_pool_exhaustion_and_reuse() {
        let mut pool = TagPool::new();
        let tags: Vec<Tag> = (0..32).map(|_| pool.acquire().unwrap()).collect();
        assert_eq!(pool.available(), 0);
        assert_eq!(pool.in_flight(), 32);
        assert_eq!(pool.acquire(), Err(DmiError::NoFreeTag));
        pool.release(tags[5]).unwrap();
        assert_eq!(pool.available(), 1);
        assert_eq!(pool.acquire().unwrap(), tags[5]);
    }

    #[test]
    fn tag_pool_rejects_double_release() {
        let mut pool = TagPool::new();
        let t = pool.acquire().unwrap();
        pool.release(t).unwrap();
        assert_eq!(pool.release(t), Err(DmiError::UnknownTag(t.raw())));
    }

    #[test]
    fn tag_pool_reclaim_is_idempotent_and_reusable() {
        let mut pool = TagPool::new();
        let t = pool.acquire().unwrap();
        assert!(pool.reclaim(t), "in-flight tag reclaimed");
        assert!(!pool.reclaim(t), "second reclaim is a no-op");
        assert_eq!(pool.available(), 32);
        // A reclaimed tag is immediately reusable.
        assert_eq!(pool.acquire().unwrap(), t);
    }

    #[test]
    fn tag_pool_acquire_is_lowest_free() {
        let mut pool = TagPool::new();
        let a = pool.acquire().unwrap();
        let b = pool.acquire().unwrap();
        assert_eq!(a.index(), 0);
        assert_eq!(b.index(), 1);
        pool.release(a).unwrap();
        assert_eq!(pool.acquire().unwrap().index(), 0);
    }

    #[test]
    fn partial_write_merges_sectors() {
        let old = CacheLine::patterned(1);
        let new = CacheLine::patterned(2);
        let merged = RmwOp::PartialWrite {
            sector_mask: 0b0000_0101,
        }
        .apply(old, new);
        assert_eq!(&merged.0[0..16], &new.0[0..16]);
        assert_eq!(&merged.0[16..32], &old.0[16..32]);
        assert_eq!(&merged.0[32..48], &new.0[32..48]);
        assert_eq!(&merged.0[48..128], &old.0[48..128]);
    }

    #[test]
    fn atomic_add_wraps() {
        let mut a = CacheLine::ZERO;
        a.set_word(0, u64::MAX);
        let mut b = CacheLine::ZERO;
        b.set_word(0, 2);
        let sum = RmwOp::AtomicAdd.apply(a, b);
        assert_eq!(sum.word(0), 1);
    }

    #[test]
    fn min_max_store() {
        let mut cur = CacheLine::ZERO;
        cur.set_word(0, 10);
        cur.set_word(1, 10);
        let mut inc = CacheLine::ZERO;
        inc.set_word(0, 3);
        inc.set_word(1, 30);
        let mn = RmwOp::MinStore.apply(cur, inc);
        assert_eq!((mn.word(0), mn.word(1)), (3, 10));
        let mx = RmwOp::MaxStore.apply(cur, inc);
        assert_eq!((mx.word(0), mx.word(1)), (10, 30));
    }

    #[test]
    fn conditional_swap() {
        let mut cur = CacheLine::ZERO;
        cur.set_word(0, 42);
        let mut inc = CacheLine::patterned(9);
        inc.set_word(0, 42); // matches -> swap
        assert_eq!(RmwOp::ConditionalSwap.apply(cur, inc), inc);
        inc.set_word(0, 43); // mismatch -> keep
        assert_eq!(RmwOp::ConditionalSwap.apply(cur, inc), cur);
    }

    #[test]
    fn fpga_extension_classification() {
        assert!(!RmwOp::PartialWrite { sector_mask: 1 }.is_fpga_extension());
        assert!(RmwOp::MinStore.is_fpga_extension());
        assert!(CommandOp::Flush.is_fpga_extension());
        assert!(!CommandOp::Read { addr: 0 }.is_fpga_extension());
    }

    #[test]
    fn command_op_accessors() {
        let w = CommandOp::Write {
            addr: 0x80,
            data: CacheLine::ZERO,
        };
        assert_eq!(w.addr(), Some(0x80));
        assert!(w.carries_write_data());
        assert_eq!(CommandOp::Flush.addr(), None);
        assert!(!CommandOp::Read { addr: 0 }.carries_write_data());
    }

    #[test]
    fn response_tag_accessor() {
        let t = Tag::new(3).unwrap();
        assert_eq!(MemResponse::Done { tag: t }.tag(), t);
        assert_eq!(
            MemResponse::ReadData {
                tag: t,
                data: CacheLine::ZERO
            }
            .tag(),
            t
        );
    }
}
