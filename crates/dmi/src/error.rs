//! Error types for the DMI crate.

use std::error::Error;
use std::fmt;

use contutto_sim::SimTime;

/// Errors surfaced by DMI link and protocol operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DmiError {
    /// A received frame failed its CRC check.
    CrcMismatch {
        /// Sequence ID claimed by the (corrupted) frame.
        claimed_seq: u8,
    },
    /// A received frame's sequence ID was not the expected one.
    SequenceGap {
        /// The sequence ID the receiver expected next.
        expected: u8,
        /// The sequence ID actually seen.
        got: u8,
    },
    /// The transmitter ran out of replay-buffer history for a
    /// requested replay (the buffer must cover at least one FRTL).
    ReplayBufferUnderrun,
    /// No free command tag (all 32 in flight).
    NoFreeTag,
    /// A response named a tag that has no command in flight.
    UnknownTag(u8),
    /// Link training failed to converge within its retry budget.
    TrainingFailed {
        /// Training attempts made before giving up.
        attempts: u32,
    },
    /// The measured FRTL exceeds the processor's hard maximum
    /// (paper §2.3/§3.3: training fails if the buffer is too slow).
    FrtlExceeded {
        /// Measured round trip in bus cycles.
        measured_bus_cycles: u64,
        /// Hard maximum permitted by the POWER8 hardware.
        max_bus_cycles: u64,
    },
    /// A frame payload could not be decoded.
    MalformedFrame(&'static str),
    /// A blocking operation waited past its deadline for a completion
    /// that never arrived (protocol hang). The tag is quarantined for
    /// reclamation rather than leaked.
    Timeout {
        /// Tag of the command that never completed.
        tag: u8,
        /// How long the waiter blocked before giving up.
        waited: SimTime,
    },
    /// A configuration violated a documented invariant at construction
    /// time (e.g. a replay buffer too small to cover the ACK timeout).
    Config(&'static str),
    /// The buffer returned the line but flagged it poisoned: media ECC
    /// detected an uncorrectable error. The data must not be consumed;
    /// firmware surfaces this as a machine check.
    Poisoned {
        /// Host address of the poisoned line.
        addr: u64,
    },
    /// A read-modify-write command was abandoned mid-flight (timeout or
    /// link reset) and cannot be retried: the buffer may already have
    /// applied the merge and only the done notification was lost, so a
    /// resubmission would apply it twice. The caller must re-read the
    /// line to learn which side of the merge it landed on.
    RmwAborted {
        /// Host address the RMW targeted.
        addr: u64,
    },
    /// The command's propagated deadline expired before it could be
    /// issued (or before a timed-out attempt could be re-queued); it
    /// was dropped without touching the link. Not hardware evidence —
    /// the work was shed, not failed.
    DeadlineExceeded {
        /// How long the command sat before being dropped.
        waited: SimTime,
    },
}

impl fmt::Display for DmiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DmiError::CrcMismatch { claimed_seq } => {
                write!(f, "frame crc mismatch (claimed seq {claimed_seq})")
            }
            DmiError::SequenceGap { expected, got } => {
                write!(f, "sequence gap: expected {expected}, got {got}")
            }
            DmiError::ReplayBufferUnderrun => write!(f, "replay buffer underrun"),
            DmiError::NoFreeTag => write!(f, "no free command tag"),
            DmiError::UnknownTag(t) => write!(f, "response for unknown tag {t}"),
            DmiError::TrainingFailed { attempts } => {
                write!(f, "link training failed after {attempts} attempts")
            }
            DmiError::FrtlExceeded {
                measured_bus_cycles,
                max_bus_cycles,
            } => write!(
                f,
                "frtl {measured_bus_cycles} bus cycles exceeds maximum {max_bus_cycles}"
            ),
            DmiError::MalformedFrame(what) => write!(f, "malformed frame: {what}"),
            DmiError::Timeout { tag, waited } => {
                write!(f, "tag {tag} timed out after {waited}")
            }
            DmiError::Config(what) => write!(f, "invalid configuration: {what}"),
            DmiError::Poisoned { addr } => write!(f, "poisoned data at {addr:#x}"),
            DmiError::RmwAborted { addr } => {
                write!(f, "rmw at {addr:#x} aborted mid-flight; not retried")
            }
            DmiError::DeadlineExceeded { waited } => {
                write!(f, "deadline expired after {waited} queued; command shed")
            }
        }
    }
}

impl Error for DmiError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_nonempty() {
        let errs = [
            DmiError::CrcMismatch { claimed_seq: 3 },
            DmiError::SequenceGap {
                expected: 1,
                got: 5,
            },
            DmiError::ReplayBufferUnderrun,
            DmiError::NoFreeTag,
            DmiError::UnknownTag(7),
            DmiError::TrainingFailed { attempts: 4 },
            DmiError::FrtlExceeded {
                measured_bus_cycles: 900,
                max_bus_cycles: 800,
            },
            DmiError::MalformedFrame("bad opcode"),
            DmiError::Timeout {
                tag: 11,
                waited: SimTime::from_us(20),
            },
            DmiError::Config("replay buffer must cover the ack timeout"),
            DmiError::Poisoned { addr: 0x8000 },
            DmiError::RmwAborted { addr: 0x4000 },
            DmiError::DeadlineExceeded {
                waited: SimTime::from_us(40),
            },
        ];
        for e in errs {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DmiError>();
    }
}
