//! Error types for the DMI crate.

use std::error::Error;
use std::fmt;

use contutto_sim::snapshot::{Persist, RestoreError, SnapReader};
use contutto_sim::SimTime;

/// Errors surfaced by DMI link and protocol operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DmiError {
    /// A received frame failed its CRC check.
    CrcMismatch {
        /// Sequence ID claimed by the (corrupted) frame.
        claimed_seq: u8,
    },
    /// A received frame's sequence ID was not the expected one.
    SequenceGap {
        /// The sequence ID the receiver expected next.
        expected: u8,
        /// The sequence ID actually seen.
        got: u8,
    },
    /// The transmitter ran out of replay-buffer history for a
    /// requested replay (the buffer must cover at least one FRTL).
    ReplayBufferUnderrun,
    /// No free command tag (all 32 in flight).
    NoFreeTag,
    /// A response named a tag that has no command in flight.
    UnknownTag(u8),
    /// Link training failed to converge within its retry budget.
    TrainingFailed {
        /// Training attempts made before giving up.
        attempts: u32,
    },
    /// The measured FRTL exceeds the processor's hard maximum
    /// (paper §2.3/§3.3: training fails if the buffer is too slow).
    FrtlExceeded {
        /// Measured round trip in bus cycles.
        measured_bus_cycles: u64,
        /// Hard maximum permitted by the POWER8 hardware.
        max_bus_cycles: u64,
    },
    /// A frame payload could not be decoded.
    MalformedFrame(&'static str),
    /// A blocking operation waited past its deadline for a completion
    /// that never arrived (protocol hang). The tag is quarantined for
    /// reclamation rather than leaked.
    Timeout {
        /// Tag of the command that never completed.
        tag: u8,
        /// How long the waiter blocked before giving up.
        waited: SimTime,
    },
    /// A configuration violated a documented invariant at construction
    /// time (e.g. a replay buffer too small to cover the ACK timeout).
    Config(&'static str),
    /// The buffer returned the line but flagged it poisoned: media ECC
    /// detected an uncorrectable error. The data must not be consumed;
    /// firmware surfaces this as a machine check.
    Poisoned {
        /// Host address of the poisoned line.
        addr: u64,
    },
    /// A read-modify-write command was abandoned mid-flight (timeout or
    /// link reset) and cannot be retried: the buffer may already have
    /// applied the merge and only the done notification was lost, so a
    /// resubmission would apply it twice. The caller must re-read the
    /// line to learn which side of the merge it landed on.
    RmwAborted {
        /// Host address the RMW targeted.
        addr: u64,
    },
    /// The command's propagated deadline expired before it could be
    /// issued (or before a timed-out attempt could be re-queued); it
    /// was dropped without touching the link. Not hardware evidence —
    /// the work was shed, not failed.
    DeadlineExceeded {
        /// How long the command sat before being dropped.
        waited: SimTime,
    },
}

impl fmt::Display for DmiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DmiError::CrcMismatch { claimed_seq } => {
                write!(f, "frame crc mismatch (claimed seq {claimed_seq})")
            }
            DmiError::SequenceGap { expected, got } => {
                write!(f, "sequence gap: expected {expected}, got {got}")
            }
            DmiError::ReplayBufferUnderrun => write!(f, "replay buffer underrun"),
            DmiError::NoFreeTag => write!(f, "no free command tag"),
            DmiError::UnknownTag(t) => write!(f, "response for unknown tag {t}"),
            DmiError::TrainingFailed { attempts } => {
                write!(f, "link training failed after {attempts} attempts")
            }
            DmiError::FrtlExceeded {
                measured_bus_cycles,
                max_bus_cycles,
            } => write!(
                f,
                "frtl {measured_bus_cycles} bus cycles exceeds maximum {max_bus_cycles}"
            ),
            DmiError::MalformedFrame(what) => write!(f, "malformed frame: {what}"),
            DmiError::Timeout { tag, waited } => {
                write!(f, "tag {tag} timed out after {waited}")
            }
            DmiError::Config(what) => write!(f, "invalid configuration: {what}"),
            DmiError::Poisoned { addr } => write!(f, "poisoned data at {addr:#x}"),
            DmiError::RmwAborted { addr } => {
                write!(f, "rmw at {addr:#x} aborted mid-flight; not retried")
            }
            DmiError::DeadlineExceeded { waited } => {
                write!(f, "deadline expired after {waited} queued; command shed")
            }
        }
    }
}

impl Error for DmiError {}

/// Interns a restored message so the `&'static str` payload variants
/// round-trip through a snapshot. Distinct messages are deduplicated,
/// so the leaked memory is bounded by the (small, fixed) set of
/// message literals the codebase can ever emit.
fn intern(s: String) -> &'static str {
    use std::collections::HashSet;
    use std::sync::{Mutex, OnceLock};
    static TABLE: OnceLock<Mutex<HashSet<&'static str>>> = OnceLock::new();
    let mut table = TABLE
        .get_or_init(|| Mutex::new(HashSet::new()))
        .lock()
        .expect("intern table poisoned");
    if let Some(existing) = table.get(s.as_str()) {
        return existing;
    }
    let leaked: &'static str = Box::leak(s.into_boxed_str());
    table.insert(leaked);
    leaked
}

impl Persist for DmiError {
    fn persist(&self, out: &mut Vec<u8>) {
        match self {
            DmiError::CrcMismatch { claimed_seq } => {
                0u8.persist(out);
                claimed_seq.persist(out);
            }
            DmiError::SequenceGap { expected, got } => {
                1u8.persist(out);
                expected.persist(out);
                got.persist(out);
            }
            DmiError::ReplayBufferUnderrun => 2u8.persist(out),
            DmiError::NoFreeTag => 3u8.persist(out),
            DmiError::UnknownTag(t) => {
                4u8.persist(out);
                t.persist(out);
            }
            DmiError::TrainingFailed { attempts } => {
                5u8.persist(out);
                attempts.persist(out);
            }
            DmiError::FrtlExceeded {
                measured_bus_cycles,
                max_bus_cycles,
            } => {
                6u8.persist(out);
                measured_bus_cycles.persist(out);
                max_bus_cycles.persist(out);
            }
            DmiError::MalformedFrame(what) => {
                7u8.persist(out);
                what.to_string().persist(out);
            }
            DmiError::Timeout { tag, waited } => {
                8u8.persist(out);
                tag.persist(out);
                waited.persist(out);
            }
            DmiError::Config(what) => {
                9u8.persist(out);
                what.to_string().persist(out);
            }
            DmiError::Poisoned { addr } => {
                10u8.persist(out);
                addr.persist(out);
            }
            DmiError::RmwAborted { addr } => {
                11u8.persist(out);
                addr.persist(out);
            }
            DmiError::DeadlineExceeded { waited } => {
                12u8.persist(out);
                waited.persist(out);
            }
        }
    }

    fn restore(r: &mut SnapReader<'_>) -> Result<Self, RestoreError> {
        Ok(match r.u8()? {
            0 => DmiError::CrcMismatch {
                claimed_seq: r.u8()?,
            },
            1 => DmiError::SequenceGap {
                expected: r.u8()?,
                got: r.u8()?,
            },
            2 => DmiError::ReplayBufferUnderrun,
            3 => DmiError::NoFreeTag,
            4 => DmiError::UnknownTag(r.u8()?),
            5 => DmiError::TrainingFailed { attempts: r.u32()? },
            6 => DmiError::FrtlExceeded {
                measured_bus_cycles: r.u64()?,
                max_bus_cycles: r.u64()?,
            },
            7 => DmiError::MalformedFrame(intern(r.string()?)),
            8 => DmiError::Timeout {
                tag: r.u8()?,
                waited: SimTime::restore(r)?,
            },
            9 => DmiError::Config(intern(r.string()?)),
            10 => DmiError::Poisoned { addr: r.u64()? },
            11 => DmiError::RmwAborted { addr: r.u64()? },
            12 => DmiError::DeadlineExceeded {
                waited: SimTime::restore(r)?,
            },
            _ => {
                return Err(RestoreError::Malformed {
                    context: "dmi error discriminant",
                })
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_nonempty() {
        let errs = [
            DmiError::CrcMismatch { claimed_seq: 3 },
            DmiError::SequenceGap {
                expected: 1,
                got: 5,
            },
            DmiError::ReplayBufferUnderrun,
            DmiError::NoFreeTag,
            DmiError::UnknownTag(7),
            DmiError::TrainingFailed { attempts: 4 },
            DmiError::FrtlExceeded {
                measured_bus_cycles: 900,
                max_bus_cycles: 800,
            },
            DmiError::MalformedFrame("bad opcode"),
            DmiError::Timeout {
                tag: 11,
                waited: SimTime::from_us(20),
            },
            DmiError::Config("replay buffer must cover the ack timeout"),
            DmiError::Poisoned { addr: 0x8000 },
            DmiError::RmwAborted { addr: 0x4000 },
            DmiError::DeadlineExceeded {
                waited: SimTime::from_us(40),
            },
        ];
        for e in errs {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DmiError>();
    }

    #[test]
    fn every_variant_roundtrips_through_persist() {
        let errs = [
            DmiError::CrcMismatch { claimed_seq: 3 },
            DmiError::SequenceGap {
                expected: 1,
                got: 5,
            },
            DmiError::ReplayBufferUnderrun,
            DmiError::NoFreeTag,
            DmiError::UnknownTag(7),
            DmiError::TrainingFailed { attempts: 4 },
            DmiError::FrtlExceeded {
                measured_bus_cycles: 900,
                max_bus_cycles: 800,
            },
            DmiError::MalformedFrame("bad opcode"),
            DmiError::Timeout {
                tag: 11,
                waited: SimTime::from_us(20),
            },
            DmiError::Config("replay buffer must cover the ack timeout"),
            DmiError::Poisoned { addr: 0x8000 },
            DmiError::RmwAborted { addr: 0x4000 },
            DmiError::DeadlineExceeded {
                waited: SimTime::from_us(40),
            },
        ];
        for e in errs {
            let mut bytes = Vec::new();
            e.persist(&mut bytes);
            let mut r = SnapReader::new(&bytes);
            let back = DmiError::restore(&mut r).unwrap();
            assert_eq!(back, e);
            assert!(r.is_empty());
            // Interned messages render identically to the originals.
            assert_eq!(back.to_string(), e.to_string());
        }
        let mut r = SnapReader::new(&[13]);
        assert!(matches!(
            DmiError::restore(&mut r),
            Err(RestoreError::Malformed { .. })
        ));
    }
}
