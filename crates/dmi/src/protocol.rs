//! The DMI packet-loop protocol: sequence IDs, embedded ACKs, and
//! replay-based error recovery.
//!
//! Paper §2.3: "there is a tight loop with a continuous flow of packets
//! and corresponding acknowledges ... each received frame is
//! acknowledged by inserting the ACK bit into a frame being transmitted
//! in the opposite direction. A missing ACK triggers automatic
//! re-transmission (replay) of packets for error recovery. ... this
//! FRTL value is used by the transmitter to determine where to start
//! the re-transmission; no explicit frame ID of the erroneous frame
//! needs to be communicated."
//!
//! [`LinkEndpoint`] implements one side of this loop, generic over the
//! frame direction via [`WireFrame`]. Both the POWER8 host model and
//! the buffer models (Centaur, ConTutto) embed two of these (one per
//! direction's transmit side).
//!
//! The ConTutto-specific **freeze workaround** (paper §3.3(ii)) is
//! modelled: with `replay_switch_delay_frames > 0`, the endpoint
//! responds to a replay trigger by first re-transmitting its *last*
//! frame (same sequence ID — the receiver discards duplicates) for
//! that many slots, "effectively freezing the flow of frames from the
//! processor's perspective, until the FPGA is ready to switch to
//! replay".

use std::collections::VecDeque;

use contutto_sim::snapshot::{Persist, RestoreError, SnapReader};
use contutto_sim::{LinkDir, TraceEvent, Tracer};

use crate::error::DmiError;
use crate::frame::{
    DownstreamFrame, DownstreamPayload, UpstreamFrame, UpstreamPayload, DOWNSTREAM_FRAME_BYTES,
    SEQ_MODULO, UPSTREAM_FRAME_BYTES,
};
use crate::scramble::apply_trained;

/// Which end of the channel an endpoint plays.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkRole {
    /// The processor (DMI master). Transmits downstream frames.
    Host,
    /// The memory buffer (DMI slave). Transmits upstream frames.
    Buffer,
}

/// A frame type that can ride the link. Implemented by
/// [`DownstreamFrame`] and [`UpstreamFrame`]; sealed in practice by the
/// crate's frame formats.
pub trait WireFrame: Sized + Clone {
    /// The payload enum carried by this direction.
    type Payload: Clone + PartialEq + std::fmt::Debug;

    /// Serialized frame size on the wire.
    const WIRE_BYTES: usize;

    /// Builds a frame.
    fn assemble(seq: u8, ack: Option<u8>, payload: Self::Payload) -> Self;
    /// Serializes to wire bytes (CRC included).
    fn serialize(&self) -> Vec<u8>;
    /// Parses from wire bytes, checking CRC.
    ///
    /// # Errors
    ///
    /// Propagates [`DmiError::CrcMismatch`] / [`DmiError::MalformedFrame`].
    fn deserialize(bytes: &[u8]) -> Result<Self, DmiError>;
    /// The frame's sequence ID.
    fn seq(&self) -> u8;
    /// The embedded ACK, if any.
    fn ack(&self) -> Option<u8>;
    /// Borrows the payload.
    fn payload(&self) -> &Self::Payload;
    /// Consumes into the payload.
    fn into_payload(self) -> Self::Payload;
    /// The idle payload for slots with nothing to send.
    fn idle_payload() -> Self::Payload;
}

impl WireFrame for DownstreamFrame {
    type Payload = DownstreamPayload;
    const WIRE_BYTES: usize = DOWNSTREAM_FRAME_BYTES;

    fn assemble(seq: u8, ack: Option<u8>, payload: Self::Payload) -> Self {
        DownstreamFrame { seq, ack, payload }
    }
    fn serialize(&self) -> Vec<u8> {
        self.to_bytes().to_vec()
    }
    fn deserialize(bytes: &[u8]) -> Result<Self, DmiError> {
        let arr: &[u8; DOWNSTREAM_FRAME_BYTES] = bytes
            .try_into()
            .map_err(|_| DmiError::MalformedFrame("wrong downstream frame size"))?;
        DownstreamFrame::from_bytes(arr)
    }
    fn seq(&self) -> u8 {
        self.seq
    }
    fn ack(&self) -> Option<u8> {
        self.ack
    }
    fn payload(&self) -> &Self::Payload {
        &self.payload
    }
    fn into_payload(self) -> Self::Payload {
        self.payload
    }
    fn idle_payload() -> Self::Payload {
        DownstreamPayload::Idle
    }
}

impl WireFrame for UpstreamFrame {
    type Payload = UpstreamPayload;
    const WIRE_BYTES: usize = UPSTREAM_FRAME_BYTES;

    fn assemble(seq: u8, ack: Option<u8>, payload: Self::Payload) -> Self {
        UpstreamFrame { seq, ack, payload }
    }
    fn serialize(&self) -> Vec<u8> {
        self.to_bytes().to_vec()
    }
    fn deserialize(bytes: &[u8]) -> Result<Self, DmiError> {
        let arr: &[u8; UPSTREAM_FRAME_BYTES] = bytes
            .try_into()
            .map_err(|_| DmiError::MalformedFrame("wrong upstream frame size"))?;
        UpstreamFrame::from_bytes(arr)
    }
    fn seq(&self) -> u8 {
        self.seq
    }
    fn ack(&self) -> Option<u8> {
        self.ack
    }
    fn payload(&self) -> &Self::Payload {
        &self.payload
    }
    fn into_payload(self) -> Self::Payload {
        self.payload
    }
    fn idle_payload() -> Self::Payload {
        UpstreamPayload::Idle
    }
}

/// Configuration for a [`LinkEndpoint`].
#[derive(Debug, Clone)]
pub struct LinkEndpointConfig {
    /// Which side this endpoint is.
    pub role: LinkRole,
    /// Replay-buffer depth in frames. Must exceed the FRTL in frames
    /// (paper: the buffer must cover one round trip so the transmitter
    /// can rewind without explicit NAK IDs).
    pub replay_buffer_frames: usize,
    /// Transmit slots without ACK progress before a replay is
    /// triggered. Set from the measured FRTL plus margin.
    pub ack_timeout_frames: u64,
    /// ConTutto freeze workaround: number of slots the endpoint
    /// re-transmits its last frame before switching to replay
    /// (0 for Centaur/host, >0 for the FPGA).
    pub replay_switch_delay_frames: u64,
}

impl LinkEndpointConfig {
    /// Host-side defaults (no freeze; ASIC-speed replay switch).
    pub fn host() -> Self {
        LinkEndpointConfig {
            role: LinkRole::Host,
            replay_buffer_frames: 48,
            ack_timeout_frames: 24,
            replay_switch_delay_frames: 0,
        }
    }

    /// Centaur-style buffer defaults.
    pub fn centaur_buffer() -> Self {
        LinkEndpointConfig {
            role: LinkRole::Buffer,
            replay_buffer_frames: 48,
            ack_timeout_frames: 24,
            replay_switch_delay_frames: 0,
        }
    }

    /// ConTutto-style buffer defaults, including the freeze workaround
    /// (paper §3.3(ii)).
    pub fn contutto_buffer() -> Self {
        LinkEndpointConfig {
            role: LinkRole::Buffer,
            replay_buffer_frames: 48,
            ack_timeout_frames: 24,
            replay_switch_delay_frames: 4,
        }
    }

    /// Checks the documented invariants: the ACK timeout must be
    /// nonzero (a zero timeout replays on every slot and the link
    /// livelocks), the replay buffer must exceed the ACK timeout in
    /// frames (the transmitter must be able to rewind a full round
    /// trip), and it must stay within half the sequence space (beyond
    /// that, old and new frames become ambiguous under modulo-128
    /// sequence IDs).
    ///
    /// # Errors
    ///
    /// [`DmiError::Config`] naming the violated invariant.
    pub fn validate(&self) -> Result<(), DmiError> {
        if self.ack_timeout_frames == 0 {
            return Err(DmiError::Config("ack timeout must be nonzero"));
        }
        if self.replay_buffer_frames as u64 <= self.ack_timeout_frames {
            return Err(DmiError::Config("replay buffer must cover the ack timeout"));
        }
        if self.replay_buffer_frames >= SEQ_MODULO as usize / 2 {
            return Err(DmiError::Config(
                "replay buffer must stay within half the sequence space",
            ));
        }
        Ok(())
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TxState {
    Normal,
    /// Re-transmitting the last frame while preparing the replay mux.
    Freeze {
        slots_left: u64,
    },
    /// Replaying from the replay buffer, next index to send.
    Replay {
        next_idx: usize,
    },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RxState {
    Normal,
    /// Saw a bad frame; discarding until the expected seq reappears.
    AwaitReplay,
}

/// Cumulative protocol statistics for one endpoint.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LinkStats {
    /// Frames transmitted (including idles, duplicates and replays).
    pub frames_tx: u64,
    /// Good, in-order frames received and delivered.
    pub frames_rx_ok: u64,
    /// CRC failures observed on receive.
    pub crc_errors: u64,
    /// Sequence gaps observed on receive.
    pub seq_errors: u64,
    /// Duplicate frames discarded (normal during freeze/replay).
    pub duplicates_dropped: u64,
    /// Replay operations initiated by this transmitter.
    pub replays_triggered: u64,
    /// Frames re-transmitted during replays (excluding freeze dups).
    pub frames_replayed: u64,
}

/// Modulo-128 "is `a` at-or-before `b`" within a window of half the
/// sequence space.
fn seq_reaches(from: u8, to: u8) -> bool {
    ((to.wrapping_sub(from)) % SEQ_MODULO) < SEQ_MODULO / 2
}

/// One side of a DMI link: owns the transmit sequence space, replay
/// buffer and receive bookkeeping for its direction.
///
/// Drive it one **frame slot** at a time: [`LinkEndpoint::tick_tx`]
/// produces the serialized frame for this slot (idle frames keep the
/// link running, as on real hardware), and
/// [`LinkEndpoint::on_receive`] consumes an arriving frame, returning
/// any newly delivered payload.
#[derive(Debug)]
pub struct LinkEndpoint<T: WireFrame, R: WireFrame> {
    cfg: LinkEndpointConfig,
    // Transmit side.
    backlog: VecDeque<T::Payload>,
    replay: VecDeque<T>,
    next_seq: u8,
    acked_upto: Option<u8>,
    slots_since_progress: u64,
    tx_state: TxState,
    last_frame: Option<T>,
    // Receive side.
    rx_expected: u8,
    rx_state: RxState,
    pending_ack: Option<u8>,
    // Observability.
    stats: LinkStats,
    tracer: Tracer,
    _marker: std::marker::PhantomData<R>,
}

impl<T: WireFrame, R: WireFrame> LinkEndpoint<T, R> {
    /// Creates an endpoint with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if [`LinkEndpointConfig::validate`] rejects the
    /// configuration. Use [`LinkEndpoint::try_new`] for a typed error.
    pub fn new(cfg: LinkEndpointConfig) -> Self {
        Self::try_new(cfg).expect("valid link endpoint config")
    }

    /// Creates an endpoint, validating the configuration first.
    ///
    /// # Errors
    ///
    /// Propagates [`DmiError::Config`] from
    /// [`LinkEndpointConfig::validate`].
    pub fn try_new(cfg: LinkEndpointConfig) -> Result<Self, DmiError> {
        cfg.validate()?;
        Ok(LinkEndpoint {
            cfg,
            backlog: VecDeque::new(),
            replay: VecDeque::new(),
            next_seq: 0,
            acked_upto: None,
            slots_since_progress: 0,
            tx_state: TxState::Normal,
            last_frame: None,
            rx_expected: 0,
            rx_state: RxState::Normal,
            pending_ack: None,
            stats: LinkStats::default(),
            tracer: Tracer::off(),
            _marker: std::marker::PhantomData,
        })
    }

    /// Connects this endpoint to a shared [`Tracer`]. Frame, CRC and
    /// replay events are reported with the direction this endpoint
    /// transmits in ([`LinkRole::Host`] ⇒ downstream).
    pub fn attach_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Direction of frames this endpoint puts on the wire.
    fn tx_dir(&self) -> LinkDir {
        match self.cfg.role {
            LinkRole::Host => LinkDir::Downstream,
            LinkRole::Buffer => LinkDir::Upstream,
        }
    }

    /// Queues a payload for transmission in a future slot.
    pub fn enqueue(&mut self, payload: T::Payload) {
        self.backlog.push_back(payload);
    }

    /// Number of payloads waiting for a transmit slot.
    pub fn backlog_len(&self) -> usize {
        self.backlog.len()
    }

    /// Whether the transmitter is mid-recovery (freeze or replay).
    pub fn is_recovering(&self) -> bool {
        self.tx_state != TxState::Normal
    }

    /// Protocol statistics so far.
    pub fn stats(&self) -> &LinkStats {
        &self.stats
    }

    /// Updates the ACK timeout (called after FRTL measurement).
    ///
    /// # Errors
    ///
    /// [`DmiError::Config`] if the new timeout would violate the replay
    /// buffer's coverage invariant (the endpoint is left unchanged).
    pub fn set_ack_timeout(&mut self, frames: u64) -> Result<(), DmiError> {
        let candidate = LinkEndpointConfig {
            ack_timeout_frames: frames,
            ..self.cfg.clone()
        };
        candidate.validate()?;
        self.cfg = candidate;
        Ok(())
    }

    fn unacked_frames(&self) -> usize {
        self.replay.len()
    }

    /// Produces the serialized frame for this transmit slot. The link
    /// always carries a frame; with nothing to send this is an idle.
    pub fn tick_tx(&mut self) -> Vec<u8> {
        // Replay-trigger check: outstanding frames and no ACK progress
        // for longer than the round trip means the far end missed
        // something (or our frame was the one lost).
        if self.tx_state == TxState::Normal
            && self.unacked_frames() > 0
            && self.slots_since_progress >= self.cfg.ack_timeout_frames
        {
            self.stats.replays_triggered += 1;
            self.slots_since_progress = 0;
            self.tracer.record(TraceEvent::ReplayTrigger {
                dir: self.tx_dir(),
                unacked: self.unacked_frames(),
            });
            self.tx_state = if self.cfg.replay_switch_delay_frames > 0 {
                // ConTutto: not ready to switch the mux yet — freeze.
                TxState::Freeze {
                    slots_left: self.cfg.replay_switch_delay_frames,
                }
            } else {
                self.record_rewind();
                TxState::Replay { next_idx: 0 }
            };
        }

        let (frame, replayed) = match self.tx_state {
            TxState::Freeze { slots_left } => {
                self.tx_state = if slots_left <= 1 {
                    self.record_rewind();
                    TxState::Replay { next_idx: 0 }
                } else {
                    TxState::Freeze {
                        slots_left: slots_left - 1,
                    }
                };
                // Re-send the last frame verbatim except for a fresh ACK.
                let prev = self
                    .last_frame
                    .clone()
                    .unwrap_or_else(|| T::assemble(0, self.pending_ack, T::idle_payload()));
                (
                    T::assemble(prev.seq(), self.pending_ack, prev.payload().clone()),
                    true,
                )
            }
            TxState::Replay { next_idx } => {
                if next_idx < self.replay.len() {
                    self.stats.frames_replayed += 1;
                    let original = self.replay[next_idx].clone();
                    self.tx_state = TxState::Replay {
                        next_idx: next_idx + 1,
                    };
                    // Same seq and payload, fresh ACK.
                    (
                        T::assemble(original.seq(), self.pending_ack, original.payload().clone()),
                        true,
                    )
                } else {
                    // Replay complete; back to normal flow.
                    self.tx_state = TxState::Normal;
                    self.next_new_frame()
                }
            }
            TxState::Normal => self.next_new_frame(),
        };

        if self.unacked_frames() > 0 {
            self.slots_since_progress += 1;
        }
        self.stats.frames_tx += 1;
        self.tracer.record(TraceEvent::FrameTx {
            dir: self.tx_dir(),
            seq: frame.seq(),
            replayed,
        });
        self.last_frame = Some(frame.clone());

        let mut bytes = frame.serialize();
        apply_trained(&mut bytes);
        bytes
    }

    /// Records the rewind that accompanies a switch into replay mode.
    fn record_rewind(&mut self) {
        if !self.tracer.is_enabled() {
            return;
        }
        let from_seq = self.replay.front().map_or(self.next_seq, WireFrame::seq);
        self.tracer.record(TraceEvent::ReplayRewind {
            dir: self.tx_dir(),
            from_seq,
            frames: self.replay.len(),
        });
    }

    fn next_new_frame(&mut self) -> (T, bool) {
        // Flow control: never let unacked frames outrun the replay
        // buffer; send idles (which consume no new seq... they do — all
        // frames are sequenced) — so instead, stall new *payload* but
        // keep re-sending the last frame when the window is full.
        if self.replay.len() >= self.cfg.replay_buffer_frames {
            let prev = self
                .last_frame
                .clone()
                .unwrap_or_else(|| T::assemble(0, self.pending_ack, T::idle_payload()));
            return (
                T::assemble(prev.seq(), self.pending_ack, prev.payload().clone()),
                true,
            );
        }
        let payload = self.backlog.pop_front().unwrap_or_else(T::idle_payload);
        let seq = self.next_seq;
        self.next_seq = (self.next_seq + 1) % SEQ_MODULO;
        let frame = T::assemble(seq, self.pending_ack, payload);
        self.replay.push_back(frame.clone());
        (frame, false)
    }

    /// Consumes a frame arriving from the far end. Returns the payload
    /// if this is a new, in-order, CRC-clean frame.
    pub fn on_receive(&mut self, bytes: &[u8]) -> Option<R::Payload> {
        let mut descrambled = bytes.to_vec();
        apply_trained(&mut descrambled);
        let rx_dir = self.tx_dir().opposite();
        let frame = match R::deserialize(&descrambled) {
            Ok(f) => f,
            Err(DmiError::CrcMismatch { .. }) => {
                self.stats.crc_errors += 1;
                self.rx_state = RxState::AwaitReplay;
                self.tracer.record(TraceEvent::CrcFailure { dir: rx_dir });
                return None;
            }
            Err(_) => {
                self.stats.seq_errors += 1;
                self.rx_state = RxState::AwaitReplay;
                return None;
            }
        };

        // Process the embedded ACK even on duplicates: during the
        // freeze workaround the peer keeps ACKing via duplicates.
        if let Some(ack) = frame.ack() {
            self.process_ack(ack);
        }

        let seq = frame.seq();
        if seq == self.rx_expected {
            self.rx_expected = (seq + 1) % SEQ_MODULO;
            self.rx_state = RxState::Normal;
            self.pending_ack = Some(seq);
            self.stats.frames_rx_ok += 1;
            self.tracer.record(TraceEvent::FrameRx { dir: rx_dir, seq });
            Some(frame.into_payload())
        } else if self.pending_ack.is_some_and(|last| seq_reaches(seq, last)) {
            // Old frame (freeze duplicate or replay overlap): drop.
            self.stats.duplicates_dropped += 1;
            None
        } else {
            // Gap: a frame went missing entirely. Wait for replay.
            self.stats.seq_errors += 1;
            self.rx_state = RxState::AwaitReplay;
            self.tracer.record(TraceEvent::SeqGap {
                dir: rx_dir,
                expected: self.rx_expected,
                got: seq,
            });
            None
        }
    }

    fn process_ack(&mut self, ack: u8) {
        // Pop replay-buffer entries up to and including `ack`.
        let mut progressed = false;
        while let Some(front) = self.replay.front() {
            if seq_reaches(front.seq(), ack) {
                self.replay.pop_front();
                progressed = true;
            } else {
                break;
            }
        }
        if progressed {
            self.acked_upto = Some(ack);
            self.slots_since_progress = 0;
        }
    }

    /// Sequence ID the receiver expects next (for tests).
    pub fn rx_expected(&self) -> u8 {
        self.rx_expected
    }

    /// Whether the receiver is waiting out a replay.
    pub fn rx_awaiting_replay(&self) -> bool {
        self.rx_state == RxState::AwaitReplay
    }

    /// Serializes the endpoint's dynamic state into a snapshot
    /// payload. Frames (replay buffer, last frame) and backlogged
    /// payloads ride as their wire bytes — the same encoding the link
    /// itself uses, CRC included — so a flipped byte in a stored frame
    /// is caught on restore by the frame decoder. The role and buffer
    /// sizing are construction parameters; only the runtime-mutable
    /// ACK timeout (set after FRTL measurement) is persisted.
    pub fn snapshot_state(&self, out: &mut Vec<u8>) {
        self.cfg.ack_timeout_frames.persist(out);
        let backlog: Vec<Vec<u8>> = self
            .backlog
            .iter()
            .map(|p| T::assemble(0, None, p.clone()).serialize())
            .collect();
        backlog.persist(out);
        let replay: Vec<Vec<u8>> = self.replay.iter().map(WireFrame::serialize).collect();
        replay.persist(out);
        self.next_seq.persist(out);
        self.acked_upto.persist(out);
        self.slots_since_progress.persist(out);
        match self.tx_state {
            TxState::Normal => out.push(0),
            TxState::Freeze { slots_left } => {
                out.push(1);
                slots_left.persist(out);
            }
            TxState::Replay { next_idx } => {
                out.push(2);
                next_idx.persist(out);
            }
        }
        self.last_frame
            .as_ref()
            .map(WireFrame::serialize)
            .persist(out);
        self.rx_expected.persist(out);
        out.push(match self.rx_state {
            RxState::Normal => 0,
            RxState::AwaitReplay => 1,
        });
        self.pending_ack.persist(out);
        self.stats.frames_tx.persist(out);
        self.stats.frames_rx_ok.persist(out);
        self.stats.crc_errors.persist(out);
        self.stats.seq_errors.persist(out);
        self.stats.duplicates_dropped.persist(out);
        self.stats.replays_triggered.persist(out);
        self.stats.frames_replayed.persist(out);
    }

    /// Overlays endpoint state from a snapshot payload onto this
    /// (identically configured) endpoint, keeping the existing tracer
    /// attachment.
    ///
    /// # Errors
    ///
    /// [`RestoreError::Malformed`] when a stored frame fails to decode,
    /// a sequence ID is outside the 7-bit space, the replay cursor is
    /// out of range, or the stored ACK timeout violates the replay
    /// buffer's coverage invariant; otherwise propagates the payload
    /// decode error.
    pub fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), RestoreError> {
        fn decode_frame<F: WireFrame>(bytes: &[u8]) -> Result<F, RestoreError> {
            F::deserialize(bytes).map_err(|_| RestoreError::Malformed {
                context: "stored link frame",
            })
        }

        let ack_timeout_frames = u64::restore(r)?;
        let candidate = LinkEndpointConfig {
            ack_timeout_frames,
            ..self.cfg.clone()
        };
        if candidate.validate().is_err() {
            return Err(RestoreError::Malformed {
                context: "link ack timeout",
            });
        }
        let backlog = Vec::<Vec<u8>>::restore(r)?
            .iter()
            .map(|bytes| Ok(decode_frame::<T>(bytes)?.into_payload()))
            .collect::<Result<VecDeque<_>, RestoreError>>()?;
        let replay = Vec::<Vec<u8>>::restore(r)?
            .iter()
            .map(|bytes| decode_frame::<T>(bytes))
            .collect::<Result<VecDeque<_>, RestoreError>>()?;
        if replay.len() > candidate.replay_buffer_frames {
            return Err(RestoreError::Malformed {
                context: "replay buffer overflow",
            });
        }
        let next_seq = r.u8()?;
        let acked_upto = Option::<u8>::restore(r)?;
        let slots_since_progress = u64::restore(r)?;
        let tx_state = match r.u8()? {
            0 => TxState::Normal,
            1 => TxState::Freeze {
                slots_left: r.u64()?,
            },
            2 => {
                let next_idx = usize::restore(r)?;
                if next_idx > replay.len() {
                    return Err(RestoreError::Malformed {
                        context: "replay cursor out of range",
                    });
                }
                TxState::Replay { next_idx }
            }
            _ => {
                return Err(RestoreError::Malformed {
                    context: "TxState discriminant",
                })
            }
        };
        let last_frame = Option::<Vec<u8>>::restore(r)?
            .map(|bytes| decode_frame::<T>(&bytes))
            .transpose()?;
        let rx_expected = r.u8()?;
        let rx_state = match r.u8()? {
            0 => RxState::Normal,
            1 => RxState::AwaitReplay,
            _ => {
                return Err(RestoreError::Malformed {
                    context: "RxState discriminant",
                })
            }
        };
        let pending_ack = Option::<u8>::restore(r)?;
        if next_seq >= SEQ_MODULO
            || rx_expected >= SEQ_MODULO
            || acked_upto.is_some_and(|a| a >= SEQ_MODULO)
            || pending_ack.is_some_and(|a| a >= SEQ_MODULO)
        {
            return Err(RestoreError::Malformed {
                context: "sequence ID out of range",
            });
        }
        let stats = LinkStats {
            frames_tx: r.u64()?,
            frames_rx_ok: r.u64()?,
            crc_errors: r.u64()?,
            seq_errors: r.u64()?,
            duplicates_dropped: r.u64()?,
            replays_triggered: r.u64()?,
            frames_replayed: r.u64()?,
        };

        self.cfg = candidate;
        self.backlog = backlog;
        self.replay = replay;
        self.next_seq = next_seq;
        self.acked_upto = acked_upto;
        self.slots_since_progress = slots_since_progress;
        self.tx_state = tx_state;
        self.last_frame = last_frame;
        self.rx_expected = rx_expected;
        self.rx_state = rx_state;
        self.pending_ack = pending_ack;
        self.stats = stats;
        Ok(())
    }
}

/// Convenience aliases for the two concrete endpoint directions.
pub type HostEndpoint = LinkEndpoint<DownstreamFrame, UpstreamFrame>;
/// Buffer-side endpoint (transmits upstream frames).
pub type BufferEndpoint = LinkEndpoint<UpstreamFrame, DownstreamFrame>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::command::Tag;
    use crate::frame::CommandHeader;
    use crate::link::{BitErrorInjector, LinkSegment, LinkSpeed};
    use crate::scramble::Scrambler;
    use contutto_sim::SimTime;

    fn host() -> HostEndpoint {
        LinkEndpoint::new(LinkEndpointConfig::host())
    }
    fn buffer() -> BufferEndpoint {
        LinkEndpoint::new(LinkEndpointConfig::centaur_buffer())
    }

    /// Runs `slots` full-duplex frame slots between two endpoints over
    /// the given segments, collecting payloads delivered at each side.
    fn run_slots(
        host: &mut HostEndpoint,
        buf: &mut BufferEndpoint,
        down: &mut LinkSegment,
        up: &mut LinkSegment,
        slots: u64,
    ) -> (Vec<UpstreamPayload>, Vec<DownstreamPayload>) {
        let mut to_host = Vec::new();
        let mut to_buf = Vec::new();
        let slot = LinkSpeed::Gbps8.frame_time();
        for i in 0..slots {
            let now = slot * i;
            down.transmit(now, host.tick_tx());
            up.transmit(now, buf.tick_tx());
            while let Some(bytes) = down.receive(now) {
                if let Some(p) = buf.on_receive(&bytes) {
                    to_buf.push(p);
                }
            }
            while let Some(bytes) = up.receive(now) {
                if let Some(p) = host.on_receive(&bytes) {
                    to_host.push(p);
                }
            }
        }
        (to_host, to_buf)
    }

    fn cmd_payload(tag: u8, addr: u64) -> DownstreamPayload {
        DownstreamPayload::Command {
            tag: Tag::new(tag).unwrap(),
            header: CommandHeader::Read { addr },
        }
    }

    #[test]
    fn clean_link_delivers_in_order() {
        let mut h = host();
        let mut b = buffer();
        let mut down = LinkSegment::new(
            LinkSpeed::Gbps8,
            SimTime::from_ns(1),
            BitErrorInjector::never(),
        );
        let mut up = LinkSegment::new(
            LinkSpeed::Gbps8,
            SimTime::from_ns(1),
            BitErrorInjector::never(),
        );
        for i in 0..5 {
            h.enqueue(cmd_payload(i, u64::from(i) * 128));
        }
        let (_, to_buf) = run_slots(&mut h, &mut b, &mut down, &mut up, 20);
        let cmds: Vec<_> = to_buf
            .into_iter()
            .filter(|p| !matches!(p, DownstreamPayload::Idle))
            .collect();
        assert_eq!(cmds.len(), 5);
        assert_eq!(cmds[0], cmd_payload(0, 0));
        assert_eq!(cmds[4], cmd_payload(4, 512));
        assert_eq!(h.stats().replays_triggered, 0);
        assert_eq!(b.stats().crc_errors, 0);
    }

    #[test]
    fn corrupted_downstream_frame_is_replayed() {
        let mut h = host();
        let mut b = buffer();
        // Corrupt downstream frame #3.
        let mut down = LinkSegment::new(
            LinkSpeed::Gbps8,
            SimTime::from_ns(1),
            BitErrorInjector::at_frames(vec![3]),
        );
        let mut up = LinkSegment::new(
            LinkSpeed::Gbps8,
            SimTime::from_ns(1),
            BitErrorInjector::never(),
        );
        for i in 0..10 {
            h.enqueue(cmd_payload(i, u64::from(i) * 128));
        }
        let (_, to_buf) = run_slots(&mut h, &mut b, &mut down, &mut up, 120);
        let cmds: Vec<_> = to_buf
            .into_iter()
            .filter(|p| !matches!(p, DownstreamPayload::Idle))
            .collect();
        // All ten commands arrive, in order, exactly once.
        assert_eq!(cmds.len(), 10, "stats: {:?}", h.stats());
        for (i, c) in cmds.iter().enumerate() {
            assert_eq!(*c, cmd_payload(i as u8, i as u64 * 128));
        }
        assert_eq!(b.stats().crc_errors, 1);
        assert!(h.stats().replays_triggered >= 1);
        assert!(h.stats().frames_replayed > 0);
    }

    #[test]
    fn corrupted_upstream_frame_is_replayed() {
        let mut h = host();
        let mut b = LinkEndpoint::new(LinkEndpointConfig::contutto_buffer());
        let mut down = LinkSegment::new(
            LinkSpeed::Gbps8,
            SimTime::from_ns(1),
            BitErrorInjector::never(),
        );
        let mut up = LinkSegment::new(
            LinkSpeed::Gbps8,
            SimTime::from_ns(1),
            BitErrorInjector::at_frames(vec![5]),
        );
        for t in 0..4 {
            b.enqueue(UpstreamPayload::Done {
                first: Tag::new(t).unwrap(),
                second: None,
            });
        }
        // Give the buffer a moment, then more payloads after the error.
        let (to_host, _) = run_slots(&mut h, &mut b, &mut down, &mut up, 150);
        let dones: Vec<_> = to_host
            .into_iter()
            .filter(|p| !matches!(p, UpstreamPayload::Idle))
            .collect();
        assert_eq!(
            dones.len(),
            4,
            "host stats {:?} buf stats {:?}",
            h.stats(),
            b.stats()
        );
        assert_eq!(h.stats().crc_errors, 1);
        assert!(b.stats().replays_triggered >= 1);
        // The freeze workaround produced frames the host discarded
        // while waiting for replay (counted as dup or out-of-order
        // depending on where the corruption landed in the window).
        assert!(h.stats().duplicates_dropped + h.stats().seq_errors > 0);
    }

    #[test]
    fn freeze_workaround_delays_replay_start() {
        // With the ConTutto config, after a replay trigger the first
        // `replay_switch_delay_frames` frames must be duplicates of the
        // last frame, not replay frames.
        let mut b: BufferEndpoint = LinkEndpoint::new(LinkEndpointConfig::contutto_buffer());
        b.enqueue(UpstreamPayload::Done {
            first: Tag::new(1).unwrap(),
            second: None,
        });
        // Send some frames into the void (no ACKs will ever arrive).
        let mut sent = Vec::new();
        for _ in 0..40 {
            sent.push(b.tick_tx());
        }
        assert!(b.stats().replays_triggered >= 1);
        // Find where the replay was triggered: timeout is 24 slots.
        // Slots 0..24 are new frames; replay triggers on slot 24's tick;
        // freeze occupies 4 slots (dup of last frame), then replay
        // starts from seq 0.
        let descramble = |bytes: &Vec<u8>| {
            let mut d = bytes.clone();
            Scrambler::trained().apply(&mut d);
            UpstreamFrame::from_bytes(d.as_slice().try_into().unwrap()).unwrap()
        };
        let timeout = 24usize;
        let pre_freeze = descramble(&sent[timeout - 1]);
        for i in 0..4 {
            let dup = descramble(&sent[timeout + i]);
            assert_eq!(dup.seq, pre_freeze.seq, "freeze slot {i} must duplicate");
        }
        let first_replayed = descramble(&sent[timeout + 4]);
        assert_eq!(first_replayed.seq, 0, "replay restarts from oldest unacked");
    }

    #[test]
    fn repeated_errors_eventually_recover() {
        let mut h = host();
        let mut b = buffer();
        let mut down = LinkSegment::new(
            LinkSpeed::Gbps8,
            SimTime::from_ns(1),
            BitErrorInjector::bernoulli(0.05, 7),
        );
        let mut up = LinkSegment::new(
            LinkSpeed::Gbps8,
            SimTime::from_ns(1),
            BitErrorInjector::never(),
        );
        for i in 0..20 {
            h.enqueue(cmd_payload(i % 32, u64::from(i) * 128));
        }
        let (_, to_buf) = run_slots(&mut h, &mut b, &mut down, &mut up, 3000);
        let cmds: Vec<_> = to_buf
            .into_iter()
            .filter(|p| !matches!(p, DownstreamPayload::Idle))
            .collect();
        assert_eq!(
            cmds.len(),
            20,
            "all commands delivered despite 5% frame errors"
        );
        for (i, c) in cmds.iter().enumerate() {
            assert_eq!(
                *c,
                cmd_payload(i as u8 % 32, i as u64 * 128),
                "order preserved"
            );
        }
    }

    #[test]
    fn window_full_stalls_new_payloads() {
        let mut h = host();
        // No receiver: no acks, so the window fills at 48 frames.
        for i in 0..200 {
            h.enqueue(cmd_payload((i % 32) as u8, 0));
        }
        for _ in 0..100 {
            h.tick_tx();
        }
        // backlog drains at most replay_buffer_frames before stalling
        // (plus whatever a replay trigger consumed).
        assert!(h.backlog_len() >= 200 - 48, "backlog {}", h.backlog_len());
    }

    #[test]
    fn seq_reaches_wraps() {
        assert!(seq_reaches(0, 0));
        assert!(seq_reaches(0, 5));
        assert!(!seq_reaches(5, 0));
        assert!(seq_reaches(126, 1)); // wrap-around
        assert!(!seq_reaches(1, 126));
    }

    #[test]
    #[should_panic(expected = "replay buffer must cover")]
    fn config_validation() {
        let cfg = LinkEndpointConfig {
            role: LinkRole::Host,
            replay_buffer_frames: 8,
            ack_timeout_frames: 16,
            replay_switch_delay_frames: 0,
        };
        let _: HostEndpoint = LinkEndpoint::new(cfg);
    }

    #[test]
    fn try_new_returns_typed_config_errors() {
        let undersized = LinkEndpointConfig {
            replay_buffer_frames: 8,
            ack_timeout_frames: 16,
            ..LinkEndpointConfig::host()
        };
        assert_eq!(
            HostEndpoint::try_new(undersized).err(),
            Some(DmiError::Config("replay buffer must cover the ack timeout"))
        );
        let zero_timeout = LinkEndpointConfig {
            ack_timeout_frames: 0,
            ..LinkEndpointConfig::host()
        };
        assert_eq!(
            HostEndpoint::try_new(zero_timeout).err(),
            Some(DmiError::Config("ack timeout must be nonzero"))
        );
        let oversized = LinkEndpointConfig {
            replay_buffer_frames: SEQ_MODULO as usize / 2,
            ..LinkEndpointConfig::host()
        };
        assert_eq!(
            HostEndpoint::try_new(oversized).err(),
            Some(DmiError::Config(
                "replay buffer must stay within half the sequence space"
            ))
        );
        assert!(HostEndpoint::try_new(LinkEndpointConfig::host()).is_ok());
    }

    #[test]
    fn snapshot_restores_endpoint_mid_recovery() {
        // Drive a host endpoint into a messy state: backlog, unacked
        // replay frames, a replay in progress.
        let mut h = host();
        for i in 0..40 {
            h.enqueue(cmd_payload(i % 32, u64::from(i) * 128));
        }
        for _ in 0..30 {
            h.tick_tx(); // no ACKs ever arrive: window fills, replay triggers
        }
        assert!(h.stats().replays_triggered >= 1);

        let mut image = Vec::new();
        h.snapshot_state(&mut image);
        let mut fresh = host();
        fresh
            .restore_state(&mut contutto_sim::SnapReader::new(&image))
            .expect("restore");

        // From here both endpoints must emit byte-identical frames and
        // process ACKs identically.
        for slot in 0..60 {
            assert_eq!(h.tick_tx(), fresh.tick_tx(), "slot {slot}");
        }
        let ack = UpstreamFrame {
            seq: 0,
            ack: Some(3),
            payload: UpstreamPayload::Idle,
        };
        let mut bytes = ack.to_bytes().to_vec();
        crate::scramble::apply_trained(&mut bytes);
        assert_eq!(h.on_receive(&bytes), fresh.on_receive(&bytes));
        assert_eq!(h.stats(), fresh.stats());
        for slot in 0..20 {
            assert_eq!(h.tick_tx(), fresh.tick_tx(), "post-ack slot {slot}");
        }
    }

    #[test]
    fn endpoint_restore_rejects_corrupt_frames() {
        use contutto_sim::RestoreError;
        let mut h = host();
        h.enqueue(cmd_payload(1, 0x80));
        h.tick_tx();
        let mut image = Vec::new();
        h.snapshot_state(&mut image);
        // Flip a byte inside the stored replay frame: the frame CRC
        // catches it at decode time.
        let mut bad = image.clone();
        let n = bad.len();
        bad[n - 60] ^= 0x10;
        let err = host()
            .restore_state(&mut contutto_sim::SnapReader::new(&bad))
            .unwrap_err();
        assert!(
            matches!(
                err,
                RestoreError::Malformed { .. } | RestoreError::Truncated { .. }
            ),
            "got {err:?}"
        );
        // An uncoverable ACK timeout is rejected before anything else.
        let mut zeroed = image;
        zeroed[..8].fill(0);
        assert_eq!(
            host()
                .restore_state(&mut contutto_sim::SnapReader::new(&zeroed))
                .unwrap_err(),
            RestoreError::Malformed {
                context: "link ack timeout"
            }
        );
    }

    #[test]
    fn set_ack_timeout_rejects_uncoverable_values() {
        let mut h = host();
        // 48-frame replay buffer: 47 is the largest coverable timeout.
        h.set_ack_timeout(47).unwrap();
        assert_eq!(
            h.set_ack_timeout(48),
            Err(DmiError::Config("replay buffer must cover the ack timeout"))
        );
        assert_eq!(
            h.set_ack_timeout(0),
            Err(DmiError::Config("ack timeout must be nonzero"))
        );
        // The rejected calls left the previous (valid) timeout in place.
        assert_eq!(h.cfg.ack_timeout_frames, 47);
    }
}
