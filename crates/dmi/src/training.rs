//! Link training and FRTL determination.
//!
//! Paper §2.3: "a Frame Round Trip Latency (FRTL) is calculated during
//! channel initialization, both by the processor and the memory
//! buffer. FRTL is determined by transmission of frames with specific
//! signatures and computing the latency between two such frames. ...
//! The processor, however, has a maximum tolerable FRTL value and the
//! latency through the FPGA must be lower than that."
//!
//! Paper §3.4: "link training often does not complete successfully in
//! a single try" — firmware retries the sequence, power-cycling only
//! the FPGA. [`LinkTrainer`] models the alignment stages with a
//! per-stage lock probability and a retry budget; the FRTL measurement
//! itself is performed with **real probe/echo frames** through the
//! link segments ([`measure_frtl`]).

use contutto_sim::snapshot::{Persist, RestoreError, SnapReader};
use contutto_sim::{Cycles, Frequency, SimRng, SimTime};

use crate::error::DmiError;
use crate::frame::{
    ControlKind, DownstreamFrame, DownstreamPayload, UpstreamFrame, UpstreamPayload,
};
use crate::link::LinkSegment;
use crate::scramble::Scrambler;

/// Hard maximum FRTL tolerated by the POWER8 DMI master, in 2 GHz bus
/// cycles. The real value is proprietary; 400 cycles (200 ns) is chosen
/// so that the optimized ConTutto design fits with margin while the
/// naive FPGA design (clock-crossing FIFO + 4-stage CRC, paper
/// §3.3(ii)) does not.
pub const MAX_FRTL_BUS_CYCLES: u64 = 400;

/// Stages of the link-training sequence (paper §3.3(i): "bit, word and
/// frame-level alignment and link training before any functional loads
/// & stores").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TrainingState {
    /// Per-lane bit alignment (CDR lock on ConTutto's receive side).
    BitAlign,
    /// Word alignment within each lane.
    WordAlign,
    /// Frame boundary alignment across lanes.
    FrameAlign,
    /// Scrambler synchronization.
    ScramblerSync,
    /// FRTL measurement with signature frames.
    FrtlMeasure,
    /// Training complete; functional traffic may flow.
    Done,
}

impl TrainingState {
    fn next(self) -> TrainingState {
        match self {
            TrainingState::BitAlign => TrainingState::WordAlign,
            TrainingState::WordAlign => TrainingState::FrameAlign,
            TrainingState::FrameAlign => TrainingState::ScramblerSync,
            TrainingState::ScramblerSync => TrainingState::FrtlMeasure,
            TrainingState::FrtlMeasure | TrainingState::Done => TrainingState::Done,
        }
    }
}

/// Result of a successful training run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrainingOutcome {
    /// Measured frame round-trip latency.
    pub frtl: SimTime,
    /// FRTL expressed in 2 GHz bus cycles (the unit the processor's
    /// hardware limit is stated in).
    pub frtl_bus_cycles: Cycles,
    /// Training attempts used (≥1).
    pub attempts: u32,
}

impl Persist for TrainingOutcome {
    fn persist(&self, out: &mut Vec<u8>) {
        self.frtl.persist(out);
        self.frtl_bus_cycles.persist(out);
        self.attempts.persist(out);
    }
    fn restore(r: &mut SnapReader<'_>) -> Result<Self, RestoreError> {
        Ok(TrainingOutcome {
            frtl: SimTime::restore(r)?,
            frtl_bus_cycles: Cycles::restore(r)?,
            attempts: r.u32()?,
        })
    }
}

impl Persist for TrainerConfig {
    fn persist(&self, out: &mut Vec<u8>) {
        self.lock_probability.persist(out);
        self.max_attempts.persist(out);
        self.bus.persist(out);
        self.max_frtl_bus_cycles.persist(out);
    }
    fn restore(r: &mut SnapReader<'_>) -> Result<Self, RestoreError> {
        Ok(TrainerConfig {
            lock_probability: r.f64()?,
            max_attempts: r.u32()?,
            bus: Frequency::restore(r)?,
            max_frtl_bus_cycles: r.u64()?,
        })
    }
}

/// Configuration for [`LinkTrainer`].
#[derive(Debug, Clone)]
pub struct TrainerConfig {
    /// Probability that one alignment stage locks on a given attempt.
    /// Real links lock most of the time; the paper's point is only
    /// that *occasional* failure must not require a system reboot.
    pub lock_probability: f64,
    /// Attempts before giving up (firmware retry budget, paper §3.4).
    pub max_attempts: u32,
    /// Bus clock in which the FRTL limit is expressed.
    pub bus: Frequency,
    /// Maximum FRTL the processor tolerates, in bus cycles.
    pub max_frtl_bus_cycles: u64,
}

impl Default for TrainerConfig {
    fn default() -> Self {
        TrainerConfig {
            lock_probability: 0.8,
            max_attempts: 16,
            bus: contutto_sim::time::clocks::POWER_BUS,
            max_frtl_bus_cycles: MAX_FRTL_BUS_CYCLES,
        }
    }
}

impl TrainerConfig {
    /// A configuration whose alignment stages lock with the given
    /// probability and the default retry budget — the knob the fault
    /// campaign's training-flakiness scenarios sweep (paper §3.4:
    /// "link training often does not complete successfully in a
    /// single try").
    ///
    /// # Panics
    ///
    /// Panics if `lock_probability` is not within `0.0..=1.0`.
    pub fn flaky(lock_probability: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&lock_probability),
            "lock probability must be within 0..=1"
        );
        TrainerConfig {
            lock_probability,
            ..TrainerConfig::default()
        }
    }
}

/// Measures FRTL by bouncing a real signature probe frame down the
/// channel and timing the echo, exactly as paper §2.3 describes.
///
/// `buffer_turnaround` is the far-end latency from probe reception to
/// echo transmission (the through-latency of the buffer's PHY + MBI).
///
/// Returns the measured round trip and its value in `bus` cycles.
pub fn measure_frtl(
    down: &mut LinkSegment,
    up: &mut LinkSegment,
    buffer_turnaround: SimTime,
    bus: Frequency,
) -> (SimTime, Cycles) {
    const SIGNATURE: u32 = 0xF17A_C0DE;
    let t0 = SimTime::ZERO;
    let probe = DownstreamFrame {
        seq: 0,
        ack: None,
        payload: DownstreamPayload::Control(ControlKind::FrtlProbe {
            signature: SIGNATURE,
        }),
    };
    let mut bytes = probe.to_bytes().to_vec();
    Scrambler::trained().apply(&mut bytes);
    down.transmit(t0, bytes);

    // Step time forward in frame slots until the probe lands.
    let slot = down.speed().frame_time();
    let mut now = t0;
    let arrival = loop {
        match down.receive(now) {
            Some(rx) => {
                let mut d = rx;
                Scrambler::trained().apply(&mut d);
                let frame =
                    DownstreamFrame::from_bytes(d.as_slice().try_into().expect("frame size"))
                        .expect("clean training channel");
                match frame.payload {
                    DownstreamPayload::Control(ControlKind::FrtlProbe { signature })
                        if signature == SIGNATURE =>
                    {
                        break now;
                    }
                    _ => unreachable!("only the probe is in flight"),
                }
            }
            None => now += slot,
        }
    };

    // Far end echoes after its turnaround latency.
    let echo_tx_time = arrival + buffer_turnaround;
    let echo = UpstreamFrame {
        seq: 0,
        ack: None,
        payload: UpstreamPayload::Control(ControlKind::FrtlEcho {
            signature: SIGNATURE,
        }),
    };
    let mut bytes = echo.to_bytes().to_vec();
    Scrambler::trained().apply(&mut bytes);
    up.transmit(echo_tx_time, bytes);

    let mut now = echo_tx_time;
    let roundtrip_end = loop {
        match up.receive(now) {
            Some(rx) => {
                let mut d = rx;
                Scrambler::trained().apply(&mut d);
                let frame = UpstreamFrame::from_bytes(d.as_slice().try_into().expect("frame size"))
                    .expect("clean training channel");
                match frame.payload {
                    UpstreamPayload::Control(ControlKind::FrtlEcho { signature })
                        if signature == SIGNATURE =>
                    {
                        break now;
                    }
                    _ => unreachable!("only the echo is in flight"),
                }
            }
            None => now += slot,
        }
    };

    let frtl = roundtrip_end - t0;
    (frtl, bus.time_to_cycles_ceil(frtl))
}

/// Drives the training sequence for one channel.
#[derive(Debug)]
pub struct LinkTrainer {
    cfg: TrainerConfig,
    rng: SimRng,
    state: TrainingState,
}

impl LinkTrainer {
    /// Creates a trainer with a deterministic seed.
    pub fn new(cfg: TrainerConfig, seed: u64) -> Self {
        LinkTrainer {
            cfg,
            rng: SimRng::seed_from_u64(seed),
            state: TrainingState::BitAlign,
        }
    }

    /// Current FSM state.
    pub fn state(&self) -> TrainingState {
        self.state
    }

    /// Runs training to completion against a channel whose measured
    /// round trip (probe to echo) is `frtl`.
    ///
    /// # Errors
    ///
    /// * [`DmiError::FrtlExceeded`] if the round trip violates the
    ///   processor's hard limit — retrying cannot help, so this is
    ///   returned immediately (the firmware deconfigures the channel).
    /// * [`DmiError::TrainingFailed`] if alignment never locks within
    ///   the retry budget.
    pub fn train(&mut self, frtl: SimTime) -> Result<TrainingOutcome, DmiError> {
        let frtl_cycles = self.cfg.bus.time_to_cycles_ceil(frtl);
        for attempt in 1..=self.cfg.max_attempts {
            self.state = TrainingState::BitAlign;
            let mut locked = true;
            while self.state != TrainingState::FrtlMeasure {
                if self.rng.gen_bool(self.cfg.lock_probability) {
                    self.state = self.state.next();
                } else {
                    locked = false;
                    break;
                }
            }
            if !locked {
                continue; // firmware retry without bringing the system down
            }
            // FRTL check: a hardware property, independent of retries.
            if frtl_cycles.count() > self.cfg.max_frtl_bus_cycles {
                return Err(DmiError::FrtlExceeded {
                    measured_bus_cycles: frtl_cycles.count(),
                    max_bus_cycles: self.cfg.max_frtl_bus_cycles,
                });
            }
            self.state = TrainingState::Done;
            return Ok(TrainingOutcome {
                frtl,
                frtl_bus_cycles: frtl_cycles,
                attempts: attempt,
            });
        }
        Err(DmiError::TrainingFailed {
            attempts: self.cfg.max_attempts,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::{BitErrorInjector, LinkSpeed};

    fn segments() -> (LinkSegment, LinkSegment) {
        (
            LinkSegment::new(
                LinkSpeed::Gbps8,
                SimTime::from_ns(1),
                BitErrorInjector::never(),
            ),
            LinkSegment::new(
                LinkSpeed::Gbps8,
                SimTime::from_ns(1),
                BitErrorInjector::never(),
            ),
        )
    }

    #[test]
    fn frtl_measurement_accounts_for_wire_and_turnaround() {
        let (mut down, mut up) = segments();
        let turnaround = SimTime::from_ns(50);
        let (frtl, cycles) = measure_frtl(&mut down, &mut up, turnaround, Frequency::from_ghz(2));
        // Round trip >= 2 x (1 ns wire + 2 ns frame) + 50 ns turnaround.
        assert!(frtl >= SimTime::from_ns(56), "frtl = {frtl}");
        assert!(frtl <= SimTime::from_ns(60), "frtl = {frtl}");
        assert_eq!(cycles, Frequency::from_ghz(2).time_to_cycles_ceil(frtl));
    }

    #[test]
    fn frtl_scales_with_turnaround() {
        let (mut d1, mut u1) = segments();
        let (mut d2, mut u2) = segments();
        let bus = Frequency::from_ghz(2);
        let (fast, _) = measure_frtl(&mut d1, &mut u1, SimTime::from_ns(20), bus);
        let (slow, _) = measure_frtl(&mut d2, &mut u2, SimTime::from_ns(120), bus);
        let delta = slow - fast;
        // The difference is the turnaround difference, up to frame-slot
        // quantization (2 ns slots).
        assert!(
            delta >= SimTime::from_ns(98) && delta <= SimTime::from_ns(102),
            "delta {delta}"
        );
    }

    #[test]
    fn training_succeeds_within_budget() {
        let mut tr = LinkTrainer::new(TrainerConfig::default(), 3);
        let outcome = tr.train(SimTime::from_ns(120)).unwrap();
        assert!(outcome.attempts >= 1);
        assert_eq!(tr.state(), TrainingState::Done);
        assert_eq!(outcome.frtl_bus_cycles, Cycles(240));
    }

    #[test]
    fn training_retries_on_lock_failures() {
        // Low lock probability: with 4 stages at p=0.3, a single attempt
        // succeeds ~0.8% of the time, so retries are certain to occur.
        let cfg = TrainerConfig {
            lock_probability: 0.3,
            max_attempts: 4096,
            ..TrainerConfig::default()
        };
        let mut tr = LinkTrainer::new(cfg, 1);
        let outcome = tr.train(SimTime::from_ns(100)).unwrap();
        assert!(
            outcome.attempts > 1,
            "expected retries, got {}",
            outcome.attempts
        );
    }

    #[test]
    fn flaky_config_sets_lock_probability_only() {
        let cfg = TrainerConfig::flaky(0.25);
        let defaults = TrainerConfig::default();
        assert!((cfg.lock_probability - 0.25).abs() < f64::EPSILON);
        assert_eq!(cfg.max_attempts, defaults.max_attempts);
        assert_eq!(cfg.max_frtl_bus_cycles, defaults.max_frtl_bus_cycles);
    }

    #[test]
    #[should_panic(expected = "lock probability")]
    fn flaky_rejects_out_of_range() {
        let _ = TrainerConfig::flaky(1.5);
    }

    #[test]
    fn training_fails_after_budget() {
        let cfg = TrainerConfig {
            lock_probability: 0.0,
            max_attempts: 5,
            ..TrainerConfig::default()
        };
        let mut tr = LinkTrainer::new(cfg, 1);
        assert_eq!(
            tr.train(SimTime::from_ns(100)),
            Err(DmiError::TrainingFailed { attempts: 5 })
        );
    }

    #[test]
    fn frtl_over_limit_is_fatal_not_retried() {
        let mut tr = LinkTrainer::new(TrainerConfig::default(), 9);
        // 400 bus cycles at 2 GHz = 200 ns; 250 ns must fail.
        let err = tr.train(SimTime::from_ns(250)).unwrap_err();
        assert!(matches!(
            err,
            DmiError::FrtlExceeded {
                measured_bus_cycles: 500,
                max_bus_cycles: 400
            }
        ));
    }

    #[test]
    fn frtl_exactly_at_limit_passes() {
        let mut tr = LinkTrainer::new(TrainerConfig::default(), 9);
        let outcome = tr.train(SimTime::from_ns(200)).unwrap();
        assert_eq!(outcome.frtl_bus_cycles, Cycles(400));
    }

    #[test]
    fn state_progression() {
        assert_eq!(TrainingState::BitAlign.next(), TrainingState::WordAlign);
        assert_eq!(
            TrainingState::ScramblerSync.next(),
            TrainingState::FrtlMeasure
        );
        assert_eq!(TrainingState::Done.next(), TrainingState::Done);
    }
}
