//! DMI frame formats.
//!
//! Paper §2.2: "Commands and memory store data are interspersed within
//! synchronous packets, four of which constitute a frame. Owing to the
//! difference in the number of upstream and downstream signals, the
//! upstream and downstream frames use different formats."
//!
//! We model one frame as the unit of transmission:
//!
//! * **Downstream** (processor → buffer): 14 lanes × 16 UI = 224 bits =
//!   28 bytes. Layout: `seq(1) ack(1) kind(1) payload(23) crc(2)`.
//!   A 128 B write is one command frame plus eight 16-byte data beats.
//! * **Upstream** (buffer → processor): 21 lanes × 16 UI = 336 bits =
//!   42 bytes. Layout: `seq(1) ack(1) kind(1) payload(37) crc(2)`.
//!   A 128 B read response is four 32-byte data beats; *done* frames
//!   can carry completions for up to two tags (paper §3.3(iii): "the
//!   two upstream frames may contain completion notification from two
//!   separate command engines").
//!
//! Every frame serializes to real bytes; the CRC is computed over all
//! bytes preceding it. The `ack` byte embeds the ACK for the opposite
//! direction (paper §2.3): `0x80 | seq` acknowledges `seq`, `0x00`
//! carries no ACK.

use contutto_sim::snapshot::{Persist, RestoreError, SnapReader};

use crate::command::{CacheLine, CommandOp, RmwOp, Tag};
use crate::crc::crc16;
use crate::error::DmiError;

/// Serialized size of a downstream frame in bytes.
pub const DOWNSTREAM_FRAME_BYTES: usize = 28;
/// Serialized size of an upstream frame in bytes.
pub const UPSTREAM_FRAME_BYTES: usize = 42;
/// Write-data beat size carried by one downstream frame.
pub const DOWNSTREAM_BEAT_BYTES: usize = 16;
/// Number of downstream data beats per 128 B line.
pub const DOWNSTREAM_BEATS_PER_LINE: usize = 8;
/// Read-data beat size carried by one upstream frame.
pub const UPSTREAM_BEAT_BYTES: usize = 32;
/// Number of upstream data beats per 128 B line.
pub const UPSTREAM_BEATS_PER_LINE: usize = 4;

/// Sequence IDs are 7 bits and wrap (top bit of the ack byte is the
/// valid flag).
pub const SEQ_MODULO: u8 = 128;

/// Control content usable in either direction, for link bring-up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ControlKind {
    /// Training pattern for bit/word/frame alignment; the stage is
    /// echoed back so the trainer can verify lock.
    TrainingPattern {
        /// Which alignment stage this pattern exercises.
        stage: u8,
        /// Pattern payload checked by the receiver.
        value: u32,
    },
    /// FRTL probe with a distinctive signature (paper §2.3: "FRTL is
    /// determined by transmission of frames with specific signatures").
    FrtlProbe {
        /// Signature echoed back by the far end.
        signature: u32,
    },
    /// Echo of an FRTL probe.
    FrtlEcho {
        /// The signature from the probe being echoed.
        signature: u32,
    },
}

/// Payload of a downstream (processor → buffer) frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DownstreamPayload {
    /// No command this frame slot (the link always runs).
    Idle,
    /// A command header.
    Command {
        /// Tag of the command.
        tag: Tag,
        /// The operation (write/RMW data follows in later beats).
        header: CommandHeader,
    },
    /// One 16-byte beat of write data for an in-flight tag.
    WriteData {
        /// Tag of the write/RMW this beat belongs to.
        tag: Tag,
        /// Beat index (0..8).
        beat: u8,
        /// The 16 data bytes.
        data: [u8; DOWNSTREAM_BEAT_BYTES],
    },
    /// Link-control content.
    Control(ControlKind),
}

/// The address/op part of a command frame (the data, for writes,
/// arrives in separate beats).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommandHeader {
    /// Full-line read.
    Read {
        /// Line-aligned address.
        addr: u64,
    },
    /// Full-line write; 8 data beats follow.
    Write {
        /// Line-aligned address.
        addr: u64,
    },
    /// Read-modify-write; 8 data beats follow.
    Rmw {
        /// Line-aligned address.
        addr: u64,
        /// Merge operation.
        op: RmwOp,
    },
    /// Flush (ConTutto extension).
    Flush,
}

impl CommandHeader {
    /// Builds the header (without data) for a [`CommandOp`].
    pub fn from_op(op: &CommandOp) -> CommandHeader {
        match op {
            CommandOp::Read { addr } => CommandHeader::Read { addr: *addr },
            CommandOp::Write { addr, .. } => CommandHeader::Write { addr: *addr },
            CommandOp::Rmw { addr, op, .. } => CommandHeader::Rmw {
                addr: *addr,
                op: *op,
            },
            CommandOp::Flush => CommandHeader::Flush,
        }
    }

    /// Whether write-data beats follow this header.
    pub fn expects_data(&self) -> bool {
        matches!(
            self,
            CommandHeader::Write { .. } | CommandHeader::Rmw { .. }
        )
    }
}

/// A downstream frame ready for (de)serialization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DownstreamFrame {
    /// 7-bit sequence ID.
    pub seq: u8,
    /// ACK for the opposite direction, if any.
    pub ack: Option<u8>,
    /// The payload.
    pub payload: DownstreamPayload,
}

/// Payload of an upstream (buffer → processor) frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UpstreamPayload {
    /// Nothing to report this slot.
    Idle,
    /// One 32-byte beat of read data.
    ReadData {
        /// Tag of the originating read.
        tag: Tag,
        /// Beat index (0..4).
        beat: u8,
        /// The 32 data bytes.
        data: [u8; UPSTREAM_BEAT_BYTES],
        /// Media ECC found the line uncorrectable; the data rides the
        /// frame but must not be consumed (poison bit, CRC-covered).
        poison: bool,
    },
    /// Completion notifications for one or two tags.
    Done {
        /// First completed tag.
        first: Tag,
        /// Optional second completed tag (two command engines may
        /// complete in the same cycle).
        second: Option<Tag>,
    },
    /// Link-control content.
    Control(ControlKind),
}

/// An upstream frame ready for (de)serialization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UpstreamFrame {
    /// 7-bit sequence ID.
    pub seq: u8,
    /// ACK for the opposite direction, if any.
    pub ack: Option<u8>,
    /// The payload.
    pub payload: UpstreamPayload,
}

fn ack_byte(ack: Option<u8>) -> u8 {
    match ack {
        Some(seq) => 0x80 | (seq % SEQ_MODULO),
        None => 0,
    }
}

fn parse_ack(byte: u8) -> Option<u8> {
    if byte & 0x80 != 0 {
        Some(byte & 0x7F)
    } else {
        None
    }
}

fn encode_control(kind: ControlKind, out: &mut [u8]) {
    match kind {
        ControlKind::TrainingPattern { stage, value } => {
            out[0] = 1;
            out[1] = stage;
            out[2..6].copy_from_slice(&value.to_le_bytes());
        }
        ControlKind::FrtlProbe { signature } => {
            out[0] = 2;
            out[1..5].copy_from_slice(&signature.to_le_bytes());
        }
        ControlKind::FrtlEcho { signature } => {
            out[0] = 3;
            out[1..5].copy_from_slice(&signature.to_le_bytes());
        }
    }
}

fn decode_control(bytes: &[u8]) -> Result<ControlKind, DmiError> {
    match bytes[0] {
        1 => Ok(ControlKind::TrainingPattern {
            stage: bytes[1],
            value: u32::from_le_bytes(bytes[2..6].try_into().expect("4 bytes")),
        }),
        2 => Ok(ControlKind::FrtlProbe {
            signature: u32::from_le_bytes(bytes[1..5].try_into().expect("4 bytes")),
        }),
        3 => Ok(ControlKind::FrtlEcho {
            signature: u32::from_le_bytes(bytes[1..5].try_into().expect("4 bytes")),
        }),
        _ => Err(DmiError::MalformedFrame("unknown control kind")),
    }
}

impl DownstreamFrame {
    /// Serializes the frame to its 28-byte wire format, computing the
    /// CRC over the first 26 bytes.
    pub fn to_bytes(&self) -> [u8; DOWNSTREAM_FRAME_BYTES] {
        let mut out = [0u8; DOWNSTREAM_FRAME_BYTES];
        out[0] = self.seq % SEQ_MODULO;
        out[1] = ack_byte(self.ack);
        let body = &mut out[2..26];
        match &self.payload {
            DownstreamPayload::Idle => {
                body[0] = 0;
            }
            DownstreamPayload::Command { tag, header } => {
                body[0] = 1;
                body[1] = tag.raw();
                match header {
                    CommandHeader::Read { addr } => {
                        body[2] = 0;
                        body[3..11].copy_from_slice(&addr.to_le_bytes());
                    }
                    CommandHeader::Write { addr } => {
                        body[2] = 1;
                        body[3..11].copy_from_slice(&addr.to_le_bytes());
                    }
                    CommandHeader::Rmw { addr, op } => {
                        body[2] = 2;
                        body[3..11].copy_from_slice(&addr.to_le_bytes());
                        let (code, arg) = match op {
                            RmwOp::PartialWrite { sector_mask } => (0u8, *sector_mask),
                            RmwOp::AtomicAdd => (1, 0),
                            RmwOp::MinStore => (2, 0),
                            RmwOp::MaxStore => (3, 0),
                            RmwOp::ConditionalSwap => (4, 0),
                        };
                        body[11] = code;
                        body[12] = arg;
                    }
                    CommandHeader::Flush => {
                        body[2] = 3;
                    }
                }
            }
            DownstreamPayload::WriteData { tag, beat, data } => {
                body[0] = 2;
                body[1] = tag.raw();
                body[2] = *beat;
                body[3..19].copy_from_slice(data);
            }
            DownstreamPayload::Control(kind) => {
                body[0] = 3;
                encode_control(*kind, &mut body[1..]);
            }
        }
        let crc = crc16(&out[..26]);
        out[26..28].copy_from_slice(&crc.to_le_bytes());
        out
    }

    /// Parses a frame from its wire format, verifying the CRC.
    ///
    /// # Errors
    ///
    /// [`DmiError::CrcMismatch`] on CRC failure,
    /// [`DmiError::MalformedFrame`] on undecodable content.
    pub fn from_bytes(bytes: &[u8; DOWNSTREAM_FRAME_BYTES]) -> Result<Self, DmiError> {
        let crc = u16::from_le_bytes(bytes[26..28].try_into().expect("2 bytes"));
        if crc != crc16(&bytes[..26]) {
            return Err(DmiError::CrcMismatch {
                claimed_seq: bytes[0] & 0x7F,
            });
        }
        let seq = bytes[0] & 0x7F;
        let ack = parse_ack(bytes[1]);
        let body = &bytes[2..26];
        let payload = match body[0] {
            0 => DownstreamPayload::Idle,
            1 => {
                let tag = Tag::new(body[1])?;
                let addr = u64::from_le_bytes(body[3..11].try_into().expect("8 bytes"));
                let header = match body[2] {
                    0 => CommandHeader::Read { addr },
                    1 => CommandHeader::Write { addr },
                    2 => {
                        let op = match body[11] {
                            0 => RmwOp::PartialWrite {
                                sector_mask: body[12],
                            },
                            1 => RmwOp::AtomicAdd,
                            2 => RmwOp::MinStore,
                            3 => RmwOp::MaxStore,
                            4 => RmwOp::ConditionalSwap,
                            _ => return Err(DmiError::MalformedFrame("unknown rmw op")),
                        };
                        CommandHeader::Rmw { addr, op }
                    }
                    3 => CommandHeader::Flush,
                    _ => return Err(DmiError::MalformedFrame("unknown command kind")),
                };
                DownstreamPayload::Command { tag, header }
            }
            2 => {
                let tag = Tag::new(body[1])?;
                let beat = body[2];
                if beat as usize >= DOWNSTREAM_BEATS_PER_LINE {
                    return Err(DmiError::MalformedFrame("downstream beat out of range"));
                }
                let mut data = [0u8; DOWNSTREAM_BEAT_BYTES];
                data.copy_from_slice(&body[3..19]);
                DownstreamPayload::WriteData { tag, beat, data }
            }
            3 => DownstreamPayload::Control(decode_control(&body[1..])?),
            _ => return Err(DmiError::MalformedFrame("unknown downstream payload")),
        };
        Ok(DownstreamFrame { seq, ack, payload })
    }
}

impl UpstreamFrame {
    /// Serializes the frame to its 42-byte wire format, computing the
    /// CRC over the first 40 bytes.
    pub fn to_bytes(&self) -> [u8; UPSTREAM_FRAME_BYTES] {
        let mut out = [0u8; UPSTREAM_FRAME_BYTES];
        out[0] = self.seq % SEQ_MODULO;
        out[1] = ack_byte(self.ack);
        let body = &mut out[2..40];
        match &self.payload {
            UpstreamPayload::Idle => {
                body[0] = 0;
            }
            UpstreamPayload::ReadData {
                tag,
                beat,
                data,
                poison,
            } => {
                body[0] = 1;
                body[1] = tag.raw();
                body[2] = *beat;
                body[3..35].copy_from_slice(data);
                body[35] = u8::from(*poison);
            }
            UpstreamPayload::Done { first, second } => {
                body[0] = 2;
                body[1] = first.raw();
                match second {
                    Some(t) => {
                        body[2] = 1;
                        body[3] = t.raw();
                    }
                    None => {
                        body[2] = 0;
                    }
                }
            }
            UpstreamPayload::Control(kind) => {
                body[0] = 3;
                encode_control(*kind, &mut body[1..]);
            }
        }
        let crc = crc16(&out[..40]);
        out[40..42].copy_from_slice(&crc.to_le_bytes());
        out
    }

    /// Parses a frame from its wire format, verifying the CRC.
    ///
    /// # Errors
    ///
    /// [`DmiError::CrcMismatch`] on CRC failure,
    /// [`DmiError::MalformedFrame`] on undecodable content.
    pub fn from_bytes(bytes: &[u8; UPSTREAM_FRAME_BYTES]) -> Result<Self, DmiError> {
        let crc = u16::from_le_bytes(bytes[40..42].try_into().expect("2 bytes"));
        if crc != crc16(&bytes[..40]) {
            return Err(DmiError::CrcMismatch {
                claimed_seq: bytes[0] & 0x7F,
            });
        }
        let seq = bytes[0] & 0x7F;
        let ack = parse_ack(bytes[1]);
        let body = &bytes[2..40];
        let payload = match body[0] {
            0 => UpstreamPayload::Idle,
            1 => {
                let tag = Tag::new(body[1])?;
                let beat = body[2];
                if beat as usize >= UPSTREAM_BEATS_PER_LINE {
                    return Err(DmiError::MalformedFrame("upstream beat out of range"));
                }
                let mut data = [0u8; UPSTREAM_BEAT_BYTES];
                data.copy_from_slice(&body[3..35]);
                let poison = body[35] != 0;
                UpstreamPayload::ReadData {
                    tag,
                    beat,
                    data,
                    poison,
                }
            }
            2 => {
                let first = Tag::new(body[1])?;
                let second = match body[2] {
                    0 => None,
                    1 => Some(Tag::new(body[3])?),
                    // The flag is a single bit on the wire; anything
                    // else is a decode error, not a missing second tag.
                    _ => return Err(DmiError::MalformedFrame("done second-tag flag")),
                };
                UpstreamPayload::Done { first, second }
            }
            3 => UpstreamPayload::Control(decode_control(&body[1..])?),
            _ => return Err(DmiError::MalformedFrame("unknown upstream payload")),
        };
        Ok(UpstreamFrame { seq, ack, payload })
    }
}

/// Splits a cache line into eight downstream write-data beats.
pub fn line_to_downstream_beats(tag: Tag, line: &CacheLine) -> Vec<DownstreamPayload> {
    (0..DOWNSTREAM_BEATS_PER_LINE)
        .map(|beat| {
            let mut data = [0u8; DOWNSTREAM_BEAT_BYTES];
            data.copy_from_slice(
                &line.0[beat * DOWNSTREAM_BEAT_BYTES..(beat + 1) * DOWNSTREAM_BEAT_BYTES],
            );
            DownstreamPayload::WriteData {
                tag,
                beat: beat as u8,
                data,
            }
        })
        .collect()
}

/// Splits a cache line into four upstream read-data beats. `poison`
/// marks every beat when the media flagged the line uncorrectable.
pub fn line_to_upstream_beats(tag: Tag, line: &CacheLine, poison: bool) -> Vec<UpstreamPayload> {
    (0..UPSTREAM_BEATS_PER_LINE)
        .map(|beat| {
            let mut data = [0u8; UPSTREAM_BEAT_BYTES];
            data.copy_from_slice(
                &line.0[beat * UPSTREAM_BEAT_BYTES..(beat + 1) * UPSTREAM_BEAT_BYTES],
            );
            UpstreamPayload::ReadData {
                tag,
                beat: beat as u8,
                data,
                poison,
            }
        })
        .collect()
}

/// Accumulates data beats back into a cache line, tracking which beats
/// have arrived (beats for different tags may interleave, paper
/// §3.3(iii)).
#[derive(Debug, Clone)]
pub struct LineAssembler {
    line: CacheLine,
    beats_seen: u16,
    beats_expected: u16,
    beat_bytes: usize,
}

impl LineAssembler {
    /// Assembler for downstream (8 × 16 B) beats.
    pub fn downstream() -> Self {
        LineAssembler {
            line: CacheLine::ZERO,
            beats_seen: 0,
            beats_expected: (1 << DOWNSTREAM_BEATS_PER_LINE) - 1,
            beat_bytes: DOWNSTREAM_BEAT_BYTES,
        }
    }

    /// Assembler for upstream (4 × 32 B) beats.
    pub fn upstream() -> Self {
        LineAssembler {
            line: CacheLine::ZERO,
            beats_seen: 0,
            beats_expected: (1 << UPSTREAM_BEATS_PER_LINE) - 1,
            beat_bytes: UPSTREAM_BEAT_BYTES,
        }
    }

    /// Adds one beat. Returns `true` once the line is complete.
    ///
    /// # Panics
    ///
    /// Panics if the beat index is out of range or `data` has the
    /// wrong length for this direction. Beats handed over from a
    /// decoded frame are already range-checked; use
    /// [`LineAssembler::try_add_beat`] for data of wire/replay
    /// provenance that has not been through the frame decoder.
    pub fn add_beat(&mut self, beat: u8, data: &[u8]) -> bool {
        self.try_add_beat(beat, data)
            .expect("beat index/size validated by the frame decoder")
    }

    /// Fallible [`LineAssembler::add_beat`]: rejects out-of-range beat
    /// indices and wrong-sized data as [`DmiError::MalformedFrame`]
    /// instead of panicking, so consumers fed from the wire or a
    /// replay buffer can drop a malformed beat loudly rather than
    /// bring the whole simulation down.
    ///
    /// # Errors
    ///
    /// [`DmiError::MalformedFrame`] when `beat` exceeds this
    /// direction's beat count or `data` is not one beat long.
    pub fn try_add_beat(&mut self, beat: u8, data: &[u8]) -> Result<bool, DmiError> {
        if data.len() != self.beat_bytes {
            return Err(DmiError::MalformedFrame("wrong beat size"));
        }
        let start = beat as usize * self.beat_bytes;
        let Some(slot) = self.line.0.get_mut(start..start + self.beat_bytes) else {
            return Err(DmiError::MalformedFrame("beat index out of range"));
        };
        slot.copy_from_slice(data);
        self.beats_seen |= 1 << beat;
        Ok(self.is_complete())
    }

    /// Whether all beats have arrived.
    pub fn is_complete(&self) -> bool {
        self.beats_seen == self.beats_expected
    }

    /// Takes the assembled line.
    ///
    /// # Panics
    ///
    /// Panics if the line is not complete.
    pub fn into_line(self) -> CacheLine {
        assert!(self.is_complete(), "line not complete");
        self.line
    }

    /// Fallible [`LineAssembler::into_line`]: a line with missing
    /// beats (a write abandoned mid-burst when the power failed, or
    /// beats lost to a retrain) comes back as a typed error.
    ///
    /// # Errors
    ///
    /// [`DmiError::MalformedFrame`] when beats are missing.
    pub fn try_into_line(self) -> Result<CacheLine, DmiError> {
        if !self.is_complete() {
            return Err(DmiError::MalformedFrame("line incomplete"));
        }
        Ok(self.line)
    }
}

impl Persist for LineAssembler {
    fn persist(&self, out: &mut Vec<u8>) {
        self.line.persist(out);
        self.beats_seen.persist(out);
        self.beats_expected.persist(out);
        self.beat_bytes.persist(out);
    }
    fn restore(r: &mut SnapReader<'_>) -> Result<Self, RestoreError> {
        let line = CacheLine::restore(r)?;
        let beats_seen = r.u16()?;
        let beats_expected = r.u16()?;
        let beat_bytes = usize::restore(r)?;
        let valid_shape = (beat_bytes == DOWNSTREAM_BEAT_BYTES
            && beats_expected == (1 << DOWNSTREAM_BEATS_PER_LINE) - 1)
            || (beat_bytes == UPSTREAM_BEAT_BYTES
                && beats_expected == (1 << UPSTREAM_BEATS_PER_LINE) - 1);
        if !valid_shape || beats_seen & !beats_expected != 0 {
            return Err(RestoreError::Malformed {
                context: "line assembler shape",
            });
        }
        Ok(LineAssembler {
            line,
            beats_seen,
            beats_expected,
            beat_bytes,
        })
    }
}

impl Persist for ControlKind {
    fn persist(&self, out: &mut Vec<u8>) {
        match self {
            ControlKind::TrainingPattern { stage, value } => {
                0u8.persist(out);
                stage.persist(out);
                value.persist(out);
            }
            ControlKind::FrtlProbe { signature } => {
                1u8.persist(out);
                signature.persist(out);
            }
            ControlKind::FrtlEcho { signature } => {
                2u8.persist(out);
                signature.persist(out);
            }
        }
    }
    fn restore(r: &mut SnapReader<'_>) -> Result<Self, RestoreError> {
        match r.u8()? {
            0 => Ok(ControlKind::TrainingPattern {
                stage: r.u8()?,
                value: r.u32()?,
            }),
            1 => Ok(ControlKind::FrtlProbe {
                signature: r.u32()?,
            }),
            2 => Ok(ControlKind::FrtlEcho {
                signature: r.u32()?,
            }),
            _ => Err(RestoreError::Malformed {
                context: "ControlKind discriminant",
            }),
        }
    }
}

impl Persist for CommandHeader {
    fn persist(&self, out: &mut Vec<u8>) {
        match self {
            CommandHeader::Read { addr } => {
                0u8.persist(out);
                addr.persist(out);
            }
            CommandHeader::Write { addr } => {
                1u8.persist(out);
                addr.persist(out);
            }
            CommandHeader::Rmw { addr, op } => {
                2u8.persist(out);
                addr.persist(out);
                op.persist(out);
            }
            CommandHeader::Flush => 3u8.persist(out),
        }
    }
    fn restore(r: &mut SnapReader<'_>) -> Result<Self, RestoreError> {
        match r.u8()? {
            0 => Ok(CommandHeader::Read { addr: r.u64()? }),
            1 => Ok(CommandHeader::Write { addr: r.u64()? }),
            2 => Ok(CommandHeader::Rmw {
                addr: r.u64()?,
                op: RmwOp::restore(r)?,
            }),
            3 => Ok(CommandHeader::Flush),
            _ => Err(RestoreError::Malformed {
                context: "CommandHeader discriminant",
            }),
        }
    }
}

impl Persist for DownstreamPayload {
    fn persist(&self, out: &mut Vec<u8>) {
        match self {
            DownstreamPayload::Idle => 0u8.persist(out),
            DownstreamPayload::Command { tag, header } => {
                1u8.persist(out);
                tag.persist(out);
                header.persist(out);
            }
            DownstreamPayload::WriteData { tag, beat, data } => {
                2u8.persist(out);
                tag.persist(out);
                beat.persist(out);
                data.persist(out);
            }
            DownstreamPayload::Control(kind) => {
                3u8.persist(out);
                kind.persist(out);
            }
        }
    }
    fn restore(r: &mut SnapReader<'_>) -> Result<Self, RestoreError> {
        match r.u8()? {
            0 => Ok(DownstreamPayload::Idle),
            1 => Ok(DownstreamPayload::Command {
                tag: Tag::restore(r)?,
                header: CommandHeader::restore(r)?,
            }),
            2 => {
                let tag = Tag::restore(r)?;
                let beat = r.u8()?;
                if usize::from(beat) >= DOWNSTREAM_BEATS_PER_LINE {
                    return Err(RestoreError::Malformed {
                        context: "downstream beat index",
                    });
                }
                Ok(DownstreamPayload::WriteData {
                    tag,
                    beat,
                    data: <[u8; DOWNSTREAM_BEAT_BYTES]>::restore(r)?,
                })
            }
            3 => Ok(DownstreamPayload::Control(ControlKind::restore(r)?)),
            _ => Err(RestoreError::Malformed {
                context: "DownstreamPayload discriminant",
            }),
        }
    }
}

impl Persist for UpstreamPayload {
    fn persist(&self, out: &mut Vec<u8>) {
        match self {
            UpstreamPayload::Idle => 0u8.persist(out),
            UpstreamPayload::ReadData {
                tag,
                beat,
                data,
                poison,
            } => {
                1u8.persist(out);
                tag.persist(out);
                beat.persist(out);
                data.persist(out);
                poison.persist(out);
            }
            UpstreamPayload::Done { first, second } => {
                2u8.persist(out);
                first.persist(out);
                second.persist(out);
            }
            UpstreamPayload::Control(kind) => {
                3u8.persist(out);
                kind.persist(out);
            }
        }
    }
    fn restore(r: &mut SnapReader<'_>) -> Result<Self, RestoreError> {
        match r.u8()? {
            0 => Ok(UpstreamPayload::Idle),
            1 => {
                let tag = Tag::restore(r)?;
                let beat = r.u8()?;
                if usize::from(beat) >= UPSTREAM_BEATS_PER_LINE {
                    return Err(RestoreError::Malformed {
                        context: "upstream beat index",
                    });
                }
                Ok(UpstreamPayload::ReadData {
                    tag,
                    beat,
                    data: <[u8; UPSTREAM_BEAT_BYTES]>::restore(r)?,
                    poison: r.bool()?,
                })
            }
            2 => Ok(UpstreamPayload::Done {
                first: Tag::restore(r)?,
                second: Option::restore(r)?,
            }),
            3 => Ok(UpstreamPayload::Control(ControlKind::restore(r)?)),
            _ => Err(RestoreError::Malformed {
                context: "UpstreamPayload discriminant",
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::command::CACHE_LINE_BYTES;

    fn t(n: u8) -> Tag {
        Tag::new(n).unwrap()
    }

    #[test]
    fn downstream_roundtrip_all_kinds() {
        let frames = vec![
            DownstreamFrame {
                seq: 5,
                ack: Some(3),
                payload: DownstreamPayload::Idle,
            },
            DownstreamFrame {
                seq: 127,
                ack: None,
                payload: DownstreamPayload::Command {
                    tag: t(7),
                    header: CommandHeader::Read { addr: 0x1234_5680 },
                },
            },
            DownstreamFrame {
                seq: 0,
                ack: Some(127),
                payload: DownstreamPayload::Command {
                    tag: t(31),
                    header: CommandHeader::Rmw {
                        addr: 0x80,
                        op: RmwOp::PartialWrite { sector_mask: 0xA5 },
                    },
                },
            },
            DownstreamFrame {
                seq: 1,
                ack: None,
                payload: DownstreamPayload::WriteData {
                    tag: t(2),
                    beat: 7,
                    data: [0xAB; 16],
                },
            },
            DownstreamFrame {
                seq: 2,
                ack: None,
                payload: DownstreamPayload::Control(ControlKind::FrtlProbe {
                    signature: 0xDEAD_BEEF,
                }),
            },
            DownstreamFrame {
                seq: 3,
                ack: None,
                payload: DownstreamPayload::Command {
                    tag: t(0),
                    header: CommandHeader::Flush,
                },
            },
        ];
        for f in frames {
            let bytes = f.to_bytes();
            let back = DownstreamFrame::from_bytes(&bytes).unwrap();
            assert_eq!(back, f);
        }
    }

    #[test]
    fn upstream_roundtrip_all_kinds() {
        let frames = vec![
            UpstreamFrame {
                seq: 9,
                ack: Some(8),
                payload: UpstreamPayload::Idle,
            },
            UpstreamFrame {
                seq: 10,
                ack: None,
                payload: UpstreamPayload::ReadData {
                    tag: t(4),
                    beat: 3,
                    data: [0x5A; 32],
                    poison: false,
                },
            },
            UpstreamFrame {
                seq: 14,
                ack: None,
                payload: UpstreamPayload::ReadData {
                    tag: t(5),
                    beat: 0,
                    data: [0xEE; 32],
                    poison: true,
                },
            },
            UpstreamFrame {
                seq: 11,
                ack: Some(0),
                payload: UpstreamPayload::Done {
                    first: t(1),
                    second: Some(t(30)),
                },
            },
            UpstreamFrame {
                seq: 12,
                ack: None,
                payload: UpstreamPayload::Done {
                    first: t(1),
                    second: None,
                },
            },
            UpstreamFrame {
                seq: 13,
                ack: None,
                payload: UpstreamPayload::Control(ControlKind::TrainingPattern {
                    stage: 2,
                    value: 0x0F0F_0F0F,
                }),
            },
        ];
        for f in frames {
            let bytes = f.to_bytes();
            let back = UpstreamFrame::from_bytes(&bytes).unwrap();
            assert_eq!(back, f);
        }
    }

    #[test]
    fn corrupted_frame_fails_crc() {
        let f = DownstreamFrame {
            seq: 5,
            ack: None,
            payload: DownstreamPayload::Idle,
        };
        let mut bytes = f.to_bytes();
        bytes[10] ^= 0x40;
        assert!(matches!(
            DownstreamFrame::from_bytes(&bytes),
            Err(DmiError::CrcMismatch { claimed_seq: 5 })
        ));
    }

    #[test]
    fn corrupted_upstream_fails_crc() {
        let f = UpstreamFrame {
            seq: 64,
            ack: None,
            payload: UpstreamPayload::Idle,
        };
        let mut bytes = f.to_bytes();
        bytes[41] ^= 0x01; // even CRC corruption is caught
        assert!(DownstreamFrame::from_bytes(&bytes[..28].try_into().unwrap()).is_err());
        assert!(UpstreamFrame::from_bytes(&bytes).is_err());
    }

    #[test]
    fn seq_wraps_to_seven_bits() {
        let f = DownstreamFrame {
            seq: 200, // > 127, wraps on serialization
            ack: Some(130),
            payload: DownstreamPayload::Idle,
        };
        let back = DownstreamFrame::from_bytes(&f.to_bytes()).unwrap();
        assert_eq!(back.seq, 200 % SEQ_MODULO);
        assert_eq!(back.ack, Some(130 % SEQ_MODULO));
    }

    #[test]
    fn line_splitting_and_reassembly_downstream() {
        let line = CacheLine::patterned(77);
        let beats = line_to_downstream_beats(t(6), &line);
        assert_eq!(beats.len(), 8);
        let mut asm = LineAssembler::downstream();
        // deliver out of order — interleaving is allowed
        for idx in [3usize, 0, 7, 1, 2, 6, 5] {
            if let DownstreamPayload::WriteData { beat, data, .. } = &beats[idx] {
                assert!(!asm.add_beat(*beat, data));
            }
        }
        if let DownstreamPayload::WriteData { beat, data, .. } = &beats[4] {
            assert!(asm.add_beat(*beat, data));
        }
        assert_eq!(asm.into_line(), line);
    }

    #[test]
    fn line_splitting_and_reassembly_upstream() {
        let line = CacheLine::patterned(99);
        let beats = line_to_upstream_beats(t(0), &line, false);
        assert_eq!(beats.len(), 4);
        let mut asm = LineAssembler::upstream();
        for p in &beats {
            if let UpstreamPayload::ReadData { beat, data, .. } = p {
                asm.add_beat(*beat, data);
            }
        }
        assert!(asm.is_complete());
        assert_eq!(asm.into_line(), line);
    }

    #[test]
    fn poison_bit_is_crc_covered() {
        let f = UpstreamFrame {
            seq: 1,
            ack: None,
            payload: UpstreamPayload::ReadData {
                tag: t(3),
                beat: 0,
                data: [0x11; 32],
                poison: false,
            },
        };
        let mut bytes = f.to_bytes();
        // Flipping the poison byte on the wire must be caught by CRC —
        // poison can never be silently gained or lost in transit.
        bytes[37] ^= 1;
        assert!(matches!(
            UpstreamFrame::from_bytes(&bytes),
            Err(DmiError::CrcMismatch { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "not complete")]
    fn incomplete_line_panics() {
        let asm = LineAssembler::upstream();
        let _ = asm.into_line();
    }

    #[test]
    fn malformed_payload_kind_rejected() {
        let f = DownstreamFrame {
            seq: 0,
            ack: None,
            payload: DownstreamPayload::Idle,
        };
        let mut bytes = f.to_bytes();
        bytes[2] = 9; // unknown payload kind
        let crc = crc16(&bytes[..26]);
        bytes[26..28].copy_from_slice(&crc.to_le_bytes());
        assert!(matches!(
            DownstreamFrame::from_bytes(&bytes),
            Err(DmiError::MalformedFrame(_))
        ));
    }

    #[test]
    fn done_second_tag_flag_must_be_a_bit() {
        let f = UpstreamFrame {
            seq: 4,
            ack: None,
            payload: UpstreamPayload::Done {
                first: t(1),
                second: None,
            },
        };
        let mut bytes = f.to_bytes();
        bytes[4] = 2; // body[2]: the second-tag flag, corrupted past CRC
        let crc = crc16(&bytes[..40]);
        bytes[40..42].copy_from_slice(&crc.to_le_bytes());
        assert!(matches!(
            UpstreamFrame::from_bytes(&bytes),
            Err(DmiError::MalformedFrame("done second-tag flag"))
        ));
    }

    #[test]
    fn try_add_beat_rejects_out_of_range_index() {
        let mut asm = LineAssembler::upstream();
        assert!(matches!(
            asm.try_add_beat(4, &[0u8; UPSTREAM_BEAT_BYTES]),
            Err(DmiError::MalformedFrame("beat index out of range"))
        ));
        // A huge index must not overflow anything either.
        assert!(asm.try_add_beat(255, &[0u8; UPSTREAM_BEAT_BYTES]).is_err());
        // The assembler is still usable after rejecting garbage.
        assert!(!asm.try_add_beat(0, &[0u8; UPSTREAM_BEAT_BYTES]).unwrap());
    }

    #[test]
    fn try_add_beat_rejects_wrong_size() {
        let mut asm = LineAssembler::downstream();
        assert!(matches!(
            asm.try_add_beat(0, &[0u8; UPSTREAM_BEAT_BYTES]),
            Err(DmiError::MalformedFrame("wrong beat size"))
        ));
    }

    #[test]
    fn try_into_line_reports_missing_beats() {
        let mut asm = LineAssembler::upstream();
        asm.try_add_beat(0, &[1u8; UPSTREAM_BEAT_BYTES]).unwrap();
        assert!(matches!(
            asm.try_into_line(),
            Err(DmiError::MalformedFrame("line incomplete"))
        ));
        // A complete line comes back intact.
        let line = CacheLine::patterned(3);
        let mut asm = LineAssembler::upstream();
        for p in line_to_upstream_beats(t(0), &line, false) {
            if let UpstreamPayload::ReadData { beat, data, .. } = p {
                asm.try_add_beat(beat, &data).unwrap();
            }
        }
        assert_eq!(asm.try_into_line().unwrap(), line);
    }

    #[test]
    fn random_bytes_never_panic_the_decoders() {
        use contutto_sim::SimRng;
        // Valid CRCs over arbitrary bodies: the decoder must return a
        // typed error (or a frame) for every byte pattern, never panic.
        let mut rng = SimRng::seed_from_u64(0xF00D);
        for _ in 0..20_000 {
            let mut down = [0u8; DOWNSTREAM_FRAME_BYTES];
            for b in down.iter_mut() {
                *b = rng.next_u64() as u8;
            }
            let crc = crc16(&down[..26]);
            down[26..28].copy_from_slice(&crc.to_le_bytes());
            let _ = DownstreamFrame::from_bytes(&down);

            let mut up = [0u8; UPSTREAM_FRAME_BYTES];
            for b in up.iter_mut() {
                *b = rng.next_u64() as u8;
            }
            let crc = crc16(&up[..40]);
            up[40..42].copy_from_slice(&crc.to_le_bytes());
            let _ = UpstreamFrame::from_bytes(&up);
        }
    }

    #[test]
    fn frame_sizes_match_lane_math() {
        // 14 lanes x 16 UI = 224 bits downstream, 21 x 16 = 336 upstream.
        assert_eq!(DOWNSTREAM_FRAME_BYTES * 8, 14 * 16);
        assert_eq!(UPSTREAM_FRAME_BYTES * 8, 21 * 16);
        assert_eq!(
            DOWNSTREAM_BEATS_PER_LINE * DOWNSTREAM_BEAT_BYTES,
            CACHE_LINE_BYTES
        );
        assert_eq!(
            UPSTREAM_BEATS_PER_LINE * UPSTREAM_BEAT_BYTES,
            CACHE_LINE_BYTES
        );
    }
}
