//! The physical DMI channel.
//!
//! A [`LinkSegment`] is one direction of the channel: it carries
//! scrambled frame bytes with a fixed wire + serialization latency, and
//! can corrupt bits in flight via a [`BitErrorInjector`] (the channel
//! is "short reach ... up to 21dB" — errors are rare but real, which
//! is why the replay machinery of paper §2.3 exists).

use contutto_sim::snapshot::{Persist, RestoreError, SnapReader};
use contutto_sim::{DelayQueue, SimRng, SimTime};

/// Link speed grades of the DMI channel.
///
/// Paper §3.3(i): "The DMI links on POWER8 can run at link speeds of
/// up to 9.6 GHz. When using ConTutto, we run the links at 8 GHz."
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LinkSpeed {
    /// 8 Gb/s per lane — the ConTutto operating point.
    Gbps8,
    /// 9.6 Gb/s per lane — the Centaur operating point.
    Gbps9_6,
}

impl LinkSpeed {
    /// Duration of one unit interval (UI) on a lane, in picoseconds.
    pub fn ui_ps(self) -> u64 {
        match self {
            LinkSpeed::Gbps8 => 125,
            LinkSpeed::Gbps9_6 => 104, // 104.17 ps, rounded; <0.2 % error
        }
    }

    /// Time for one 16-UI frame to cross the serializer.
    pub fn frame_time(self) -> SimTime {
        SimTime::from_ps(self.ui_ps() * 16)
    }

    /// Aggregate raw bandwidth of a direction with `lanes` lanes, in
    /// bytes/second.
    pub fn raw_bandwidth_bytes_per_sec(self, lanes: u32) -> f64 {
        let gbps = match self {
            LinkSpeed::Gbps8 => 8.0,
            LinkSpeed::Gbps9_6 => 9.6,
        };
        gbps * 1e9 * f64::from(lanes) / 8.0
    }
}

/// Deterministic bit-error injection policy for a link direction.
#[derive(Debug, Clone)]
pub enum BitErrorInjector {
    /// Never corrupt (the default).
    Never,
    /// Corrupt exactly the frames with these ordinals (0-based count of
    /// frames pushed onto the segment), flipping one bit each. Kept
    /// sorted so the per-transmit lookup is a binary search, not a scan.
    AtFrames(Vec<u64>),
    /// Corrupt each frame independently with probability `p`, using a
    /// seeded RNG (deterministic across runs).
    Bernoulli {
        /// Per-frame corruption probability.
        p: f64,
        /// RNG used to decide corruption and bit position.
        rng: SimRng,
    },
}

impl BitErrorInjector {
    /// An injector that never corrupts.
    pub fn never() -> Self {
        BitErrorInjector::Never
    }

    /// An injector corrupting exactly the given frame ordinals. The
    /// schedule is sorted once here so each transmit-path lookup is
    /// O(log n) even for long fault schedules.
    pub fn at_frames(mut frames: Vec<u64>) -> Self {
        frames.sort_unstable();
        frames.dedup();
        BitErrorInjector::AtFrames(frames)
    }

    /// A seeded random injector with per-frame error probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `[0, 1]`.
    pub fn bernoulli(p: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        BitErrorInjector::Bernoulli {
            p,
            rng: SimRng::seed_from_u64(seed),
        }
    }

    /// Possibly corrupts `bytes` (frame ordinal `ordinal`). Returns
    /// `true` if a bit was flipped. Empty payloads (idle slots carry no
    /// bytes) have no bit to flip and are always left alone.
    pub fn maybe_corrupt(&mut self, ordinal: u64, bytes: &mut [u8]) -> bool {
        if bytes.is_empty() {
            // Still advance the Bernoulli stream so that whether a frame
            // is empty does not shift corruption decisions for later
            // frames.
            if let BitErrorInjector::Bernoulli { p, rng } = self {
                let _ = rng.gen_bool(*p);
            }
            return false;
        }
        match self {
            BitErrorInjector::Never => false,
            BitErrorInjector::AtFrames(frames) => {
                if frames.binary_search(&ordinal).is_ok() {
                    // Flip a bit at a position derived from the ordinal,
                    // deterministically.
                    let bit = (ordinal as usize * 7) % (bytes.len() * 8);
                    bytes[bit / 8] ^= 1 << (bit % 8);
                    true
                } else {
                    false
                }
            }
            BitErrorInjector::Bernoulli { p, rng } => {
                if rng.gen_bool(*p) {
                    let bit = rng.gen_index(bytes.len() * 8);
                    bytes[bit / 8] ^= 1 << (bit % 8);
                    true
                } else {
                    false
                }
            }
        }
    }
}

impl Persist for BitErrorInjector {
    fn persist(&self, out: &mut Vec<u8>) {
        match self {
            BitErrorInjector::Never => out.push(0),
            BitErrorInjector::AtFrames(frames) => {
                out.push(1);
                frames.persist(out);
            }
            BitErrorInjector::Bernoulli { p, rng } => {
                out.push(2);
                p.persist(out);
                rng.persist(out);
            }
        }
    }
    fn restore(r: &mut SnapReader<'_>) -> Result<Self, RestoreError> {
        Ok(match r.u8()? {
            0 => BitErrorInjector::Never,
            1 => {
                let frames = Vec::<u64>::restore(r)?;
                if frames.windows(2).any(|w| w[0] >= w[1]) {
                    return Err(RestoreError::Malformed {
                        context: "fault schedule not sorted",
                    });
                }
                BitErrorInjector::AtFrames(frames)
            }
            2 => {
                let p = r.f64()?;
                if !(0.0..=1.0).contains(&p) {
                    return Err(RestoreError::Malformed {
                        context: "error probability out of range",
                    });
                }
                BitErrorInjector::Bernoulli {
                    p,
                    rng: SimRng::restore(r)?,
                }
            }
            _ => {
                return Err(RestoreError::Malformed {
                    context: "BitErrorInjector discriminant",
                })
            }
        })
    }
}

/// One direction of a DMI channel: a latency pipe for serialized
/// frames, with error injection and frame accounting.
///
/// # Example
///
/// ```
/// use contutto_dmi::{LinkSegment, LinkSpeed, BitErrorInjector};
/// use contutto_sim::SimTime;
///
/// let mut seg = LinkSegment::new(LinkSpeed::Gbps8, SimTime::from_ns(1), BitErrorInjector::never());
/// seg.transmit(SimTime::ZERO, vec![1, 2, 3]);
/// // Wire latency (1 ns) + serialization of one frame (2 ns) = 3 ns.
/// assert!(seg.receive(SimTime::from_ns(2)).is_none());
/// assert_eq!(seg.receive(SimTime::from_ns(3)), Some(vec![1, 2, 3]));
/// ```
#[derive(Debug)]
pub struct LinkSegment {
    speed: LinkSpeed,
    wire: DelayQueue<Vec<u8>>,
    injector: BitErrorInjector,
    frames_sent: u64,
    frames_corrupted: u64,
}

impl LinkSegment {
    /// Creates a segment with the given speed, propagation latency and
    /// error injector. Total per-frame latency is the propagation
    /// latency plus one frame serialization time.
    pub fn new(speed: LinkSpeed, propagation: SimTime, injector: BitErrorInjector) -> Self {
        LinkSegment {
            speed,
            wire: DelayQueue::with_latency(propagation + speed.frame_time()),
            injector,
            frames_sent: 0,
            frames_corrupted: 0,
        }
    }

    /// The link speed.
    pub fn speed(&self) -> LinkSpeed {
        self.speed
    }

    /// Pushes serialized (already scrambled) frame bytes onto the wire
    /// at time `now`.
    pub fn transmit(&mut self, now: SimTime, mut bytes: Vec<u8>) {
        if self.injector.maybe_corrupt(self.frames_sent, &mut bytes) {
            self.frames_corrupted += 1;
        }
        self.frames_sent += 1;
        self.wire
            .push(now, bytes)
            .expect("link segment is unbounded");
    }

    /// Pops the next frame if it has arrived by `now`.
    pub fn receive(&mut self, now: SimTime) -> Option<Vec<u8>> {
        self.wire.pop_ready(now)
    }

    /// Time the next frame becomes available, if any is in flight.
    pub fn next_arrival(&self) -> Option<SimTime> {
        self.wire.next_ready_time()
    }

    /// Frames transmitted since construction.
    pub fn frames_sent(&self) -> u64 {
        self.frames_sent
    }

    /// Frames corrupted by the injector since construction.
    pub fn frames_corrupted(&self) -> u64 {
        self.frames_corrupted
    }

    /// Number of frames currently in flight.
    pub fn in_flight(&self) -> usize {
        self.wire.len()
    }

    /// Replaces the error injector (e.g. to stop injecting after a
    /// fault-injection phase).
    pub fn set_injector(&mut self, injector: BitErrorInjector) {
        self.injector = injector;
    }

    /// Serializes the segment's dynamic state (in-flight frames,
    /// injector, frame accounting). The speed grade is a construction
    /// parameter and is not persisted; the wire latency it implies is
    /// cross-checked on restore instead.
    pub fn snapshot_state(&self, out: &mut Vec<u8>) {
        self.wire.persist(out);
        self.injector.persist(out);
        self.frames_sent.persist(out);
        self.frames_corrupted.persist(out);
    }

    /// Overlays segment state from a snapshot payload.
    ///
    /// # Errors
    ///
    /// [`RestoreError::TopologyMismatch`] when the stored wire latency
    /// does not match this segment's construction (different speed
    /// grade or propagation delay); otherwise propagates the payload
    /// decode error.
    pub fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), RestoreError> {
        let wire = DelayQueue::<Vec<u8>>::restore(r)?;
        if wire.latency() != self.wire.latency() {
            return Err(RestoreError::TopologyMismatch {
                context: "link segment latency",
            });
        }
        self.injector = BitErrorInjector::restore(r)?;
        self.frames_sent = u64::restore(r)?;
        self.frames_corrupted = u64::restore(r)?;
        self.wire = wire;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speed_constants() {
        assert_eq!(LinkSpeed::Gbps8.frame_time(), SimTime::from_ps(2000));
        assert_eq!(LinkSpeed::Gbps9_6.frame_time(), SimTime::from_ps(1664));
        // Downstream: 14 lanes at 8 Gb/s = 14 GB/s raw; the paper's
        // "35 GB/s per link aggregate" counts both directions at 9.6.
        let down = LinkSpeed::Gbps9_6.raw_bandwidth_bytes_per_sec(14);
        let up = LinkSpeed::Gbps9_6.raw_bandwidth_bytes_per_sec(21);
        assert!((down + up) / 1e9 > 35.0);
    }

    #[test]
    fn delivers_in_order_with_latency() {
        let mut seg = LinkSegment::new(
            LinkSpeed::Gbps8,
            SimTime::from_ns(1),
            BitErrorInjector::never(),
        );
        seg.transmit(SimTime::ZERO, vec![1]);
        seg.transmit(SimTime::from_ns(2), vec![2]);
        assert_eq!(seg.in_flight(), 2);
        assert_eq!(seg.receive(SimTime::from_ns(2)), None);
        assert_eq!(seg.receive(SimTime::from_ns(3)), Some(vec![1]));
        assert_eq!(seg.receive(SimTime::from_ns(4)), None);
        assert_eq!(seg.receive(SimTime::from_ns(5)), Some(vec![2]));
    }

    #[test]
    fn at_frames_injector_corrupts_exactly_those() {
        let mut seg = LinkSegment::new(
            LinkSpeed::Gbps8,
            SimTime::ZERO,
            BitErrorInjector::at_frames(vec![1]),
        );
        let payload = vec![0u8; 28];
        seg.transmit(SimTime::ZERO, payload.clone());
        seg.transmit(SimTime::ZERO, payload.clone());
        seg.transmit(SimTime::ZERO, payload.clone());
        assert_eq!(seg.frames_corrupted(), 1);
        let t = SimTime::from_ns(10);
        assert_eq!(seg.receive(t), Some(payload.clone())); // frame 0 clean
        assert_ne!(seg.receive(t), Some(payload.clone())); // frame 1 corrupted
        assert_eq!(seg.receive(t), Some(payload)); // frame 2 clean
    }

    #[test]
    fn bernoulli_injector_is_deterministic() {
        let run = || {
            let mut inj = BitErrorInjector::bernoulli(0.3, 42);
            let mut outcomes = Vec::new();
            for i in 0..50 {
                let mut buf = vec![0u8; 28];
                outcomes.push(inj.maybe_corrupt(i, &mut buf));
            }
            outcomes
        };
        assert_eq!(run(), run());
        assert!(
            run().iter().any(|&c| c),
            "p=0.3 over 50 frames should corrupt"
        );
    }

    #[test]
    fn bernoulli_zero_never_corrupts() {
        let mut inj = BitErrorInjector::bernoulli(0.0, 1);
        let mut buf = vec![0xFFu8; 28];
        for i in 0..100 {
            assert!(!inj.maybe_corrupt(i, &mut buf));
        }
        assert_eq!(buf, vec![0xFF; 28]);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn bernoulli_validates_p() {
        let _ = BitErrorInjector::bernoulli(1.5, 0);
    }

    #[test]
    fn empty_payloads_are_never_corrupted() {
        // Regression: `(ordinal * 7) % (len * 8)` divided by zero and
        // the Bernoulli draw sampled an empty range when a zero-length
        // payload crossed the injector.
        let mut empty = Vec::new();
        let mut scheduled = BitErrorInjector::at_frames(vec![0, 1, 2]);
        assert!(!scheduled.maybe_corrupt(1, &mut empty));
        let mut noisy = BitErrorInjector::bernoulli(1.0, 7);
        assert!(!noisy.maybe_corrupt(0, &mut empty));
        let mut never = BitErrorInjector::never();
        assert!(!never.maybe_corrupt(0, &mut empty));
        // And a segment transmit of an empty frame survives end to end.
        let mut seg = LinkSegment::new(
            LinkSpeed::Gbps8,
            SimTime::ZERO,
            BitErrorInjector::bernoulli(1.0, 7),
        );
        seg.transmit(SimTime::ZERO, Vec::new());
        assert_eq!(seg.frames_corrupted(), 0);
        assert_eq!(seg.receive(SimTime::from_ns(10)), Some(Vec::new()));
    }

    #[test]
    fn empty_frames_do_not_shift_bernoulli_decisions() {
        let decide = |lengths: &[usize]| {
            let mut inj = BitErrorInjector::bernoulli(0.5, 3);
            lengths
                .iter()
                .enumerate()
                .map(|(i, &len)| {
                    let mut buf = vec![0u8; len];
                    inj.maybe_corrupt(i as u64, &mut buf)
                })
                .collect::<Vec<_>>()
        };
        let with_gap = decide(&[28, 0, 28, 28]);
        let without_gap = decide(&[28, 28, 28, 28]);
        // The empty slot itself never corrupts, and the frames after it
        // see the same coin flips either way.
        assert!(!with_gap[1]);
        assert_eq!(with_gap[2..], without_gap[2..]);
    }

    #[test]
    fn snapshot_restores_in_flight_frames_and_rng() {
        let mut seg = LinkSegment::new(
            LinkSpeed::Gbps8,
            SimTime::from_ns(1),
            BitErrorInjector::bernoulli(0.3, 9),
        );
        for i in 0..10u8 {
            seg.transmit(SimTime::from_ns(u64::from(i)), vec![i; 28]);
        }
        let mut image = Vec::new();
        seg.snapshot_state(&mut image);
        let mut fresh = LinkSegment::new(
            LinkSpeed::Gbps8,
            SimTime::from_ns(1),
            BitErrorInjector::never(),
        );
        fresh
            .restore_state(&mut SnapReader::new(&image))
            .expect("restore");
        assert_eq!(fresh.frames_sent(), seg.frames_sent());
        assert_eq!(fresh.frames_corrupted(), seg.frames_corrupted());
        // Drained frames and future corruption decisions are identical.
        let t = SimTime::from_secs(1);
        loop {
            let (a, b) = (seg.receive(t), fresh.receive(t));
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
        for i in 10..30u8 {
            let now = SimTime::from_ns(u64::from(i));
            seg.transmit(now, vec![i; 28]);
            fresh.transmit(now, vec![i; 28]);
        }
        assert_eq!(seg.frames_corrupted(), fresh.frames_corrupted());
    }

    #[test]
    fn restore_rejects_mismatched_speed() {
        let seg = LinkSegment::new(
            LinkSpeed::Gbps8,
            SimTime::from_ns(1),
            BitErrorInjector::never(),
        );
        let mut image = Vec::new();
        seg.snapshot_state(&mut image);
        let mut wrong = LinkSegment::new(
            LinkSpeed::Gbps9_6,
            SimTime::from_ns(1),
            BitErrorInjector::never(),
        );
        assert!(matches!(
            wrong.restore_state(&mut SnapReader::new(&image)),
            Err(RestoreError::TopologyMismatch { .. })
        ));
    }

    #[test]
    fn at_frames_accepts_unsorted_schedules() {
        let mut inj = BitErrorInjector::at_frames(vec![9, 3, 7, 3]);
        let hits: Vec<u64> = (0..12)
            .filter(|&i| {
                let mut buf = vec![0u8; 28];
                inj.maybe_corrupt(i, &mut buf)
            })
            .collect();
        assert_eq!(hits, vec![3, 7, 9]);
    }
}
