//! Line scrambling.
//!
//! Paper §3.3(i): "Once alignment is achieved, the data gets
//! descrambled and forwarded ... The transmit side logic accepts 2
//! frames every cycle from MBI, scrambles them and then sends them out
//! across the DMI link."
//!
//! High-speed serial links scramble data to guarantee transition
//! density for clock recovery (ConTutto's receive direction uses CDR,
//! §3.2). We implement a side-synchronized additive scrambler: a
//! 23-bit Fibonacci LFSR (x²³ + x¹⁸ + 1, the PCIe-like polynomial)
//! whose keystream is XORed onto the serialized frame bytes. Both ends
//! seed the LFSR during training, so descrambling is the same
//! operation with the same state.

/// The LFSR seed established during link training. Any nonzero value
/// works; this one is the value the training pattern generator uses.
pub const TRAINING_SEED: u32 = 0x1F_FFFF;

const MASK: u32 = 0x7F_FFFF; // 23 bits

/// A 23-bit additive scrambler/descrambler.
///
/// Scrambling and descrambling are the same XOR operation; two
/// `Scrambler`s constructed with the same seed and fed the same byte
/// count stay in lockstep.
///
/// # Example
///
/// ```
/// use contutto_dmi::scramble::Scrambler;
/// let mut tx = Scrambler::new(0xABCDE);
/// let mut rx = Scrambler::new(0xABCDE);
/// let mut frame = *b"hello DMI frame!";
/// tx.apply(&mut frame);
/// assert_ne!(&frame, b"hello DMI frame!");
/// rx.apply(&mut frame);
/// assert_eq!(&frame, b"hello DMI frame!");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scrambler {
    state: u32,
}

impl Scrambler {
    /// Creates a scrambler with the given 23-bit seed.
    ///
    /// # Panics
    ///
    /// Panics if `seed & 0x7FFFFF` is zero (an all-zero LFSR never
    /// advances).
    pub fn new(seed: u32) -> Self {
        let state = seed & MASK;
        assert!(state != 0, "scrambler seed must be nonzero in low 23 bits");
        Scrambler { state }
    }

    /// Creates a scrambler with the training seed both ends use after
    /// link bring-up.
    pub fn trained() -> Self {
        Scrambler::new(TRAINING_SEED)
    }

    /// Advances the LFSR one bit and returns the output bit.
    fn step_bit(&mut self) -> u8 {
        // x^23 + x^18 + 1 (taps at bit 22 and bit 17)
        let out = (self.state >> 22) & 1;
        let fb = ((self.state >> 22) ^ (self.state >> 17)) & 1;
        self.state = ((self.state << 1) | fb) & MASK;
        out as u8
    }

    /// Produces the next keystream byte (MSB first).
    pub fn next_byte(&mut self) -> u8 {
        let mut b = 0u8;
        for _ in 0..8 {
            b = (b << 1) | self.step_bit();
        }
        b
    }

    /// XORs the keystream onto `data` in place (scramble or
    /// descramble — the operation is self-inverse given equal state).
    pub fn apply(&mut self, data: &mut [u8]) {
        for byte in data {
            *byte ^= self.next_byte();
        }
    }

    /// Current LFSR state (for tests and training checks).
    pub fn state(&self) -> u32 {
        self.state
    }
}

/// Longest frame the cached keystream covers (upstream frames are
/// 42 bytes).
const KEYSTREAM_LEN: usize = 64;

static TRAINED_KEYSTREAM: std::sync::OnceLock<[u8; KEYSTREAM_LEN]> = std::sync::OnceLock::new();

/// Applies the trained-seed keystream to a frame in place. Identical
/// to `Scrambler::trained().apply(data)` but reuses a precomputed
/// keystream — the per-frame hot path of the link model.
///
/// # Panics
///
/// Panics if `data` exceeds one frame (64 bytes).
pub fn apply_trained(data: &mut [u8]) {
    assert!(data.len() <= KEYSTREAM_LEN, "keystream covers one frame");
    let ks = TRAINED_KEYSTREAM.get_or_init(|| {
        let mut s = Scrambler::trained();
        let mut ks = [0u8; KEYSTREAM_LEN];
        for b in &mut ks {
            *b = s.next_byte();
        }
        ks
    });
    for (b, k) in data.iter_mut().zip(ks) {
        *b ^= k;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_identity() {
        let original: Vec<u8> = (0..=255).collect();
        let mut data = original.clone();
        let mut tx = Scrambler::trained();
        let mut rx = Scrambler::trained();
        tx.apply(&mut data);
        assert_ne!(data, original);
        rx.apply(&mut data);
        assert_eq!(data, original);
    }

    #[test]
    fn keystream_has_transition_density() {
        // The point of scrambling: long runs of zeros become balanced.
        let mut s = Scrambler::trained();
        let mut zeros = vec![0u8; 4096];
        s.apply(&mut zeros);
        let ones: u32 = zeros.iter().map(|b| b.count_ones()).sum();
        let total = 4096 * 8;
        let density = f64::from(ones) / f64::from(total as u32);
        assert!(
            (0.45..0.55).contains(&density),
            "keystream density {density} not balanced"
        );
    }

    #[test]
    fn period_is_long() {
        // A maximal 23-bit LFSR must not repeat state within a small window.
        let mut s = Scrambler::new(1);
        let start = s.state();
        for i in 1..100_000u32 {
            s.step_bit();
            assert!(s.state() != start || i == 0, "state repeated at step {i}");
        }
    }

    #[test]
    fn desync_corrupts() {
        let mut tx = Scrambler::trained();
        let mut rx = Scrambler::trained();
        rx.next_byte(); // rx is one byte ahead: out of sync
        let mut data = *b"payload payload!";
        tx.apply(&mut data);
        rx.apply(&mut data);
        assert_ne!(&data, b"payload payload!");
    }

    #[test]
    fn apply_trained_matches_fresh_scrambler() {
        let mut a = *b"0123456789abcdefghijklmnopqr";
        let mut b = a;
        apply_trained(&mut a);
        Scrambler::trained().apply(&mut b);
        assert_eq!(a, b);
        apply_trained(&mut a);
        assert_eq!(&a, b"0123456789abcdefghijklmnopqr");
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_seed_panics() {
        let _ = Scrambler::new(0x80_0000); // nonzero u32, but zero in low 23 bits
    }
}
