//! The raw slram driver.
//!
//! Paper §4: "All these experiments were running the full standard
//! Linux stack utilizing either the pmem.io driver stack or raw slram
//! driver." The slram path treats the region as plain RAM-backed
//! block storage: no flush, no persistence guarantee — writes are
//! posted and the driver trusts the media. On MRAM the data happens
//! to survive anyway; on DRAM behind ConTutto it is simply fast
//! scratch block storage.

use contutto_sim::SimTime;

use contutto_power8::channel::DmiChannel;

use crate::pmem::PmemDriver;

/// The slram driver: pmem's data path without the durability fence.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SlramDriver {
    inner: PmemDriver,
}

impl SlramDriver {
    /// Creates a driver with the given MLP.
    pub fn with_mlp(mlp: usize) -> Self {
        SlramDriver {
            inner: PmemDriver {
                mlp,
                ..PmemDriver::default()
            },
        }
    }

    /// Reads a span.
    ///
    /// # Panics
    ///
    /// Panics on misalignment or a hung channel.
    pub fn read(&self, channel: &mut DmiChannel, addr: u64, buf: &mut [u8]) -> SimTime {
        self.inner.read(channel, addr, buf)
    }

    /// Posted write — no flush, no durability guarantee.
    ///
    /// # Panics
    ///
    /// Panics on misalignment or a hung channel.
    pub fn write(&self, channel: &mut DmiChannel, addr: u64, data: &[u8]) -> SimTime {
        self.inner.write_posted(channel, addr, data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use contutto_core::{ConTutto, ContuttoConfig, MemoryPopulation};
    use contutto_power8::channel::ChannelConfig;

    fn dram_channel() -> DmiChannel {
        DmiChannel::new(
            ChannelConfig::contutto(),
            Box::new(ConTutto::new(
                ContuttoConfig::base(),
                MemoryPopulation::dram_8gb(),
            )),
        )
    }

    #[test]
    fn roundtrip_on_dram() {
        let mut ch = dram_channel();
        let driver = SlramDriver::default();
        let data = vec![0x77u8; 1024];
        driver.write(&mut ch, 0x8000, &data);
        let mut back = vec![0u8; 1024];
        driver.read(&mut ch, 0x8000, &mut back);
        assert_eq!(back, data);
    }

    #[test]
    fn slram_write_is_faster_than_pmem_write() {
        // No flush: the posted path finishes sooner.
        let mut ch1 = dram_channel();
        let slram = SlramDriver::default();
        let data = vec![1u8; 4096];
        slram.write(&mut ch1, 0, &data); // warm
        let t0 = ch1.now();
        slram.write(&mut ch1, 0, &data);
        let posted = ch1.now() - t0;

        let mut ch2 = dram_channel();
        let pmem = PmemDriver::default();
        pmem.write_persistent(&mut ch2, 0, &data); // warm
        let t0 = ch2.now();
        pmem.write_persistent(&mut ch2, 0, &data);
        let durable = ch2.now() - t0;
        assert!(posted < durable, "posted {posted} !< durable {durable}");
    }
}
