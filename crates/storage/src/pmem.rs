//! The persistent-memory driver.
//!
//! Paper §4.2: "Using the ConTutto-enabled STT-MRAM, we have developed
//! a persistent memory (pmem) kernel driver, guaranteeing persistence
//! on the memory bus. ... the persistent memory controller in the
//! software stack requires support for flush and sync commands to
//! ensure that outstanding commands have been written to memory. We
//! extended the MBS logic to add a special flush command."
//!
//! [`PmemDriver`] moves spans through a live [`DmiChannel`] as
//! cache-line loads/stores with a bounded number outstanding (the
//! core's memory-level parallelism), and makes writes durable with the
//! ConTutto flush command. This is the data path behind the
//! memory-bus rows of Figures 9/10 and Table 4 — its latency is
//! *measured through the simulated channel*, not assumed.

use std::collections::HashMap;

use contutto_dmi::command::{CacheLine, CommandOp, Tag};
use contutto_sim::SimTime;

use contutto_power8::channel::DmiChannel;

/// The pmem driver configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PmemDriver {
    /// Maximum outstanding line commands (core MLP for copies).
    pub mlp: usize,
    /// Fixed per-call software cost (mapping, fence instructions).
    pub software_overhead: SimTime,
}

impl Default for PmemDriver {
    fn default() -> Self {
        PmemDriver {
            mlp: 4,
            software_overhead: SimTime::from_ns(300),
        }
    }
}

impl PmemDriver {
    /// Reads `buf.len()` bytes at a line-aligned address; returns the
    /// completion time.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not 128-byte aligned, `buf` is not a
    /// multiple of 128 bytes, or the channel hangs.
    pub fn read(&self, channel: &mut DmiChannel, addr: u64, buf: &mut [u8]) -> SimTime {
        assert_eq!(addr % 128, 0, "pmem reads are line aligned");
        assert_eq!(buf.len() % 128, 0, "pmem reads whole lines");
        let lines = buf.len() / 128;
        let mut tag_to_line: HashMap<Tag, usize> = HashMap::new();
        let mut next = 0usize;
        let mut completed = 0usize;
        let deadline = channel.now() + SimTime::from_ms(100);
        while completed < lines {
            while next < lines && tag_to_line.len() < self.mlp {
                let tag = channel
                    .submit(CommandOp::Read {
                        addr: addr + next as u64 * 128,
                    })
                    .expect("mlp window is far below 32 tags");
                tag_to_line.insert(tag, next);
                next += 1;
            }
            let c = channel.next_completion(deadline).expect("pmem read hung");
            let line_idx = tag_to_line.remove(&c.tag).expect("our tag");
            let data = c.data.expect("read data");
            buf[line_idx * 128..(line_idx + 1) * 128].copy_from_slice(&data.0);
            completed += 1;
        }
        channel.now() + self.software_overhead
    }

    /// Writes `data` persistently: pipelined line stores followed by a
    /// flush command; returns the time the data is durable at the
    /// media.
    ///
    /// # Panics
    ///
    /// Panics on misalignment or a hung channel.
    pub fn write_persistent(&self, channel: &mut DmiChannel, addr: u64, data: &[u8]) -> SimTime {
        let done = self.write_posted(channel, addr, data);
        // The flush command drains everything outstanding.
        let tag = channel
            .submit(CommandOp::Flush)
            .expect("a tag is free after draining writes");
        let deadline = channel.now() + SimTime::from_ms(100);
        loop {
            match channel.next_completion(deadline) {
                Some(c) if c.tag == tag => break,
                Some(_) => {}
                None => panic!("flush hung"),
            }
        }
        channel.now().max(done) + self.software_overhead
    }

    /// Posted (non-durable) write path: all stores completed, no flush.
    ///
    /// # Panics
    ///
    /// Panics on misalignment or a hung channel.
    pub fn write_posted(&self, channel: &mut DmiChannel, addr: u64, data: &[u8]) -> SimTime {
        assert_eq!(addr % 128, 0, "pmem writes are line aligned");
        assert_eq!(data.len() % 128, 0, "pmem writes whole lines");
        let lines = data.len() / 128;
        let mut outstanding = 0usize;
        let mut next = 0usize;
        let mut completed = 0usize;
        let deadline = channel.now() + SimTime::from_ms(100);
        while completed < lines {
            while next < lines && outstanding < self.mlp.max(8) {
                let mut line = CacheLine::ZERO;
                line.0.copy_from_slice(&data[next * 128..(next + 1) * 128]);
                channel
                    .submit(CommandOp::Write {
                        addr: addr + next as u64 * 128,
                        data: line,
                    })
                    .expect("window below tag count");
                outstanding += 1;
                next += 1;
            }
            channel.next_completion(deadline).expect("pmem write hung");
            outstanding -= 1;
            completed += 1;
        }
        channel.now()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use contutto_core::{ConTutto, ContuttoConfig, MemoryPopulation};
    use contutto_memdev::MramGeneration;
    use contutto_power8::channel::ChannelConfig;

    fn mram_channel() -> DmiChannel {
        DmiChannel::new(
            ChannelConfig::contutto(),
            Box::new(ConTutto::new(
                ContuttoConfig::base(),
                MemoryPopulation::mram_512mb(MramGeneration::Pmtj),
            )),
        )
    }

    #[test]
    fn span_roundtrip() {
        let mut ch = mram_channel();
        let driver = PmemDriver::default();
        let data: Vec<u8> = (0..4096u32).map(|i| (i % 241) as u8).collect();
        driver.write_persistent(&mut ch, 0x1_0000, &data);
        let mut back = vec![0u8; 4096];
        driver.read(&mut ch, 0x1_0000, &mut back);
        assert_eq!(back, data);
    }

    #[test]
    fn mram_4k_read_latency_is_microseconds() {
        let mut ch = mram_channel();
        let driver = PmemDriver::default();
        let mut buf = vec![0u8; 4096];
        // Warm rows.
        driver.read(&mut ch, 0, &mut buf);
        let t0 = ch.now();
        let done = driver.read(&mut ch, 0, &mut buf);
        let us = (done - t0).as_us_f64();
        // 32 lines / MLP 4 over a ~400+ ns channel: a few microseconds —
        // the memory-bus attach point's whole advantage (Figure 10).
        assert!((2.0..6.0).contains(&us), "4K read took {us} us");
    }

    #[test]
    fn persistent_write_pays_for_the_flush() {
        let mut ch = mram_channel();
        let driver = PmemDriver::default();
        let data = vec![0xA5u8; 4096];
        driver.write_posted(&mut ch, 0, &data); // warm
        let t0 = ch.now();
        driver.write_posted(&mut ch, 0, &data);
        let posted = ch.now() - t0;
        let t0 = ch.now();
        driver.write_persistent(&mut ch, 0, &data);
        let durable = ch.now() - t0;
        assert!(durable > posted, "durable {durable} !> posted {posted}");
        // Both stay in the low microseconds — the memory-bus advantage.
        assert!(
            durable < contutto_sim::SimTime::from_us(8),
            "durable {durable}"
        );
    }

    #[test]
    fn flush_makes_writes_durable_after_power_loss_story() {
        // Functional: flush returns only after the controller reports
        // all writes durable; MRAM then retains across power loss.
        let mut ch = mram_channel();
        let driver = PmemDriver::default();
        driver.write_persistent(&mut ch, 0x2000, &[0xEE; 128]);
        // (Power loss on MRAM retains contents by construction;
        // the read-back confirms the data reached the media model.)
        let mut buf = vec![0u8; 128];
        driver.read(&mut ch, 0x2000, &mut buf);
        assert_eq!(buf, vec![0xEE; 128]);
    }

    #[test]
    fn higher_mlp_reduces_read_latency() {
        let run = |mlp: usize| {
            let mut ch = mram_channel();
            let driver = PmemDriver {
                mlp,
                ..PmemDriver::default()
            };
            let mut buf = vec![0u8; 4096];
            driver.read(&mut ch, 0, &mut buf); // warm
            let t0 = ch.now();
            let done = driver.read(&mut ch, 0, &mut buf);
            done - t0
        };
        assert!(run(8) < run(2), "mlp 8 {} vs mlp 2 {}", run(8), run(2));
    }

    #[test]
    #[should_panic(expected = "line aligned")]
    fn misaligned_read_rejected() {
        let mut ch = mram_channel();
        PmemDriver::default().read(&mut ch, 64, &mut [0u8; 128]);
    }
}
