//! The GPFS-style non-volatile write cache.
//!
//! Paper §4.2: "we ran General Parallel File System (GPFS) ...
//! utilizing STT-MRAM behind ConTutto as a write cache in front of a
//! hard disk drive to aggregate small random writes into larger
//! sequential writes to the disk, thereby avoiding the latency hit of
//! repositioning the drive head for each of the original small
//! writes." — the Table 4 experiment.
//!
//! [`WriteCache`] appends each small random write to a sequential log
//! on the fast persistent device and acknowledges immediately; a
//! destage pass later sorts the records and writes them to the disk
//! in LBA order (mostly sequential at the platter).

use std::collections::BTreeMap;

use contutto_sim::SimTime;

use crate::blockdev::{BlockDevice, BLOCK_BYTES};

/// A persistent write-back cache in front of a slow block device.
///
/// # Example
///
/// ```
/// use contutto_storage::blockdev::{SasHdd, SasSsd};
/// use contutto_storage::writecache::WriteCache;
/// use contutto_sim::SimTime;
///
/// let mut cache = WriteCache::new(SasSsd::new(), SasHdd::new());
/// let ack = cache.write(SimTime::ZERO, 12345, &[0u8; 4096]);
/// // Acknowledged at log speed, not disk speed.
/// assert!(ack.as_us_f64() < 100.0);
/// cache.destage(ack);
/// ```
pub struct WriteCache<L: BlockDevice, D: BlockDevice> {
    log: L,
    disk: D,
    /// Pending records: disk LBA → (log LBA holding the data).
    pending: BTreeMap<u64, u64>,
    log_head: u64,
    /// Per-write filesystem software cost (GPFS recovery-log path).
    software_overhead: SimTime,
    acknowledged_writes: u64,
    destages: u64,
}

impl<L: BlockDevice, D: BlockDevice> WriteCache<L, D> {
    /// Builds the cache over a log device and a backing disk.
    ///
    /// # Panics
    ///
    /// Panics if the log device is not persistent — an ack from a
    /// volatile log would lie to the application.
    pub fn new(log: L, disk: D) -> Self {
        assert!(
            log.is_persistent(),
            "write-cache log must be persistent media"
        );
        WriteCache {
            log,
            disk,
            pending: BTreeMap::new(),
            log_head: 0,
            software_overhead: SimTime::from_us(6),
            acknowledged_writes: 0,
            destages: 0,
        }
    }

    /// Writes one block; acknowledged once the record is durable in
    /// the log. Destages automatically when the log fills.
    pub fn write(&mut self, now: SimTime, lba: u64, data: &[u8]) -> SimTime {
        assert_eq!(data.len(), BLOCK_BYTES);
        let mut now = now + self.software_overhead;
        if self.log_head >= self.log.capacity_blocks() {
            now = self.destage(now);
        }
        let log_lba = self.log_head;
        self.log_head += 1;
        let durable = self.log.write_block(now, log_lba, data);
        self.pending.insert(lba, log_lba);
        self.acknowledged_writes += 1;
        durable
    }

    /// Reads one block (pending log data wins over the disk).
    pub fn read(&mut self, now: SimTime, lba: u64, buf: &mut [u8]) -> SimTime {
        match self.pending.get(&lba) {
            Some(&log_lba) => self.log.read_block(now, log_lba, buf),
            None => self.disk.read_block(now, lba, buf),
        }
    }

    /// Destages all pending records to the disk in LBA order.
    pub fn destage(&mut self, now: SimTime) -> SimTime {
        self.destages += 1;
        let mut t = now;
        let pending = std::mem::take(&mut self.pending);
        let mut buf = vec![0u8; BLOCK_BYTES];
        for (lba, log_lba) in pending {
            // BTreeMap iterates in LBA order: consecutive dirty blocks
            // land sequentially at the platter.
            t = self.log.read_block(t, log_lba, &mut buf);
            t = self.disk.write_block(t, lba, &buf);
        }
        self.log_head = 0;
        t
    }

    /// Destages everything; when this returns, the backing disk holds
    /// every acknowledged write. This is the power-fail contract: a
    /// power cut after `flush` may discard the log contents and the
    /// in-memory pending map without losing a single acknowledged
    /// block.
    pub fn flush(&mut self, now: SimTime) -> SimTime {
        let t = self.destage(now);
        debug_assert!(self.pending.is_empty(), "flush left dirty records behind");
        t
    }

    /// Tears the cache down into its devices — what a power cut
    /// leaves behind: the media survive, the in-memory pending map
    /// does not.
    pub fn into_devices(self) -> (L, D) {
        (self.log, self.disk)
    }

    /// Writes acknowledged so far.
    pub fn acknowledged_writes(&self) -> u64 {
        self.acknowledged_writes
    }

    /// Destage passes performed.
    pub fn destages(&self) -> u64 {
        self.destages
    }

    /// Pending (not yet destaged) records.
    pub fn pending_records(&self) -> usize {
        self.pending.len()
    }

    /// The backing disk (for verification).
    pub fn disk_mut(&mut self) -> &mut D {
        &mut self.disk
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blockdev::{PcieCard, SasHdd, SasSsd};

    fn cache() -> WriteCache<SasSsd, SasHdd> {
        WriteCache::new(SasSsd::new(), SasHdd::new())
    }

    #[test]
    fn write_then_read_before_destage() {
        let mut wc = cache();
        let data = [0xBEu8; BLOCK_BYTES];
        let t = wc.write(SimTime::ZERO, 12345, &data);
        let mut buf = [0u8; BLOCK_BYTES];
        wc.read(t, 12345, &mut buf);
        assert_eq!(buf, data);
        assert_eq!(wc.pending_records(), 1);
    }

    #[test]
    fn destage_moves_data_to_disk() {
        let mut wc = cache();
        let data = [0x11u8; BLOCK_BYTES];
        let t = wc.write(SimTime::ZERO, 777, &data);
        let t = wc.destage(t);
        assert_eq!(wc.pending_records(), 0);
        let mut buf = [0u8; BLOCK_BYTES];
        wc.disk_mut().read_block(t, 777, &mut buf);
        assert_eq!(buf, data);
        // Reads now come from the disk.
        let mut buf2 = [0u8; BLOCK_BYTES];
        wc.read(t + SimTime::from_ms(1), 777, &mut buf2);
        assert_eq!(buf2, data);
    }

    #[test]
    fn cached_writes_beat_direct_disk_writes() {
        let mut wc = cache();
        let mut direct = SasHdd::new();
        let data = [0u8; BLOCK_BYTES];
        // 50 scattered writes each way.
        let mut t_cache = SimTime::ZERO;
        let mut t_direct = SimTime::ZERO;
        for i in 0..50u64 {
            let lba = (i * 2_654_435_761) % 100_000_000;
            t_cache = wc.write(t_cache, lba, &data);
            t_direct = direct.write_block(t_direct, lba, &data);
        }
        assert!(
            t_cache * 10 < t_direct,
            "cache {t_cache} should be >10x faster than direct {t_direct}"
        );
    }

    #[test]
    fn destage_is_mostly_sequential_at_disk() {
        let mut wc = cache();
        let data = [0u8; BLOCK_BYTES];
        let mut t = SimTime::ZERO;
        // Adjacent dirty LBAs written in scrambled order.
        for lba in [5u64, 2, 4, 1, 3, 0] {
            t = wc.write(t, lba, &data);
        }
        let before = wc.disk_mut().name().to_string();
        assert_eq!(before, "hdd-sas");
        wc.destage(t);
        // 6 adjacent blocks → one seek then sequential writes.
        // (First disk write seeks; the rest land sequentially.)
        assert_eq!(wc.destages(), 1);
    }

    #[test]
    fn flush_is_complete_and_a_later_power_cut_loses_nothing() {
        let mut wc = cache();
        let lbas = [913u64, 7, 4242, 88, 555];
        let mut t = SimTime::ZERO;
        for (i, &lba) in lbas.iter().enumerate() {
            t = wc.write(t, lba, &[i as u8 + 1; BLOCK_BYTES]);
        }
        assert_eq!(wc.pending_records(), lbas.len());
        let t = wc.flush(t);
        assert_eq!(wc.pending_records(), 0, "flush left dirty records");
        // Every acknowledged block is on the backing media itself.
        for (i, &lba) in lbas.iter().enumerate() {
            let mut buf = [0u8; BLOCK_BYTES];
            wc.disk_mut().read_block(t, lba, &mut buf);
            assert_eq!(buf, [i as u8 + 1; BLOCK_BYTES], "lba {lba} not on disk");
        }
        // Power cut: the cache struct (with its volatile pending map)
        // is gone; only the devices survive. A cache rebuilt over the
        // same disk must serve every block.
        let (log, disk) = wc.into_devices();
        let mut reborn = WriteCache::new(log, disk);
        for (i, &lba) in lbas.iter().enumerate() {
            let mut buf = [0u8; BLOCK_BYTES];
            reborn.read(t, lba, &mut buf);
            assert_eq!(
                buf,
                [i as u8 + 1; BLOCK_BYTES],
                "lba {lba} lost across the power cut"
            );
        }
    }

    #[test]
    #[should_panic(expected = "persistent")]
    fn volatile_log_rejected() {
        // A hypothetical non-persistent log device must be refused.
        struct VolatileLog(PcieCard);
        impl BlockDevice for VolatileLog {
            fn read_block(&mut self, now: SimTime, lba: u64, buf: &mut [u8]) -> SimTime {
                self.0.read_block(now, lba, buf)
            }
            fn write_block(&mut self, now: SimTime, lba: u64, data: &[u8]) -> SimTime {
                self.0.write_block(now, lba, data)
            }
            fn capacity_blocks(&self) -> u64 {
                self.0.capacity_blocks()
            }
            fn name(&self) -> &str {
                "volatile"
            }
            fn is_persistent(&self) -> bool {
                false
            }
        }
        let _ = WriteCache::new(VolatileLog(PcieCard::nvram()), SasHdd::new());
    }
}
