//! The PCIe/NVMe attach-point model.
//!
//! Paper §4.2: "The results clearly demonstrate that ConTutto provides
//! a much higher bandwidth and lower latency attach point than PCIe,
//! even with NVMe." The point of this module is to charge honestly for
//! everything a PCIe IO pays that a memory-bus load/store does not:
//! driver submission, doorbell write, device command fetch, DMA of the
//! payload across the link, completion posting and interrupt
//! servicing.

use contutto_sim::SimTime;

/// PCIe link configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PcieConfig {
    /// Lane count (x4 for the paper's flash card).
    pub lanes: u32,
    /// Usable per-lane bandwidth, MB/s (Gen3 ≈ 985 MB/s/lane).
    pub mb_per_sec_per_lane: u32,
}

impl PcieConfig {
    /// Gen3 x4 (the paper's "FLASH on x4 PCIe").
    pub fn gen3_x4() -> Self {
        PcieConfig {
            lanes: 4,
            mb_per_sec_per_lane: 985,
        }
    }

    /// Gen3 x8 (typical NVRAM/MRAM cards).
    pub fn gen3_x8() -> Self {
        PcieConfig {
            lanes: 8,
            mb_per_sec_per_lane: 985,
        }
    }

    /// Payload transfer time across the link.
    pub fn transfer_time(&self, bytes: u64) -> SimTime {
        let bw = f64::from(self.lanes) * f64::from(self.mb_per_sec_per_lane) * 1e6;
        SimTime::from_ps((bytes as f64 / bw * 1e12) as u64)
    }
}

/// Per-IO costs of the NVMe software/protocol path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NvmePath {
    /// Link configuration.
    pub pcie: PcieConfig,
    /// Driver submission: build SQ entry, ring doorbell.
    pub submission: SimTime,
    /// Device-side command fetch + DMA engine setup.
    pub device_setup: SimTime,
    /// Completion: CQ posting + MSI-X interrupt + driver completion.
    pub completion: SimTime,
}

impl NvmePath {
    /// A tuned 2016-era NVMe stack.
    pub fn tuned(pcie: PcieConfig) -> Self {
        NvmePath {
            pcie,
            submission: SimTime::from_ps(900_000),     // 0.9 us
            device_setup: SimTime::from_ps(1_200_000), // 1.2 us
            completion: SimTime::from_ps(2_400_000),   // 2.4 us (interrupt path)
        }
    }

    /// Total path cost for one IO of `bytes`, excluding media time.
    pub fn overhead(&self, bytes: u64) -> SimTime {
        self.submission + self.device_setup + self.pcie.transfer_time(bytes) + self.completion
    }

    /// Full IO latency: path overhead + media service time.
    pub fn io_latency(&self, bytes: u64, media: SimTime) -> SimTime {
        self.overhead(bytes) + media
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_time_scales_with_lanes() {
        let x4 = PcieConfig::gen3_x4().transfer_time(4096);
        let x8 = PcieConfig::gen3_x8().transfer_time(4096);
        let diff = (x4.as_ps() as i64 - (x8.as_ps() * 2) as i64).abs();
        assert!(diff <= 2, "x4 {x4} vs 2*x8 {x8} (rounding)");
        // 4 KiB over ~3.9 GB/s ≈ 1.04 us.
        assert!((0.9..1.2).contains(&x4.as_us_f64()), "{x4}");
    }

    #[test]
    fn overhead_dominates_small_ios() {
        let path = NvmePath::tuned(PcieConfig::gen3_x4());
        let oh = path.overhead(4096);
        // Several microseconds before any media is touched — the gap
        // the memory-bus attach point closes.
        assert!(oh > SimTime::from_us(5), "overhead {oh}");
        assert!(oh < SimTime::from_us(8), "overhead {oh}");
    }

    #[test]
    fn io_latency_adds_media() {
        let path = NvmePath::tuned(PcieConfig::gen3_x4());
        let fast = path.io_latency(4096, SimTime::from_us(2));
        let slow = path.io_latency(4096, SimTime::from_us(80));
        assert_eq!(slow - fast, SimTime::from_us(78));
    }
}
