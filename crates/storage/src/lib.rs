//! # contutto-storage
//!
//! The storage substrate for the paper's §4.2 experiments: every
//! attach point and driver stack the FIO (Figures 9–10) and GPFS
//! (Table 4) comparisons need.
//!
//! | module | role |
//! |---|---|
//! | [`pcie`] | the PCIe/NVMe path model: doorbells, DMA, interrupts — the overhead the memory-bus attach avoids |
//! | [`blockdev`] | block devices: SAS HDD, SAS SSD, PCIe flash/NVRAM/MRAM cards, and memory-bus pmem block devices |
//! | [`pmem`] | the persistent-memory driver over a live DMI channel (loads/stores + flush, paper's pmem.io stack) |
//! | [`slram`] | the raw slram driver (no persistence guarantees) |
//! | [`writecache`] | the GPFS-style non-volatile write cache aggregating small random writes into sequential disk writes |

pub mod blockdev;
pub mod pcie;
pub mod pmem;
pub mod slram;
pub mod writecache;

pub use blockdev::{BlockDevice, PcieCard, SasHdd, SasSsd};
pub use pcie::{NvmePath, PcieConfig};
pub use pmem::PmemDriver;
pub use slram::SlramDriver;
pub use writecache::WriteCache;
