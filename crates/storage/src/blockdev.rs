//! Block devices for the storage comparisons.
//!
//! The Figure 9/10 and Table 4 contenders:
//!
//! * [`SasHdd`] — the 1.1 TB SAS disk (Table 4 row 1),
//! * [`SasSsd`] — the 400 GB SAS SSD (Table 4 row 2),
//! * [`PcieCard`] — NVMe-attached cards: x4 flash, NVRAM (flash-backed
//!   DRAM) and the vendor's PCIe MRAM card ("MRAM-on-PCIe numbers are
//!   those published by the vendor"),
//! * [`PmemBlockDevice`] — a block device over the memory bus: the
//!   pmem driver on a live ConTutto channel (MRAM or NVDIMM).

use contutto_memdev::{DiskConfig, HardDiskDrive, MemoryDevice, SparseMemory};
use contutto_sim::SimTime;

use contutto_power8::channel::DmiChannel;

use crate::pcie::{NvmePath, PcieConfig};
use crate::pmem::PmemDriver;

/// Block size used throughout the storage experiments.
pub const BLOCK_BYTES: usize = 4096;

/// A 4 KiB-block storage device with per-op completion times.
pub trait BlockDevice {
    /// Reads block `lba`; returns data-available time.
    fn read_block(&mut self, now: SimTime, lba: u64, buf: &mut [u8]) -> SimTime;
    /// Writes block `lba`; returns acknowledged time.
    fn write_block(&mut self, now: SimTime, lba: u64, data: &[u8]) -> SimTime;
    /// Capacity in blocks.
    fn capacity_blocks(&self) -> u64;
    /// Device name for reports.
    fn name(&self) -> &str;
    /// Whether an acknowledged write survives power loss.
    fn is_persistent(&self) -> bool;
}

/// The SAS HDD (Table 4: 1.1 TB, ~75 IOPS on small random writes).
#[derive(Debug)]
pub struct SasHdd {
    disk: HardDiskDrive,
    /// Driver + HBA + SAS protocol overhead per IO.
    overhead: SimTime,
}

impl SasHdd {
    /// The paper's 1.1 TB drive.
    pub fn new() -> Self {
        SasHdd {
            disk: HardDiskDrive::new(1_100_000_000_000, DiskConfig::sas_7200rpm()),
            overhead: SimTime::from_us(300),
        }
    }
}

impl Default for SasHdd {
    fn default() -> Self {
        SasHdd::new()
    }
}

impl BlockDevice for SasHdd {
    fn read_block(&mut self, now: SimTime, lba: u64, buf: &mut [u8]) -> SimTime {
        self.disk
            .read(now + self.overhead, lba * BLOCK_BYTES as u64, buf)
            .done
    }

    fn write_block(&mut self, now: SimTime, lba: u64, data: &[u8]) -> SimTime {
        self.disk
            .write(now + self.overhead, lba * BLOCK_BYTES as u64, data)
    }

    fn capacity_blocks(&self) -> u64 {
        self.disk.capacity_bytes() / BLOCK_BYTES as u64
    }

    fn name(&self) -> &str {
        "hdd-sas"
    }

    fn is_persistent(&self) -> bool {
        true
    }
}

/// The SAS SSD (Table 4: 400 GB, ~15 K IOPS single-thread writes).
/// Writes are acknowledged from the supercap-protected DRAM buffer;
/// flash programming happens in the background.
#[derive(Debug)]
pub struct SasSsd {
    store: SparseMemory,
    capacity_blocks: u64,
    /// SAS + driver per-IO overhead.
    overhead: SimTime,
    /// Flash array read service time.
    read_media: SimTime,
    /// Buffered-write acknowledge time.
    write_ack: SimTime,
    busy_until: SimTime,
}

impl SasSsd {
    /// The paper's 400 GB SSD.
    pub fn new() -> Self {
        SasSsd {
            store: SparseMemory::new(),
            capacity_blocks: 400_000_000_000 / BLOCK_BYTES as u64,
            overhead: SimTime::from_us(25),
            read_media: SimTime::from_us(60),
            write_ack: SimTime::from_us(40),
            busy_until: SimTime::ZERO,
        }
    }
}

impl Default for SasSsd {
    fn default() -> Self {
        SasSsd::new()
    }
}

impl BlockDevice for SasSsd {
    fn read_block(&mut self, now: SimTime, lba: u64, buf: &mut [u8]) -> SimTime {
        self.store.read(lba * BLOCK_BYTES as u64, buf);
        let start = now.max(self.busy_until);
        let done = start + self.overhead + self.read_media;
        self.busy_until = done;
        done
    }

    fn write_block(&mut self, now: SimTime, lba: u64, data: &[u8]) -> SimTime {
        self.store.write(lba * BLOCK_BYTES as u64, data);
        let start = now.max(self.busy_until);
        let done = start + self.overhead + self.write_ack;
        self.busy_until = done;
        done
    }

    fn capacity_blocks(&self) -> u64 {
        self.capacity_blocks
    }

    fn name(&self) -> &str {
        "ssd-sas"
    }

    fn is_persistent(&self) -> bool {
        true
    }
}

/// An NVMe card on PCIe: flash, NVRAM (flash-backed DRAM) or MRAM.
#[derive(Debug)]
pub struct PcieCard {
    name: &'static str,
    store: SparseMemory,
    capacity_blocks: u64,
    path: NvmePath,
    read_media: SimTime,
    write_media: SimTime,
    busy_until: SimTime,
}

impl PcieCard {
    /// "FLASH on x4 PCIe" (Figures 9/10).
    pub fn flash_x4() -> Self {
        PcieCard {
            name: "flash-x4-pcie",
            store: SparseMemory::new(),
            capacity_blocks: 800_000_000_000 / BLOCK_BYTES as u64,
            path: NvmePath::tuned(PcieConfig::gen3_x4()),
            read_media: SimTime::from_us(100),
            write_media: SimTime::from_us(30),
            busy_until: SimTime::ZERO,
        }
    }

    /// The NVRAM card: flash-backed DRAM on PCIe. Card-internal
    /// controller firmware + buffer management dominate media time.
    pub fn nvram() -> Self {
        PcieCard {
            name: "nvram-pcie",
            store: SparseMemory::new(),
            capacity_blocks: 16_000_000_000 / BLOCK_BYTES as u64,
            path: NvmePath::tuned(PcieConfig::gen3_x8()),
            read_media: SimTime::from_us(15),
            write_media: SimTime::from_us(23),
            busy_until: SimTime::ZERO,
        }
    }

    /// The vendor's PCIe MRAM card (paper: "MRAM-on-PCIe numbers are
    /// those published by the vendor" \[14\]).
    pub fn mram() -> Self {
        PcieCard {
            name: "mram-pcie",
            store: SparseMemory::new(),
            capacity_blocks: 2_000_000_000 / BLOCK_BYTES as u64,
            path: NvmePath::tuned(PcieConfig::gen3_x8()),
            read_media: SimTime::from_ps(1_500_000),
            write_media: SimTime::from_ps(3_500_000),
            busy_until: SimTime::ZERO,
        }
    }
}

impl BlockDevice for PcieCard {
    fn read_block(&mut self, now: SimTime, lba: u64, buf: &mut [u8]) -> SimTime {
        self.store.read(lba * BLOCK_BYTES as u64, buf);
        let start = now.max(self.busy_until);
        let done = start + self.path.io_latency(buf.len() as u64, self.read_media);
        self.busy_until = done;
        done
    }

    fn write_block(&mut self, now: SimTime, lba: u64, data: &[u8]) -> SimTime {
        self.store.write(lba * BLOCK_BYTES as u64, data);
        let start = now.max(self.busy_until);
        let done = start + self.path.io_latency(data.len() as u64, self.write_media);
        self.busy_until = done;
        done
    }

    fn capacity_blocks(&self) -> u64 {
        self.capacity_blocks
    }

    fn name(&self) -> &str {
        self.name
    }

    fn is_persistent(&self) -> bool {
        true
    }
}

/// A block device over the memory bus: the pmem driver on a live
/// ConTutto channel. This is the "STT-MRAM / NVDIMM on DMI" attach
/// point of Figures 9/10 and Table 4 — block IOs become cache-line
/// loads/stores plus a flush, all simulated through the full stack.
pub struct PmemBlockDevice {
    name: &'static str,
    channel: DmiChannel,
    driver: PmemDriver,
    base_addr: u64,
    capacity_blocks: u64,
}

impl std::fmt::Debug for PmemBlockDevice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PmemBlockDevice")
            .field("name", &self.name)
            .field("capacity_blocks", &self.capacity_blocks)
            .finish_non_exhaustive()
    }
}

impl PmemBlockDevice {
    /// Wraps a trained channel whose buffer fronts persistent media.
    pub fn new(
        name: &'static str,
        channel: DmiChannel,
        base_addr: u64,
        capacity_bytes: u64,
    ) -> Self {
        PmemBlockDevice {
            name,
            channel,
            driver: PmemDriver::default(),
            base_addr,
            capacity_blocks: capacity_bytes / BLOCK_BYTES as u64,
        }
    }

    /// The underlying channel (for telemetry).
    pub fn channel_mut(&mut self) -> &mut DmiChannel {
        &mut self.channel
    }

    fn sync_clock(&mut self, now: SimTime) {
        // The channel's clock is the authority; block-level callers
        // may run "behind" it after a burst. Advance to the max.
        if self.channel.now() < now {
            self.channel.run_until(now);
        }
    }
}

impl BlockDevice for PmemBlockDevice {
    fn read_block(&mut self, now: SimTime, lba: u64, buf: &mut [u8]) -> SimTime {
        self.sync_clock(now);
        self.driver.read(
            &mut self.channel,
            self.base_addr + lba * BLOCK_BYTES as u64,
            buf,
        )
    }

    fn write_block(&mut self, now: SimTime, lba: u64, data: &[u8]) -> SimTime {
        self.sync_clock(now);
        self.driver.write_persistent(
            &mut self.channel,
            self.base_addr + lba * BLOCK_BYTES as u64,
            data,
        )
    }

    fn capacity_blocks(&self) -> u64 {
        self.capacity_blocks
    }

    fn name(&self) -> &str {
        self.name
    }

    fn is_persistent(&self) -> bool {
        true
    }
}

/// Builds the paper's MRAM-on-ConTutto block device (256 MB usable
/// per card pair of DIMMs — 512 MB here, one card).
pub fn mram_contutto_device() -> PmemBlockDevice {
    use contutto_core::{ConTutto, ContuttoConfig, MemoryPopulation};
    use contutto_memdev::MramGeneration;
    use contutto_power8::channel::ChannelConfig;

    let channel = DmiChannel::new(
        ChannelConfig::contutto(),
        Box::new(ConTutto::new(
            ContuttoConfig::base(),
            MemoryPopulation::mram_512mb(MramGeneration::Pmtj),
        )),
    );
    PmemBlockDevice::new("mram-contutto", channel, 0, 512 << 20)
}

/// Builds the paper's NVDIMM-on-ConTutto block device.
pub fn nvdimm_contutto_device() -> PmemBlockDevice {
    use contutto_core::{ConTutto, ContuttoConfig, MemoryPopulation};
    use contutto_power8::channel::ChannelConfig;

    let channel = DmiChannel::new(
        ChannelConfig::contutto(),
        Box::new(ConTutto::new(
            ContuttoConfig::base(),
            MemoryPopulation::nvdimm_8gb(),
        )),
    );
    PmemBlockDevice::new("nvdimm-contutto", channel, 0, 8 << 30)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(dev: &mut dyn BlockDevice) {
        let data = [0xC3u8; BLOCK_BYTES];
        let t = dev.write_block(SimTime::ZERO, 7, &data);
        let mut buf = [0u8; BLOCK_BYTES];
        let t2 = dev.read_block(t, 7, &mut buf);
        assert_eq!(buf, data, "{}", dev.name());
        assert!(t2 > t);
    }

    #[test]
    fn all_devices_roundtrip() {
        roundtrip(&mut SasHdd::new());
        roundtrip(&mut SasSsd::new());
        roundtrip(&mut PcieCard::flash_x4());
        roundtrip(&mut PcieCard::nvram());
        roundtrip(&mut PcieCard::mram());
        roundtrip(&mut mram_contutto_device());
    }

    #[test]
    fn latency_ordering_matches_figure10() {
        // Memory-bus MRAM < PCIe MRAM < PCIe NVRAM < PCIe flash < SSD < HDD.
        let lat = |dev: &mut dyn BlockDevice| {
            let mut buf = [0u8; BLOCK_BYTES];
            dev.write_block(SimTime::ZERO, 9, &buf);
            let t0 = dev.read_block(SimTime::from_ms(1), 9, &mut buf);
            let t1 = dev.read_block(t0, 9, &mut buf);
            t1 - t0
        };
        let mram_ct = lat(&mut mram_contutto_device());
        let mram_pcie = lat(&mut PcieCard::mram());
        let nvram = lat(&mut PcieCard::nvram());
        let flash = lat(&mut PcieCard::flash_x4());
        let ssd = lat(&mut SasSsd::new());
        let hdd = lat(&mut SasHdd::new());
        // Figure 10 set (PCIe attach points vs the memory bus):
        assert!(mram_ct < mram_pcie, "{mram_ct} !< {mram_pcie}");
        assert!(mram_pcie < nvram);
        assert!(nvram < flash);
        // Table 4 set (SAS devices):
        assert!(ssd < hdd);
        assert!(nvram < ssd, "even the slow PCIe NVM beats SAS SSD reads");
    }

    #[test]
    fn contutto_mram_read_latency_ratio_vs_nvram() {
        // Figure 10: ~6.6x lower read latency than NVRAM-on-PCIe.
        let lat = |dev: &mut dyn BlockDevice| {
            let mut buf = [0u8; BLOCK_BYTES];
            dev.write_block(SimTime::ZERO, 3, &buf);
            let t0 = dev.read_block(SimTime::from_ms(1), 3, &mut buf);
            let t1 = dev.read_block(t0, 3, &mut buf);
            (t1 - t0).as_us_f64()
        };
        let ct = lat(&mut mram_contutto_device());
        let nvram = lat(&mut PcieCard::nvram());
        let ratio = nvram / ct;
        assert!((4.0..10.0).contains(&ratio), "read latency ratio {ratio}");
    }

    #[test]
    fn ssd_write_iops_about_15k() {
        let mut ssd = SasSsd::new();
        let data = [0u8; BLOCK_BYTES];
        let mut now = SimTime::ZERO;
        for i in 0..100 {
            now = ssd.write_block(now, i * 37 % 1000, &data);
        }
        let iops = 100.0 / now.as_secs_f64();
        assert!((13_000.0..17_000.0).contains(&iops), "{iops} IOPS");
    }

    #[test]
    fn everything_reports_persistent() {
        assert!(SasHdd::new().is_persistent());
        assert!(SasSsd::new().is_persistent());
        assert!(PcieCard::mram().is_persistent());
        assert!(mram_contutto_device().is_persistent());
    }
}
