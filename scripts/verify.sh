#!/usr/bin/env bash
# Full verification gate: formatting, lints, and the tier-1 test suite.
# Everything runs offline against the vendored-free workspace.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test --workspace"
cargo test --workspace --quiet

echo "==> cargo build --benches"
cargo build --benches --workspace --quiet

echo "==> cargo doc (deny warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace --quiet

echo "==> fault campaign (smoke)"
cargo run -p contutto-bench --release --bin faults --quiet -- --smoke

echo "==> media-fault campaign (smoke)"
cargo run -p contutto-bench --release --bin faults --quiet -- --media --smoke

echo "==> channel-failover campaign (smoke)"
cargo run -p contutto-bench --release --bin faults --quiet -- --failover --smoke

echo "==> power-fail campaign (smoke)"
cargo run -p contutto-bench --release --bin faults --quiet -- --power --smoke

echo "==> traffic SLO-under-fault campaign (smoke)"
# Writes BENCH_traffic.json; fails on fingerprint/histogram divergence
# between same-seed double runs, a fault that never fired, or a >20%
# requests/sec regression vs the last report.
cargo run -p contutto-bench --release --bin faults --quiet -- --traffic --smoke

echo "==> overload metastability campaign (smoke)"
# Writes BENCH_overload.json; fails if the naive row (no defenses)
# does not stay congested after the trigger clears, if the protected
# row (deadlines + admission + retry budget + breakers + hedging +
# brownout) does not recover to within 2x of steady p99, on any
# duplicate completion or same-seed divergence, or on a >20%
# requests/sec regression vs the last report.
cargo run -p contutto-bench --release --bin faults --quiet -- --overload --smoke

echo "==> chaos campaign (smoke)"
# Writes BENCH_chaos.json; fails on any durability-oracle violation
# (silent corruption, resurrection, unreported loss, panic,
# non-determinism between same-seed double runs) or a >20% plans/sec
# regression vs the last report. Failing plans are shrunk to minimal
# CHAOS_repro_*.json reproducers.
cargo run -p contutto-bench --release --bin faults --quiet -- --chaos --smoke

echo "==> checkpoint/restore campaign (smoke)"
# Writes BENCH_checkpoint.json; fails if a restored system's
# fingerprint or metrics diverge from its source, if the prefix-reused
# power sweep is not byte-identical to the straight sweep, if the
# structural store skip did not happen, or on a >20% snapshot/restore
# throughput regression vs the last same-image-size report.
cargo run -p contutto-bench --release --bin faults --quiet -- --checkpoint --smoke

echo "==> mlp pipeline benchmark (smoke)"
# Writes BENCH_pipeline.json; fails on broken determinism, a depth-16
# speedup under 4x, or a >20% throughput regression vs the last report.
cargo run -p contutto-bench --release --bin pipeline --quiet -- --smoke

echo "verify: all gates passed"
